//! RIDL-A function 1: correctness of the schema according to the rules of
//! the BRM (§3.2).
//!
//! "Certain rules of the BRM are enforced by RIDL-G as the schema is
//! constructed, the others are checked on demand." The `SchemaBuilder`
//! plays RIDL-G's role (it rejects duplicate names, dangling references and
//! LOT sublinks eagerly); this pass re-checks everything on demand, so that
//! schemas produced by transformations or loaded from the meta-database get
//! the same scrutiny.

use ridl_brm::{ConstraintKind, RoleOrSublink, Schema, Side};

use crate::report::Finding;

/// Checks all BRM correctness rules; returns the findings.
pub fn check(schema: &Schema) -> Vec<Finding> {
    let mut out = Vec::new();
    structural(schema, &mut out);
    lots_are_bridges(schema, &mut out);
    sublink_rules(schema, &mut out);
    constraint_typing(schema, &mut out);
    out
}

fn structural(schema: &Schema, out: &mut Vec<Finding>) {
    for e in schema.check_ids() {
        out.push(Finding::error("DANGLING-ID", e.to_string()));
    }
    for e in schema.check_names() {
        out.push(Finding::error("DUPLICATE-NAME", e.to_string()));
    }
}

/// "A LOT … is involved in one fact type only, with a NOLOT" (§2).
fn lots_are_bridges(schema: &Schema, out: &mut Vec<Finding>) {
    for (oid, ot) in schema.object_types() {
        if !ot.kind.is_lot() {
            continue;
        }
        let roles = schema.roles_of(oid);
        if roles.len() > 1 {
            out.push(Finding::error(
                "LOT-MULTI-FACT",
                format!(
                    "LOT {} is involved in {} fact types; a LOT bridges exactly one",
                    ot.name,
                    roles.len()
                ),
            ));
        }
        for r in &roles {
            let co = schema.role_player(r.co_role());
            if schema.kind_of(co).is_lot() {
                out.push(Finding::error(
                    "LOT-LOT-FACT",
                    format!(
                        "fact {} links two LOTs ({} and {})",
                        schema.fact_type(r.fact).name,
                        ot.name,
                        schema.ot_name(co)
                    ),
                ));
            }
        }
    }
}

fn sublink_rules(schema: &Schema, out: &mut Vec<Finding>) {
    for (sid, sl) in schema.sublinks() {
        for (end, label) in [(sl.sub, "subtype"), (sl.sup, "supertype")] {
            if end.index() < schema.num_object_types() && schema.kind_of(end).is_lot() {
                out.push(Finding::error(
                    "SUBLINK-LOT",
                    format!(
                        "sublink {sid} has LOT {} as {label}; sublinks connect NOLOTs",
                        schema.ot_name(end)
                    ),
                ));
            }
        }
        if sl.sub == sl.sup {
            out.push(Finding::error(
                "SUBLINK-SELF",
                format!(
                    "sublink {sid} subtypes {} under itself",
                    schema.ot_name(sl.sub)
                ),
            ));
        }
    }
    if schema.sublink_graph_has_cycle() {
        out.push(Finding::error(
            "SUBLINK-CYCLE",
            "the sublink graph contains a cycle".to_string(),
        ));
    }
}

fn constraint_typing(schema: &Schema, out: &mut Vec<Finding>) {
    for (cid, c) in schema.constraints() {
        // Skip constraints with dangling ids; already reported.
        let dangling = c
            .kind
            .referenced_roles()
            .iter()
            .any(|r| r.fact.index() >= schema.num_fact_types())
            || c.kind
                .referenced_sublinks()
                .iter()
                .any(|s| s.index() >= schema.num_sublinks())
            || c.kind
                .referenced_object_types()
                .iter()
                .any(|o| o.index() >= schema.num_object_types());
        if dangling {
            continue;
        }
        match &c.kind {
            ConstraintKind::Uniqueness { roles } => {
                if roles.is_empty() {
                    out.push(Finding::error(
                        "EMPTY-UNIQUENESS",
                        format!("constraint {cid} spans no roles"),
                    ));
                    continue;
                }
                let same_fact = roles.iter().all(|r| r.fact == roles[0].fact);
                if !same_fact {
                    // External uniqueness: the co-roles must share a player.
                    let hub = schema.role_player(roles[0].co_role());
                    if !roles.iter().all(|r| schema.role_player(r.co_role()) == hub) {
                        out.push(Finding::error(
                            "EXTERNAL-UNIQUENESS-HUB",
                            format!(
                                "constraint {cid}: external uniqueness roles do not share a common object type"
                            ),
                        ));
                    }
                }
            }
            ConstraintKind::Total { over, items } => {
                if items.is_empty() {
                    out.push(Finding::error(
                        "EMPTY-TOTAL",
                        format!("constraint {cid} has no items"),
                    ));
                }
                for item in items {
                    let item_ot = match item {
                        RoleOrSublink::Role(r) => schema.role_player(*r),
                        RoleOrSublink::Sublink(s) => schema.sublink(*s).sub,
                    };
                    // The covered type must be the item's player (role) or
                    // the sublink's supertype, or an ancestor thereof.
                    let matches = match item {
                        RoleOrSublink::Role(_) => schema.ancestors_of(item_ot).contains(over),
                        RoleOrSublink::Sublink(s) => schema.sublink(*s).sup == *over,
                    };
                    if !matches {
                        out.push(Finding::error(
                            "TOTAL-TYPE-MISMATCH",
                            format!(
                                "constraint {cid}: total union over {} has an item of incompatible type {}",
                                schema.ot_name(*over),
                                schema.ot_name(item_ot)
                            ),
                        ));
                    }
                }
            }
            ConstraintKind::Exclusion { items } => {
                if items.len() < 2 {
                    out.push(Finding::error(
                        "EXCLUSION-ARITY",
                        format!("constraint {cid} excludes fewer than two items"),
                    ));
                }
                // All items must range over type-compatible populations.
                let player_of = |item: &RoleOrSublink| match item {
                    RoleOrSublink::Role(r) => schema.role_player(*r),
                    RoleOrSublink::Sublink(s) => schema.sublink(*s).sub,
                };
                if let Some(first) = items.first() {
                    let a = player_of(first);
                    for item in &items[1..] {
                        let b = player_of(item);
                        let compat = a == b
                            || schema
                                .ancestors_of(a)
                                .iter()
                                .any(|x| schema.ancestors_of(b).contains(x));
                        if !compat {
                            out.push(Finding::error(
                                "EXCLUSION-TYPE-MISMATCH",
                                format!(
                                    "constraint {cid}: exclusion between unrelated types {} and {}",
                                    schema.ot_name(a),
                                    schema.ot_name(b)
                                ),
                            ));
                        }
                    }
                }
            }
            ConstraintKind::Subset { sub, sup } | ConstraintKind::Equality { a: sub, b: sup } => {
                if sub.len() != sup.len() {
                    out.push(Finding::error(
                        "SEQ-ARITY-MISMATCH",
                        format!("constraint {cid}: sides have different arities"),
                    ));
                    continue;
                }
                for (x, y) in sub.iter().zip(sup.iter()) {
                    let px = schema.role_player(*x);
                    let py = schema.role_player(*y);
                    let compat = px == py
                        || schema
                            .ancestors_of(px)
                            .iter()
                            .any(|t| schema.ancestors_of(py).contains(t));
                    if !compat {
                        out.push(Finding::error(
                            "SEQ-TYPE-MISMATCH",
                            format!(
                                "constraint {cid}: positions compare unrelated types {} and {}",
                                schema.ot_name(px),
                                schema.ot_name(py)
                            ),
                        ));
                    }
                }
            }
            ConstraintKind::Cardinality { min, max, .. } => {
                if let Some(m) = max {
                    if min > m {
                        out.push(Finding::error(
                            "CARDINALITY-BOUNDS",
                            format!("constraint {cid}: min {min} exceeds max {m}"),
                        ));
                    }
                }
            }
            ConstraintKind::Value { over, values } => match schema.kind_of(*over).data_type() {
                None => out.push(Finding::error(
                    "VALUE-ON-NOLOT",
                    format!(
                        "constraint {cid}: value constraint on non-lexical {}",
                        schema.ot_name(*over)
                    ),
                )),
                Some(dt) => {
                    for v in values {
                        if !v.fits(dt) {
                            out.push(Finding::error(
                                "VALUE-TYPE",
                                format!(
                                    "constraint {cid}: value {v} does not fit {dt} of {}",
                                    schema.ot_name(*over)
                                ),
                            ));
                        }
                    }
                }
            },
        }
    }
    // Homogeneous facts are legal but LOT-homogeneous facts are not
    // (covered by lots_are_bridges); nothing more to check per fact — the
    // binary shape is guaranteed by construction ([`ridl_brm::FactType`]).
    let _ = Side::BOTH;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::SchemaBuilder;
    use ridl_brm::{Constraint, DataType, FactType, ObjectType, ObjectTypeKind, Role, Value};

    #[test]
    fn clean_schema_no_findings() {
        let mut b = SchemaBuilder::new("ok");
        b.nolot("Person").unwrap();
        b.lot("Name", DataType::Char(30)).unwrap();
        b.fact("named", ("has", "Person"), ("of", "Name")).unwrap();
        b.unique("named", Side::Left).unwrap();
        let s = b.finish().unwrap();
        assert!(check(&s).is_empty());
    }

    #[test]
    fn lot_in_two_facts_flagged() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.lot("L", DataType::Char(3)).unwrap();
        b.fact("f", ("x", "A"), ("y", "L")).unwrap();
        b.fact("g", ("x", "B"), ("y", "L")).unwrap();
        let s = b.finish_unchecked();
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "LOT-MULTI-FACT"));
    }

    #[test]
    fn lot_lot_fact_flagged() {
        let mut s = ridl_brm::Schema::new("bad");
        let l1 = s.push_object_type(ObjectType::new(
            "L1",
            ObjectTypeKind::Lot(DataType::Char(1)),
        ));
        let l2 = s.push_object_type(ObjectType::new(
            "L2",
            ObjectTypeKind::Lot(DataType::Char(1)),
        ));
        s.push_fact_type(FactType::new("f", Role::new("a", l1), Role::new("b", l2)));
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "LOT-LOT-FACT"));
    }

    #[test]
    fn sublink_cycle_flagged() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.sublink("A", "B").unwrap();
        b.sublink("B", "A").unwrap();
        let s = b.finish_unchecked();
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "SUBLINK-CYCLE"));
    }

    #[test]
    fn self_sublink_flagged() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("A").unwrap();
        b.sublink("A", "A").unwrap();
        let s = b.finish_unchecked();
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "SUBLINK-SELF"));
        assert!(f.iter().any(|x| x.code == "SUBLINK-CYCLE"));
    }

    #[test]
    fn external_uniqueness_without_hub_flagged() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.lot("X", DataType::Char(1)).unwrap();
        b.lot("Y", DataType::Char(1)).unwrap();
        b.fact("f", ("r", "A"), ("s", "X")).unwrap();
        b.fact("g", ("r", "B"), ("s", "Y")).unwrap();
        // Hubs differ: co-players are A and B.
        b.external_unique(&[("f", Side::Right), ("g", Side::Right)])
            .unwrap();
        let s = b.finish_unchecked();
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "EXTERNAL-UNIQUENESS-HUB"));
    }

    #[test]
    fn total_type_mismatch_flagged() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.nolot("C").unwrap();
        b.fact("f", ("r", "B"), ("s", "C")).unwrap();
        // Total over A but the role is played by B.
        b.total_union("A", &[("f", Side::Left)]).unwrap();
        let s = b.finish_unchecked();
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "TOTAL-TYPE-MISMATCH"));
    }

    #[test]
    fn total_role_on_subtype_of_over_is_ok() {
        // A total union over a supertype may include roles played by its
        // subtypes (inheritance).
        let mut b = SchemaBuilder::new("ok");
        b.nolot("Person").unwrap();
        b.nolot("Author").unwrap();
        b.sublink("Author", "Person").unwrap();
        b.nolot("Paper").unwrap();
        b.fact("writes", ("author_of", "Author"), ("written_by", "Paper"))
            .unwrap();
        b.unique_pair("writes").unwrap();
        b.total_union("Person", &[("writes", Side::Left)]).unwrap();
        let s = b.finish_unchecked();
        let f = check(&s);
        assert!(!f.iter().any(|x| x.code == "TOTAL-TYPE-MISMATCH"), "{f:?}");
    }

    #[test]
    fn exclusion_type_mismatch_flagged() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.nolot("C").unwrap();
        b.fact("f", ("r", "A"), ("s", "B")).unwrap();
        b.fact("g", ("r", "C"), ("s", "B")).unwrap();
        b.exclusion_roles(&[("f", Side::Left), ("g", Side::Left)])
            .unwrap();
        let s = b.finish_unchecked();
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "EXCLUSION-TYPE-MISMATCH"));
    }

    #[test]
    fn value_constraint_type_checked() {
        let mut b = SchemaBuilder::new("bad");
        b.lot("Grade", DataType::Char(1)).unwrap();
        b.nolot("R").unwrap();
        b.fact("graded", ("of", "R"), ("is", "Grade")).unwrap();
        b.value_constraint("Grade", vec![Value::str("TOO-LONG")])
            .unwrap();
        let s = b.finish_unchecked();
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "VALUE-TYPE"));
    }

    #[test]
    fn value_on_nolot_flagged_on_raw_schema() {
        let mut s = ridl_brm::Schema::new("bad");
        let a = s.push_object_type(ObjectType::new("A", ObjectTypeKind::Nolot));
        s.push_constraint(Constraint::new(ConstraintKind::Value {
            over: a,
            values: vec![Value::Int(1)],
        }));
        let f = check(&s);
        assert!(f.iter().any(|x| x.code == "VALUE-ON-NOLOT"));
    }
}

//! # ridl-metadb — RIDL\*'s meta-database
//!
//! "The binary conceptual schemas developed with RIDL-G are stored in
//! RIDL\*'s own meta-database. It may contain several independent conceptual
//! schemas. Its implementation is a relational (ORACLE) database, and its
//! design is partly 'open', meaning that a comprehensive set of views is
//! available to the RIDL\* user to allow him to prepare his own style of
//! data-dictionary and query meta-information" (§3.1).
//!
//! The meta-database is itself a relational database running on
//! `ridl-engine` — the schema-of-schemas is enforced by the same constraint
//! machinery the mapper generates for user schemas. [`MetaDb::store`]
//! persists a [`Schema`]; [`MetaDb::load`] reconstructs it; the `V_*` views
//! expose the dictionary.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod serde;

use std::fmt;

use ridl_brm::{FactType, ObjectType, ObjectTypeKind, Role, Schema, Sublink, Value};
use ridl_engine::{Database, EngineError, Pred, Query};
use ridl_relational::{Column, RelConstraintKind, RelSchema, Table};

/// Errors raised by the meta-database.
#[derive(Debug)]
pub enum MetaDbError {
    /// The underlying engine refused an operation.
    Engine(EngineError),
    /// A stored schema is malformed and cannot be reconstructed.
    Corrupt(String),
    /// No schema with the given name exists.
    NotFound(String),
    /// A schema with this name is already stored.
    Duplicate(String),
}

impl fmt::Display for MetaDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaDbError::Engine(e) => write!(f, "meta-database engine error: {e}"),
            MetaDbError::Corrupt(m) => write!(f, "corrupt meta-data: {m}"),
            MetaDbError::NotFound(n) => write!(f, "no stored schema named {n}"),
            MetaDbError::Duplicate(n) => write!(f, "schema {n} already stored"),
        }
    }
}

impl std::error::Error for MetaDbError {}

impl From<EngineError> for MetaDbError {
    fn from(e: EngineError) -> Self {
        MetaDbError::Engine(e)
    }
}

/// The schema-of-schemas: the relational design of the meta-database.
pub fn meta_schema() -> RelSchema {
    let mut s = RelSchema::new("ridl_meta");
    let d_name = s.domain("D_Name", ridl_brm::DataType::VarChar(64));
    let d_id = s.domain("D_Id", ridl_brm::DataType::Integer);
    let d_kind = s.domain("D_Kind", ridl_brm::DataType::Char(1));
    let d_type = s.domain("D_Type", ridl_brm::DataType::VarChar(24));
    let d_spec = s.domain("D_Spec", ridl_brm::DataType::VarChar(255));

    let schema_t = s.add_table(Table::new(
        "SCHEMA_",
        vec![Column::not_null("Name", d_name)],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: schema_t,
        cols: vec![0],
    });

    let ot = s.add_table(Table::new(
        "OBJECT_TYPE",
        vec![
            Column::not_null("Schema_Name", d_name),
            Column::not_null("Ot_Id", d_id),
            Column::not_null("Name", d_name),
            Column::not_null("Kind", d_kind),
            Column::nullable("Data_Type", d_type),
        ],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: ot,
        cols: vec![0, 1],
    });
    s.add_named(RelConstraintKind::ForeignKey {
        table: ot,
        cols: vec![0],
        ref_table: schema_t,
        ref_cols: vec![0],
    });
    // Lexical kinds carry a data type; non-lexical kinds do not.
    s.add_named(RelConstraintKind::CheckValue {
        table: ot,
        col: 3,
        values: vec![Value::str("L"), Value::str("N"), Value::str("H")],
    });

    let ft = s.add_table(Table::new(
        "FACT_TYPE",
        vec![
            Column::not_null("Schema_Name", d_name),
            Column::not_null("Ft_Id", d_id),
            Column::not_null("Name", d_name),
            Column::not_null("L_Role", d_name),
            Column::not_null("L_Player", d_id),
            Column::not_null("R_Role", d_name),
            Column::not_null("R_Player", d_id),
        ],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: ft,
        cols: vec![0, 1],
    });
    s.add_named(RelConstraintKind::ForeignKey {
        table: ft,
        cols: vec![0],
        ref_table: schema_t,
        ref_cols: vec![0],
    });

    let sl = s.add_table(Table::new(
        "SUBLINK",
        vec![
            Column::not_null("Schema_Name", d_name),
            Column::not_null("Sl_Id", d_id),
            Column::not_null("Sub", d_id),
            Column::not_null("Sup", d_id),
        ],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: sl,
        cols: vec![0, 1],
    });

    let ct = s.add_table(Table::new(
        "CONSTRAINT_",
        vec![
            Column::not_null("Schema_Name", d_name),
            Column::not_null("C_Id", d_id),
            Column::nullable("Name", d_name),
            Column::not_null("Spec", d_spec),
        ],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: ct,
        cols: vec![0, 1],
    });
    s
}

/// The meta-database: several independent conceptual schemas in one
/// relational store, with the "open" dictionary views installed.
pub struct MetaDb {
    db: Database,
}

impl Default for MetaDb {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaDb {
    /// Opens an empty meta-database with the standard views.
    pub fn new() -> Self {
        let mut db = Database::create(meta_schema()).expect("meta schema is consistent");
        db.create_view("V_SCHEMAS", Query::from("SCHEMA_").select(&["Name"]));
        db.create_view(
            "V_OBJECT_TYPES",
            Query::from("OBJECT_TYPE").select(&["Schema_Name", "Name", "Kind", "Data_Type"]),
        );
        db.create_view(
            "V_LEXICAL_TYPES",
            Query::from("OBJECT_TYPE")
                .select(&["Schema_Name", "Name", "Data_Type"])
                .filter(Pred::Eq("Kind".into(), Value::str("L"))),
        );
        db.create_view(
            "V_FACT_TYPES",
            Query::from("FACT_TYPE").select(&["Schema_Name", "Name", "L_Role", "R_Role"]),
        );
        db.create_view(
            "V_SUBLINKS",
            Query::from("SUBLINK").select(&["Schema_Name", "Sub", "Sup"]),
        );
        db.create_view(
            "V_CONSTRAINTS",
            Query::from("CONSTRAINT_").select(&["Schema_Name", "Spec"]),
        );
        Self { db }
    }

    /// Access to the underlying engine (the "open" design: users may query
    /// the dictionary directly and add their own views).
    pub fn database(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Stores a schema under its name; fails if the name is taken.
    pub fn store(&mut self, schema: &Schema) -> Result<(), MetaDbError> {
        if self.schema_names().contains(&schema.name) {
            return Err(MetaDbError::Duplicate(schema.name.clone()));
        }
        let sname = Value::str(schema.name.clone());
        self.db.begin();
        let r = self.store_inner(schema, &sname);
        match r {
            Ok(()) => {
                self.db.commit()?;
                Ok(())
            }
            Err(e) => {
                let _ = self.db.rollback();
                Err(e)
            }
        }
    }

    fn store_inner(&mut self, schema: &Schema, sname: &Value) -> Result<(), MetaDbError> {
        self.db
            .insert_unchecked("SCHEMA_", vec![Some(sname.clone())])?;
        for (oid, ot) in schema.object_types() {
            let (kind, dt) = match ot.kind {
                ObjectTypeKind::Lot(dt) => ("L", Some(dt)),
                ObjectTypeKind::Nolot => ("N", None),
                ObjectTypeKind::LotNolot(dt) => ("H", Some(dt)),
            };
            self.db.insert_unchecked(
                "OBJECT_TYPE",
                vec![
                    Some(sname.clone()),
                    Some(Value::Int(oid.raw() as i64)),
                    Some(Value::str(ot.name.clone())),
                    Some(Value::str(kind)),
                    dt.map(|d| Value::str(d.to_string())),
                ],
            )?;
        }
        for (fid, ft) in schema.fact_types() {
            self.db.insert_unchecked(
                "FACT_TYPE",
                vec![
                    Some(sname.clone()),
                    Some(Value::Int(fid.raw() as i64)),
                    Some(Value::str(ft.name.clone())),
                    Some(Value::str(ft.roles[0].name.clone())),
                    Some(Value::Int(ft.roles[0].player.raw() as i64)),
                    Some(Value::str(ft.roles[1].name.clone())),
                    Some(Value::Int(ft.roles[1].player.raw() as i64)),
                ],
            )?;
        }
        for (sid, sl) in schema.sublinks() {
            self.db.insert_unchecked(
                "SUBLINK",
                vec![
                    Some(sname.clone()),
                    Some(Value::Int(sid.raw() as i64)),
                    Some(Value::Int(sl.sub.raw() as i64)),
                    Some(Value::Int(sl.sup.raw() as i64)),
                ],
            )?;
        }
        for (cid, c) in schema.constraints() {
            self.db.insert_unchecked(
                "CONSTRAINT_",
                vec![
                    Some(sname.clone()),
                    Some(Value::Int(cid.raw() as i64)),
                    c.name.clone().map(Value::Str),
                    Some(Value::str(serde::encode_constraint(&c.kind))),
                ],
            )?;
        }
        Ok(())
    }

    /// Names of the stored schemas.
    pub fn schema_names(&self) -> Vec<String> {
        let rows = self
            .db
            .select(&Query::from("SCHEMA_").select(&["Name"]))
            .expect("SCHEMA_ exists");
        let mut names: Vec<String> = rows
            .into_iter()
            .filter_map(|r| match r.into_iter().next().flatten() {
                Some(Value::Str(s)) => Some(s),
                _ => None,
            })
            .collect();
        names.sort();
        names
    }

    /// Reconstructs a stored schema.
    pub fn load(&self, name: &str) -> Result<Schema, MetaDbError> {
        if !self.schema_names().iter().any(|n| n == name) {
            return Err(MetaDbError::NotFound(name.to_owned()));
        }
        let by_schema = |table: &str,
                         id_col: &str|
         -> Result<Vec<Vec<Option<Value>>>, MetaDbError> {
            let mut rows = self
                .db
                .select(
                    &Query::from(table).filter(Pred::Eq("Schema_Name".into(), Value::str(name))),
                )
                .map_err(MetaDbError::from)?;
            // Order by the numeric id column (arena order).
            let idx = match id_col {
                "Ot_Id" | "Ft_Id" | "Sl_Id" | "C_Id" => 1usize,
                _ => 1,
            };
            rows.sort_by_key(|r| match &r[idx] {
                Some(Value::Int(i)) => *i,
                _ => i64::MAX,
            });
            Ok(rows)
        };

        let mut schema = Schema::new(name);
        for row in by_schema("OBJECT_TYPE", "Ot_Id")? {
            let nm = as_str(&row[2])?;
            let kind = match as_str(&row[3])?.as_str() {
                "L" => ObjectTypeKind::Lot(serde::parse_data_type(&as_str(&row[4])?)?),
                "H" => ObjectTypeKind::LotNolot(serde::parse_data_type(&as_str(&row[4])?)?),
                "N" => ObjectTypeKind::Nolot,
                k => return Err(MetaDbError::Corrupt(format!("object kind {k}"))),
            };
            schema.push_object_type(ObjectType::new(nm, kind));
        }
        for row in by_schema("FACT_TYPE", "Ft_Id")? {
            schema.push_fact_type(FactType::new(
                as_str(&row[2])?,
                Role::new(
                    as_str(&row[3])?,
                    ridl_brm::ObjectTypeId::from_raw(as_int(&row[4])? as u32),
                ),
                Role::new(
                    as_str(&row[5])?,
                    ridl_brm::ObjectTypeId::from_raw(as_int(&row[6])? as u32),
                ),
            ));
        }
        for row in by_schema("SUBLINK", "Sl_Id")? {
            schema.push_sublink(Sublink::new(
                ridl_brm::ObjectTypeId::from_raw(as_int(&row[2])? as u32),
                ridl_brm::ObjectTypeId::from_raw(as_int(&row[3])? as u32),
            ));
        }
        for row in by_schema("CONSTRAINT_", "C_Id")? {
            let kind = serde::decode_constraint(&as_str(&row[3])?)?;
            let name = match &row[2] {
                Some(Value::Str(s)) => Some(s.clone()),
                _ => None,
            };
            schema.push_constraint(ridl_brm::Constraint { name, kind });
        }
        let errs = schema.check_ids();
        if !errs.is_empty() {
            return Err(MetaDbError::Corrupt(format!("{errs:?}")));
        }
        Ok(schema)
    }

    /// Runs a dictionary view.
    pub fn view(&self, name: &str) -> Result<Vec<Vec<Option<Value>>>, MetaDbError> {
        Ok(self.db.select_view(name)?)
    }
}

fn as_str(v: &Option<Value>) -> Result<String, MetaDbError> {
    match v {
        Some(Value::Str(s)) => Ok(s.clone()),
        other => Err(MetaDbError::Corrupt(format!(
            "expected string, got {other:?}"
        ))),
    }
}

fn as_int(v: &Option<Value>) -> Result<i64, MetaDbError> {
    match v {
        Some(Value::Int(i)) => Ok(*i),
        other => Err(MetaDbError::Corrupt(format!("expected int, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::{DataType, Side};

    fn sample() -> Schema {
        let mut b = SchemaBuilder::new("conf");
        b.nolot("Paper").unwrap();
        b.nolot("Invited").unwrap();
        b.sublink("Invited", "Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.lot_nolot("Date", DataType::Date).unwrap();
        b.fact("submitted", ("at", "Paper"), ("of", "Date"))
            .unwrap();
        b.unique("submitted", Side::Left).unwrap();
        b.cardinality("submitted", Side::Right, 0, Some(10))
            .unwrap();
        b.value_constraint("Date", vec![]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn store_load_round_trip() {
        let mut m = MetaDb::new();
        let s = sample();
        m.store(&s).unwrap();
        let loaded = m.load("conf").unwrap();
        assert_eq!(loaded.num_object_types(), s.num_object_types());
        assert_eq!(loaded.num_fact_types(), s.num_fact_types());
        assert_eq!(loaded.num_sublinks(), s.num_sublinks());
        assert_eq!(loaded.num_constraints(), s.num_constraints());
        for (oid, ot) in s.object_types() {
            assert_eq!(loaded.object_type(oid), ot);
        }
        for (fid, ft) in s.fact_types() {
            assert_eq!(loaded.fact_type(fid), ft);
        }
        for (cid, c) in s.constraints() {
            assert_eq!(&loaded.constraint(cid).kind, &c.kind, "{cid}");
        }
    }

    #[test]
    fn several_independent_schemas() {
        let mut m = MetaDb::new();
        m.store(&sample()).unwrap();
        let mut b = SchemaBuilder::new("other");
        b.nolot("X").unwrap();
        m.store(&b.finish().unwrap()).unwrap();
        assert_eq!(m.schema_names(), vec!["conf", "other"]);
        assert_eq!(m.load("other").unwrap().num_object_types(), 1);
        assert!(matches!(m.load("missing"), Err(MetaDbError::NotFound(_))));
    }

    #[test]
    fn duplicate_schema_name_rejected_atomically() {
        let mut m = MetaDb::new();
        m.store(&sample()).unwrap();
        let err = m.store(&sample());
        assert!(err.is_err());
        // The failed store left nothing behind.
        let ots = m.view("V_OBJECT_TYPES").unwrap();
        assert_eq!(ots.len(), sample().num_object_types());
    }

    #[test]
    fn dictionary_views_answer() {
        let mut m = MetaDb::new();
        m.store(&sample()).unwrap();
        assert_eq!(m.view("V_SCHEMAS").unwrap().len(), 1);
        let lex = m.view("V_LEXICAL_TYPES").unwrap();
        assert_eq!(lex.len(), 1); // Paper_Id (Date is 'H', not 'L')
        assert!(m.view("V_FACT_TYPES").unwrap().len() >= 2);
        // The user may add private views through the open design.
        m.database().create_view(
            "V_MINE",
            Query::from("OBJECT_TYPE")
                .select(&["Name"])
                .filter(Pred::Eq("Kind".into(), Value::str("N"))),
        );
        assert_eq!(m.view("V_MINE").unwrap().len(), 2);
    }
}

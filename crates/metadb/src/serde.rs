//! Textual encoding of constraint bodies and data types for the
//! `CONSTRAINT_` and `OBJECT_TYPE` meta-tables.
//!
//! The format is a compact single-line notation (the 1989 system stored
//! comparable specs in ORACLE VARCHAR columns). Strings inside value lists
//! are isolated with the ASCII unit separator, so arbitrary user values
//! round-trip.

use ridl_brm::{
    ConstraintKind, DataType, FactTypeId, ObjectTypeId, RoleOrSublink, RoleRef, Side, SublinkId,
    Value,
};

use crate::MetaDbError;

const US: char = '\u{1f}';

fn enc_role(r: &RoleRef) -> String {
    format!(
        "f{}.{}",
        r.fact.raw(),
        match r.side {
            Side::Left => "L",
            Side::Right => "R",
        }
    )
}

fn dec_role(s: &str) -> Result<RoleRef, MetaDbError> {
    let rest = s
        .strip_prefix('f')
        .ok_or_else(|| MetaDbError::Corrupt(format!("role {s}")))?;
    let (num, side) = rest
        .split_once('.')
        .ok_or_else(|| MetaDbError::Corrupt(format!("role {s}")))?;
    let fact = FactTypeId::from_raw(
        num.parse()
            .map_err(|_| MetaDbError::Corrupt(format!("role {s}")))?,
    );
    let side = match side {
        "L" => Side::Left,
        "R" => Side::Right,
        _ => return Err(MetaDbError::Corrupt(format!("role {s}"))),
    };
    Ok(RoleRef::new(fact, side))
}

fn enc_roles(rs: &[RoleRef]) -> String {
    rs.iter().map(enc_role).collect::<Vec<_>>().join(",")
}

fn dec_roles(s: &str) -> Result<Vec<RoleRef>, MetaDbError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(dec_role).collect()
}

fn enc_item(i: &RoleOrSublink) -> String {
    match i {
        RoleOrSublink::Role(r) => format!("r:{}", enc_role(r)),
        RoleOrSublink::Sublink(s) => format!("s:{}", s.raw()),
    }
}

fn dec_item(s: &str) -> Result<RoleOrSublink, MetaDbError> {
    if let Some(r) = s.strip_prefix("r:") {
        return Ok(RoleOrSublink::Role(dec_role(r)?));
    }
    if let Some(n) = s.strip_prefix("s:") {
        return Ok(RoleOrSublink::Sublink(SublinkId::from_raw(
            n.parse()
                .map_err(|_| MetaDbError::Corrupt(format!("item {s}")))?,
        )));
    }
    Err(MetaDbError::Corrupt(format!("item {s}")))
}

fn enc_items(is: &[RoleOrSublink]) -> String {
    is.iter().map(enc_item).collect::<Vec<_>>().join(",")
}

fn dec_items(s: &str) -> Result<Vec<RoleOrSublink>, MetaDbError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(dec_item).collect()
}

/// Encodes a value as a typed token. The canonical codec lives in
/// `ridl-durable` (WAL records and checkpoint snapshots share it);
/// this is the meta-table entry point to the same format.
pub fn encode_value(v: &Value) -> String {
    ridl_durable::encode_value(v)
}

/// Decodes a typed value token. Rejects empty or malformed tokens with
/// an error (never panics).
pub fn decode_value(s: &str) -> Result<Value, MetaDbError> {
    ridl_durable::decode_value(s).map_err(|e| MetaDbError::Corrupt(e.0))
}

/// Encodes a constraint body.
pub fn encode_constraint(kind: &ConstraintKind) -> String {
    match kind {
        ConstraintKind::Uniqueness { roles } => format!("UNIQ {}", enc_roles(roles)),
        ConstraintKind::Total { over, items } => {
            format!("TOTAL {} {}", over.raw(), enc_items(items))
        }
        ConstraintKind::Exclusion { items } => format!("EXCL {}", enc_items(items)),
        ConstraintKind::Subset { sub, sup } => {
            format!("SUBSET {}|{}", enc_roles(sub), enc_roles(sup))
        }
        ConstraintKind::Equality { a, b } => {
            format!("EQ {}|{}", enc_roles(a), enc_roles(b))
        }
        ConstraintKind::Cardinality { role, min, max } => format!(
            "CARD {} {} {}",
            enc_role(role),
            min,
            max.map(|m| m.to_string()).unwrap_or_else(|| "*".into())
        ),
        ConstraintKind::Value { over, values } => {
            let vs: Vec<String> = values.iter().map(encode_value).collect();
            format!("VAL {} {}", over.raw(), vs.join(&US.to_string()))
        }
    }
}

/// Decodes a constraint body.
pub fn decode_constraint(s: &str) -> Result<ConstraintKind, MetaDbError> {
    let bad = || MetaDbError::Corrupt(format!("constraint {s}"));
    let (tag, rest) = s.split_once(' ').unwrap_or((s, ""));
    Ok(match tag {
        "UNIQ" => ConstraintKind::Uniqueness {
            roles: dec_roles(rest)?,
        },
        "TOTAL" => {
            let (over, items) = rest.split_once(' ').ok_or_else(bad)?;
            ConstraintKind::Total {
                over: ObjectTypeId::from_raw(over.parse().map_err(|_| bad())?),
                items: dec_items(items)?,
            }
        }
        "EXCL" => ConstraintKind::Exclusion {
            items: dec_items(rest)?,
        },
        "SUBSET" => {
            let (a, b) = rest.split_once('|').ok_or_else(bad)?;
            ConstraintKind::Subset {
                sub: dec_roles(a)?,
                sup: dec_roles(b)?,
            }
        }
        "EQ" => {
            let (a, b) = rest.split_once('|').ok_or_else(bad)?;
            ConstraintKind::Equality {
                a: dec_roles(a)?,
                b: dec_roles(b)?,
            }
        }
        "CARD" => {
            let mut parts = rest.split(' ');
            let role = dec_role(parts.next().ok_or_else(bad)?)?;
            let min = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let max = match parts.next().ok_or_else(bad)? {
                "*" => None,
                m => Some(m.parse().map_err(|_| bad())?),
            };
            ConstraintKind::Cardinality { role, min, max }
        }
        "VAL" => {
            let (over, vals) = rest.split_once(' ').unwrap_or((rest, ""));
            let values = if vals.is_empty() {
                Vec::new()
            } else {
                vals.split(US)
                    .map(decode_value)
                    .collect::<Result<Vec<_>, _>>()?
            };
            ConstraintKind::Value {
                over: ObjectTypeId::from_raw(over.parse().map_err(|_| bad())?),
                values,
            }
        }
        _ => return Err(bad()),
    })
}

/// Parses a [`DataType`] back from its `Display` form.
pub fn parse_data_type(s: &str) -> Result<DataType, MetaDbError> {
    let bad = || MetaDbError::Corrupt(format!("data type {s}"));
    let parse_n = |inner: &str| -> Result<u16, MetaDbError> { inner.parse().map_err(|_| bad()) };
    Ok(match s {
        "INTEGER" => DataType::Integer,
        "REAL" => DataType::Real,
        "DATE" => DataType::Date,
        "BOOLEAN" => DataType::Boolean,
        "SURROGATE" => DataType::Surrogate,
        _ => {
            if let Some(rest) = s.strip_prefix("CHAR(") {
                DataType::Char(parse_n(rest.strip_suffix(')').ok_or_else(bad)?)?)
            } else if let Some(rest) = s.strip_prefix("VARCHAR(") {
                DataType::VarChar(parse_n(rest.strip_suffix(')').ok_or_else(bad)?)?)
            } else if let Some(rest) = s.strip_prefix("NUMERIC(") {
                let inner = rest.strip_suffix(')').ok_or_else(bad)?;
                match inner.split_once(',') {
                    Some((p, sc)) => DataType::Numeric(
                        p.parse().map_err(|_| bad())?,
                        sc.parse().map_err(|_| bad())?,
                    ),
                    None => DataType::Numeric(inner.parse().map_err(|_| bad())?, 0),
                }
            } else {
                return Err(bad());
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::Decimal;

    #[test]
    fn roles_and_items_round_trip() {
        let r = RoleRef::new(FactTypeId::from_raw(7), Side::Right);
        assert_eq!(dec_role(&enc_role(&r)).unwrap(), r);
        let items = vec![
            RoleOrSublink::Role(r),
            RoleOrSublink::Sublink(SublinkId::from_raw(3)),
        ];
        assert_eq!(dec_items(&enc_items(&items)).unwrap(), items);
    }

    #[test]
    fn constraints_round_trip() {
        let l = RoleRef::new(FactTypeId::from_raw(0), Side::Left);
        let r = RoleRef::new(FactTypeId::from_raw(1), Side::Right);
        let kinds = vec![
            ConstraintKind::Uniqueness { roles: vec![l, r] },
            ConstraintKind::Total {
                over: ObjectTypeId::from_raw(2),
                items: vec![
                    RoleOrSublink::Role(l),
                    RoleOrSublink::Sublink(SublinkId::from_raw(0)),
                ],
            },
            ConstraintKind::Exclusion {
                items: vec![RoleOrSublink::Role(l), RoleOrSublink::Role(r)],
            },
            ConstraintKind::Subset {
                sub: vec![l],
                sup: vec![r],
            },
            ConstraintKind::Equality {
                a: vec![l, r],
                b: vec![r, l],
            },
            ConstraintKind::Cardinality {
                role: l,
                min: 2,
                max: Some(4),
            },
            ConstraintKind::Cardinality {
                role: r,
                min: 1,
                max: None,
            },
            ConstraintKind::Value {
                over: ObjectTypeId::from_raw(1),
                values: vec![
                    Value::str("A, with comma"),
                    Value::Int(-3),
                    Value::Num(Decimal::new(1234, 2)),
                    Value::Date(99),
                    Value::Bool(true),
                ],
            },
            ConstraintKind::Value {
                over: ObjectTypeId::from_raw(1),
                values: vec![],
            },
        ];
        for k in kinds {
            let enc = encode_constraint(&k);
            let dec = decode_constraint(&enc).unwrap_or_else(|e| panic!("{enc}: {e}"));
            assert_eq!(dec, k, "{enc}");
        }
    }

    #[test]
    fn data_types_round_trip() {
        for dt in [
            DataType::Char(6),
            DataType::VarChar(30),
            DataType::Numeric(3, 0),
            DataType::Numeric(7, 2),
            DataType::Integer,
            DataType::Real,
            DataType::Date,
            DataType::Boolean,
            DataType::Surrogate,
        ] {
            assert_eq!(parse_data_type(&dt.to_string()).unwrap(), dt);
        }
        assert!(parse_data_type("NONSENSE").is_err());
    }

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(decode_constraint("BOGUS x").is_err());
        assert!(decode_constraint("UNIQ notarole").is_err());
        assert!(decode_value("Xxx").is_err());
    }
}

//! The generic relational schema — "independent of any target DBMS" (§4.3).

use crate::constraint::{RelConstraint, RelConstraintKind};
use crate::table::{Domain, DomainId, Table, TableId};
use ridl_brm::DataType;

/// A generic relational schema: domains, tables and constraints.
///
/// From this, "a schema definition for any relational (or relation-like)
/// DBMS can be derived" (§4.3) — see `ridl-sqlgen`.
#[derive(Clone, Default, Debug)]
pub struct RelSchema {
    /// Schema name.
    pub name: String,
    /// Declared domains.
    pub domains: Vec<Domain>,
    /// Tables.
    pub tables: Vec<Table>,
    /// Constraints (keys, foreign keys, view constraints, …).
    pub constraints: Vec<RelConstraint>,
}

impl RelSchema {
    /// Creates an empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds a domain, reusing an existing one with the same name/type.
    pub fn domain(&mut self, name: &str, data_type: DataType) -> DomainId {
        if let Some(i) = self
            .domains
            .iter()
            .position(|d| d.name == name && d.data_type == data_type)
        {
            return DomainId(i as u32);
        }
        self.domains.push(Domain::new(name, data_type));
        DomainId(self.domains.len() as u32 - 1)
    }

    /// Adds a table.
    pub fn add_table(&mut self, table: Table) -> TableId {
        self.tables.push(table);
        TableId(self.tables.len() as u32 - 1)
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, c: RelConstraint) {
        self.constraints.push(c);
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id.index()]
    }

    /// The domain with the given id.
    pub fn domain_of(&self, id: DomainId) -> &Domain {
        &self.domains[id.index()]
    }

    /// Iterates tables with ids.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// Finds a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .map(|i| TableId(i as u32))
    }

    /// The primary-key column ordinals of a table, if declared.
    pub fn primary_key_of(&self, table: TableId) -> Option<&[u32]> {
        self.constraints.iter().find_map(|c| match &c.kind {
            RelConstraintKind::PrimaryKey { table: t, cols } if *t == table => {
                Some(cols.as_slice())
            }
            _ => None,
        })
    }

    /// All candidate keys (including the primary key) of a table.
    pub fn keys_of(&self, table: TableId) -> Vec<&[u32]> {
        self.constraints
            .iter()
            .filter_map(|c| match &c.kind {
                RelConstraintKind::PrimaryKey { table: t, cols }
                | RelConstraintKind::CandidateKey { table: t, cols }
                    if *t == table =>
                {
                    Some(cols.as_slice())
                }
                _ => None,
            })
            .collect()
    }

    /// Foreign keys leaving a table.
    pub fn foreign_keys_of(&self, table: TableId) -> Vec<&RelConstraint> {
        self.constraints
            .iter()
            .filter(|c| {
                matches!(&c.kind, RelConstraintKind::ForeignKey { table: t, .. } if *t == table)
            })
            .collect()
    }

    /// Constraints touching a table.
    pub fn constraints_of(&self, table: TableId) -> Vec<&RelConstraint> {
        self.constraints
            .iter()
            .filter(|c| c.kind.tables().contains(&table))
            .collect()
    }

    /// A fresh constraint name `"<prefix>_<n>"` with a running number per
    /// prefix, matching the paper's `C_EQ$_3`-style names.
    pub fn fresh_constraint_name(&self, kind: &RelConstraintKind) -> String {
        let prefix = kind.name_prefix();
        let n = self
            .constraints
            .iter()
            .filter(|c| c.kind.name_prefix() == prefix)
            .count()
            + 1;
        format!("{prefix}_{n}")
    }

    /// Adds a constraint under a freshly generated name; returns the name.
    pub fn add_named(&mut self, kind: RelConstraintKind) -> String {
        let name = self.fresh_constraint_name(&kind);
        self.constraints
            .push(RelConstraint::new(name.clone(), kind));
        name
    }

    /// Checks referential integrity of ids inside the schema definition
    /// itself (every constraint's tables/columns exist, every column's
    /// domain exists). Returns human-readable problems.
    pub fn check_ids(&self) -> Vec<String> {
        let mut errs = Vec::new();
        for (tid, t) in self.tables() {
            for c in &t.columns {
                if c.domain.index() >= self.domains.len() {
                    errs.push(format!(
                        "column {}.{} references missing domain",
                        self.tables[tid.index()].name,
                        c.name
                    ));
                }
            }
        }
        for c in &self.constraints {
            for t in c.kind.tables() {
                if t.index() >= self.tables.len() {
                    errs.push(format!("constraint {} references missing table", c.name));
                }
            }
            for cr in c.kind.columns() {
                if cr.table.index() >= self.tables.len()
                    || cr.col as usize >= self.tables[cr.table.index()].columns.len()
                {
                    errs.push(format!("constraint {} references missing column", c.name));
                }
            }
        }
        errs
    }

    /// Column names for a list of ordinals, for rendering.
    pub fn col_names(&self, table: TableId, cols: &[u32]) -> Vec<&str> {
        cols.iter()
            .map(|c| self.table(table).column(*c).name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ColumnSelection;
    use crate::table::Column;

    fn sample() -> RelSchema {
        let mut s = RelSchema::new("fig6");
        let d_id = s.domain("D_Paper_Id", DataType::Char(6));
        let d_title = s.domain("D_Title", DataType::VarChar(60));
        let paper = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d_id),
                Column::not_null("Title_of", d_title),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: paper,
            cols: vec![0],
        });
        s
    }

    #[test]
    fn domain_dedup() {
        let mut s = sample();
        let d1 = s.domain("D_Paper_Id", DataType::Char(6));
        assert_eq!(d1, DomainId(0));
        let d2 = s.domain("D_Paper_Id", DataType::Char(8));
        assert_ne!(d2, DomainId(0));
    }

    #[test]
    fn key_lookup_and_fresh_names() {
        let mut s = sample();
        let t = s.table_by_name("Paper").unwrap();
        assert_eq!(s.primary_key_of(t), Some(&[0u32][..]));
        assert_eq!(s.keys_of(t).len(), 1);
        let name = s.add_named(RelConstraintKind::CandidateKey {
            table: t,
            cols: vec![1],
        });
        assert_eq!(name, "C_KEY$_2");
        assert_eq!(s.keys_of(t).len(), 2);
    }

    #[test]
    fn id_check_finds_dangling() {
        let mut s = sample();
        s.add_named(RelConstraintKind::EqualityView {
            left: ColumnSelection::of(TableId(7), vec![0]),
            right: ColumnSelection::of(TableId(0), vec![99]),
        });
        let errs = s.check_ids();
        assert!(errs.len() >= 2, "{errs:?}");
    }

    #[test]
    fn constraints_of_filters_by_table() {
        let s = sample();
        let t = s.table_by_name("Paper").unwrap();
        assert_eq!(s.constraints_of(t).len(), 1);
        assert!(s.foreign_keys_of(t).is_empty());
    }
}

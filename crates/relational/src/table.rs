//! Structural elements of the extended relational model: domains, tables,
//! columns.

use std::fmt;

use ridl_brm::DataType;

/// Identifier of a [`Domain`] in a [`crate::RelSchema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The raw index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Identifier of a [`Table`] in a [`crate::RelSchema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl TableId {
    /// The raw index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tab{}", self.0)
    }
}

/// A column reference: table + column ordinal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColRef {
    /// The owning table.
    pub table: TableId,
    /// Ordinal of the column within the table.
    pub col: u32,
}

impl ColRef {
    /// Convenience constructor.
    pub fn new(table: TableId, col: u32) -> Self {
        Self { table, col }
    }
}

impl fmt::Debug for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}.{}", self.table, self.col)
    }
}

/// A named domain, as in SQL2 `CREATE DOMAIN`.
///
/// RIDL-M generates one domain per lexical object type so that foreign keys
/// demonstrably relate compatible domains (naive algorithm step 4, §4).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Domain {
    /// Domain name, e.g. `D_Paper_ProgramId`.
    pub name: String,
    /// The underlying data type.
    pub data_type: DataType,
}

impl Domain {
    /// Creates a domain.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into(),
            data_type,
        }
    }
}

/// A column of a table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    /// Column name, e.g. `Paper_ProgramId_Is`.
    pub name: String,
    /// The domain constraining the column's values.
    pub domain: DomainId,
    /// Whether NULL is admissible. The paper renders nullable attribute
    /// names between brackets.
    pub nullable: bool,
}

impl Column {
    /// Creates a NOT NULL column.
    pub fn not_null(name: impl Into<String>, domain: DomainId) -> Self {
        Self {
            name: name.into(),
            domain,
            nullable: false,
        }
    }

    /// Creates a nullable column.
    pub fn nullable(name: impl Into<String>, domain: DomainId) -> Self {
        Self {
            name: name.into(),
            domain,
            nullable: true,
        }
    }
}

/// A relation schema (table).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// The columns, in declaration order.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates a table.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Self {
            name: name.into(),
            columns,
        }
    }

    /// Finds a column ordinal by name.
    pub fn column_by_name(&self, name: &str) -> Option<u32> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| i as u32)
    }

    /// The column at the given ordinal.
    pub fn column(&self, col: u32) -> &Column {
        &self.columns[col as usize]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_lookup() {
        let t = Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", DomainId(0)),
                Column::nullable("Date_of_submission", DomainId(1)),
            ],
        );
        assert_eq!(t.column_by_name("Paper_Id"), Some(0));
        assert_eq!(t.column_by_name("Date_of_submission"), Some(1));
        assert_eq!(t.column_by_name("Missing"), None);
        assert_eq!(t.arity(), 2);
        assert!(!t.column(0).nullable);
        assert!(t.column(1).nullable);
    }
}

//! Parallel full-state validation.
//!
//! [`crate::validate::validate`] is a sequence of independent work units:
//! the structural checks of each table (slot, arity, NOT NULL, DOMAIN)
//! followed by each constraint's check. No unit reads another unit's
//! output, and none mutates the state, so the units can be distributed
//! across threads freely. [`validate_parallel`] partitions them over
//! [`std::thread::scope`] workers pulling from a shared atomic cursor
//! (work-stealing, so one expensive view constraint does not serialise the
//! rest behind a static split).
//!
//! # Determinism
//!
//! Each unit writes into its own violation buffer, and the buffers are
//! concatenated **in unit order** after all workers join. The sequential
//! validator is exactly that concatenation executed in order, so the
//! parallel result is byte-identical — same violations, same order, same
//! messages — regardless of worker count or scheduling
//! (`tests/parallel_validator.rs` asserts this differentially on seeded
//! and deliberately corrupted populations).
//!
//! The engine uses this for its O(state) validations — `commit`,
//! `load_state` and the `FullState` oracle mode — where the constraint
//! count of an industrial mapping (hundreds of constraints over 120–150
//! tables) gives the scheduler real work to spread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::schema::RelSchema;
use crate::state::RelState;
use crate::table::TableId;
use crate::validate::{self, RelViolation};

/// States below this row count validate sequentially in [`validate_parallel`]:
/// thread spawn/join overhead (~tens of µs) dwarfs the work.
const SMALL_STATE_ROWS: usize = 512;

/// Validates `state` against `schema` using up to
/// [`std::thread::available_parallelism`] workers, falling back to the
/// sequential [`validate::validate`] for small states. The result is
/// byte-identical to the sequential validator's.
pub fn validate_parallel(schema: &RelSchema, state: &RelState) -> Vec<RelViolation> {
    if state.num_rows() < SMALL_STATE_ROWS {
        ridl_obs::metrics().sequential_validations.inc();
        let mut span = ridl_obs::span::enter("validate.full");
        if span.is_recording() {
            span.attr("workers", 1u64);
            span.attr("rows", state.num_rows());
        }
        return validate::validate(schema, state);
    }
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    validate_with_workers(schema, state, workers)
}

/// Validates with an explicit worker count (tests drive this directly to
/// exercise the merge on any machine). `workers <= 1` runs sequentially;
/// more workers than units are not spawned.
///
/// # Panic containment
///
/// A panicking check (a malformed constraint, an out-of-range column
/// ordinal) must not abort the process: each unit runs under
/// [`catch_unwind`], panicked units are retried sequentially after the
/// workers join, and a unit that panics again is reported as a `PANIC`
/// pseudo-violation — the statement is rejected instead of the engine
/// dying. Every caught panic counts into `validate.worker_panics` and is
/// emitted through the obs sink.
pub fn validate_with_workers(
    schema: &RelSchema,
    state: &RelState,
    workers: usize,
) -> Vec<RelViolation> {
    let units = schema.tables.len() + schema.constraints.len();
    let mut span = ridl_obs::span::enter("validate.full");
    if span.is_recording() {
        span.attr("workers", workers.min(units.max(1)));
        span.attr("units", units);
        span.attr("rows", state.num_rows());
    }
    if workers <= 1 || units <= 1 {
        ridl_obs::metrics().sequential_validations.inc();
        return validate::validate(schema, state);
    }
    ridl_obs::metrics().parallel_validations.inc();
    let workers = workers.min(units);
    let cursor = AtomicUsize::new(0);
    let panicked: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let mut per_worker: Vec<Vec<(usize, Vec<RelViolation>)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, Vec<RelViolation>)> = Vec::new();
                    loop {
                        let unit = cursor.fetch_add(1, Ordering::Relaxed);
                        if unit >= units {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| {
                            let mut out = Vec::new();
                            run_unit(schema, state, unit, &mut out);
                            out
                        })) {
                            Ok(out) => {
                                if !out.is_empty() {
                                    local.push((unit, out));
                                }
                            }
                            Err(_) => panicked
                                .lock()
                                .expect("panicked-unit list poisoned")
                                .push(unit),
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut tagged: Vec<(usize, Vec<RelViolation>)> = per_worker.drain(..).flatten().collect();
    // Sequential fallback for units whose check panicked in a worker; a
    // persistent panic becomes a violation rather than an abort.
    let mut panicked = panicked.into_inner().expect("panicked-unit list poisoned");
    panicked.sort_unstable();
    for unit in panicked {
        ridl_obs::metrics().worker_panics.inc();
        ridl_obs::emit(
            "validate.worker_panic",
            1,
            &format!("unit {unit} retried sequentially"),
        );
        let out = catch_unwind(AssertUnwindSafe(|| {
            let mut out = Vec::new();
            run_unit(schema, state, unit, &mut out);
            out
        }))
        .unwrap_or_else(|_| {
            vec![RelViolation {
                constraint: "PANIC".into(),
                detail: format!("validator unit {unit} panicked; its check did not complete"),
            }]
        });
        if !out.is_empty() {
            tagged.push((unit, out));
        }
    }
    // Deterministic merge: concatenate unit buffers in unit order, which is
    // exactly the order the sequential validator emits.
    tagged.sort_by_key(|(unit, _)| *unit);
    tagged.into_iter().flat_map(|(_, v)| v).collect()
}

/// Runs one work unit: units `0..tables` are per-table structure checks,
/// the rest are per-constraint checks in schema order.
fn run_unit(schema: &RelSchema, state: &RelState, unit: usize, out: &mut Vec<RelViolation>) {
    let num_tables = schema.tables.len();
    if unit < num_tables {
        validate::check_structure_table(schema, state, TableId(unit as u32), out);
    } else {
        let c = &schema.constraints[unit - num_tables];
        validate::check_constraint(schema, state, &c.name, &c.kind, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ColumnSelection, RelConstraintKind};
    use crate::table::{Column, Table};
    use ridl_brm::{DataType, Value};

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    /// Schema with enough constraint kinds that several units report.
    fn schema() -> RelSchema {
        let mut s = RelSchema::new("par");
        let d = s.domain("D", DataType::Char(4));
        let a = s.add_table(Table::new(
            "A",
            vec![Column::not_null("K", d), Column::nullable("R", d)],
        ));
        let b = s.add_table(Table::new("B", vec![Column::not_null("K", d)]));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: a,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::ForeignKey {
            table: a,
            cols: vec![1],
            ref_table: b,
            ref_cols: vec![0],
        });
        s.add_named(RelConstraintKind::EqualityView {
            left: ColumnSelection::of(b, vec![0]),
            right: ColumnSelection::of(a, vec![1]).where_not_null(vec![1]),
        });
        s
    }

    /// A state violating keys, FKs, NOT NULL, DOMAIN and the equality view
    /// at once, so the merge has interleaved buffers to order.
    fn dirty_state() -> RelState {
        let mut st = RelState::with_tables(2);
        st.insert(TableId(0), vec![v("a"), v("x")]);
        st.insert(TableId(0), vec![v("a"), None]); // duplicate key
        st.insert(TableId(0), vec![None, v("y")]); // NOT NULL + dangling FK
        st.insert(TableId(0), vec![v("LONG-VALUE"), None]); // DOMAIN
        st.insert(TableId(1), vec![v("z")]); // equality view one-sided
        st
    }

    #[test]
    fn matches_sequential_for_any_worker_count() {
        let s = schema();
        let st = dirty_state();
        let seq = validate::validate(&s, &st);
        assert!(!seq.is_empty());
        for workers in [1, 2, 3, 4, 8, 33] {
            assert_eq!(
                validate_with_workers(&s, &st, workers),
                seq,
                "worker count {workers} diverged"
            );
        }
    }

    #[test]
    fn clean_state_is_clean_in_parallel() {
        let s = schema();
        let mut st = RelState::with_tables(2);
        st.insert(TableId(0), vec![v("a"), v("x")]);
        st.insert(TableId(1), vec![v("x")]);
        assert!(validate_with_workers(&s, &st, 4).is_empty());
    }

    #[test]
    fn auto_entry_point_agrees_with_sequential() {
        let s = schema();
        let st = dirty_state();
        assert_eq!(validate_parallel(&s, &st), validate::validate(&s, &st));
    }

    /// A panicking check (here: a `CheckValue` with an out-of-range column
    /// ordinal) must reject the validation, not abort the process. The
    /// panic is contained, retried sequentially, reported as a `PANIC`
    /// pseudo-violation, counted, and surfaced through the obs sink —
    /// while every healthy unit still reports normally.
    #[test]
    fn worker_panic_is_contained_and_reported() {
        let mut s = schema();
        s.add_named(RelConstraintKind::CheckValue {
            table: TableId(0),
            col: 99,
            values: vec![Value::str("x")],
        });
        let mut st = RelState::with_tables(2);
        st.insert(TableId(0), vec![v("a"), v("x")]);
        st.insert(TableId(0), vec![v("a"), None]); // duplicate key: healthy unit reports
        st.insert(TableId(1), vec![v("x")]);
        let sink = std::sync::Arc::new(ridl_obs::MemorySink::new());
        ridl_obs::attach_sink(sink.clone());
        let before = ridl_obs::snapshot();
        let out = validate_with_workers(&s, &st, 4);
        let delta = ridl_obs::snapshot().since(&before);
        ridl_obs::detach_sink();
        assert!(
            out.iter().any(|x| x.constraint == "PANIC"),
            "expected a PANIC pseudo-violation, got {out:?}"
        );
        assert!(
            out.iter().any(|x| x.detail.contains("duplicate key")),
            "healthy units must still report: {out:?}"
        );
        assert!(delta.counter("validate.worker_panics") >= 1, "{delta:?}");
        assert!(!sink.named("validate.worker_panic").is_empty());
    }
}

//! A fast non-cryptographic hasher for the constraint counters.
//!
//! The counter maps of [`crate::index::ConstraintIndexes`] are probed and
//! updated on every row change and charged with every row on load; their
//! keys are short projections (`Vec<Value>`), so the default SipHash's
//! DoS resistance buys nothing here while costing most of the probe. This
//! is the well-known Fx construction (rotate, xor, multiply by a golden-
//! ratio-derived constant) over 8-byte chunks — a few instructions per
//! word, good dispersion on short structured keys.
//!
//! Only used for the in-process counter maps, which are never exposed to
//! attacker-chosen keys in an adversarial setting beyond what the engine
//! itself already admits (a hostile population can at worst slow its own
//! validation).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash state. `Default` starts at zero, as `BuildHasherDefault`
/// requires.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while let Some(chunk) = bytes.first_chunk::<8>() {
            self.add(u64::from_ne_bytes(*chunk));
            bytes = &bytes[8..];
        }
        if let Some(chunk) = bytes.first_chunk::<4>() {
            self.add(u32::from_ne_bytes(*chunk) as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = vec![Some("abc".to_owned()), None];
        let b = vec![Some("abc".to_owned()), None];
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nearby_values_disperse() {
        // Sequential short strings (the common identifier shape) must not
        // collide pairwise.
        let hashes: Vec<u64> = (0..1000).map(|i| hash_of(&format!("v{i:04}"))).collect();
        let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(distinct.len(), hashes.len());
    }

    #[test]
    fn maps_work_end_to_end() {
        let mut m: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        for i in 0..100u32 {
            *m.entry(vec![i % 10, i / 10]).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&vec![3, 4]], 1);
    }
}

//! Relational database states.

use std::collections::BTreeSet;
use std::sync::Arc;

use ridl_brm::Value;

use crate::table::TableId;

/// A row: one optional value per column (NULL = `None`).
pub type Row = Vec<Option<Value>>;

/// A state of a relational schema: a set of rows per table.
///
/// Sets (not bags) — the paper's model-theoretic treatment works with
/// relations proper; `BTreeSet` keeps iteration deterministic.
///
/// Tables are held behind `Arc` with copy-on-write mutation
/// ([`Arc::make_mut`]): cloning a state is O(tables) regardless of row
/// count, so a clone serves as a cheap immutable **snapshot**. Mutating
/// either side after a clone copies only the touched table. This is what
/// lets server sessions read a frozen version while the writer advances.
///
/// Each table carries a monotone **mutation counter**, bumped on every
/// effective [`RelState::insert`]/[`RelState::remove`]. The durability
/// layer reads the counters to estimate churn between checkpoints; they
/// are bookkeeping, not data, so equality compares rows only (two states
/// with the same rows are equal regardless of how they got there).
#[derive(Clone, Default, Debug)]
pub struct RelState {
    tables: Vec<Arc<BTreeSet<Row>>>,
    mutations: Vec<u64>,
}

impl PartialEq for RelState {
    fn eq(&self, other: &Self) -> bool {
        self.tables == other.tables
    }
}

impl Eq for RelState {}

impl RelState {
    /// An empty state for a schema with `num_tables` tables.
    pub fn with_tables(num_tables: usize) -> Self {
        Self {
            tables: (0..num_tables).map(|_| Arc::new(BTreeSet::new())).collect(),
            mutations: vec![0; num_tables],
        }
    }

    /// Inserts a row; returns false if it was already present.
    pub fn insert(&mut self, table: TableId, row: Row) -> bool {
        let done = Arc::make_mut(&mut self.tables[table.index()]).insert(row);
        if done {
            self.mutations[table.index()] += 1;
        }
        done
    }

    /// Removes a row; returns false if absent.
    pub fn remove(&mut self, table: TableId, row: &Row) -> bool {
        let done = Arc::make_mut(&mut self.tables[table.index()]).remove(row);
        if done {
            self.mutations[table.index()] += 1;
        }
        done
    }

    /// Per-table mutation counters: effective inserts + removes since the
    /// state was created. Direct edits through [`RelState::rows_mut`]
    /// bypass the counters (that door exists for tests planting
    /// corruption, not for regular mutation paths).
    pub fn mutation_counts(&self) -> &[u64] {
        &self.mutations
    }

    /// Total effective mutations across all tables.
    pub fn total_mutations(&self) -> u64 {
        self.mutations.iter().sum()
    }

    /// The rows of a table.
    pub fn rows(&self, table: TableId) -> &BTreeSet<Row> {
        &self.tables[table.index()]
    }

    /// Mutable rows of a table (copy-on-write: unshares the table first).
    pub fn rows_mut(&mut self, table: TableId) -> &mut BTreeSet<Row> {
        Arc::make_mut(&mut self.tables[table.index()])
    }

    /// True if `other` shares the underlying storage of every table with
    /// `self` — i.e. the two states are clones with no mutation on either
    /// side since the clone. Used by snapshot tests to prove reads are
    /// zero-copy.
    pub fn shares_storage_with(&self, other: &RelState) -> bool {
        self.tables.len() == other.tables.len()
            && self
                .tables
                .iter()
                .zip(&other.tables)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// Number of tables the state covers.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total number of rows.
    pub fn num_rows(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Projects a table's rows onto column ordinals, keeping rows where all
    /// `not_null` columns are non-null. This is the evaluation of a
    /// [`crate::ColumnSelection`] and of forwards-map SELECTs.
    pub fn select(&self, table: TableId, cols: &[u32], not_null: &[u32]) -> BTreeSet<Row> {
        self.select_where(table, cols, not_null, &[])
    }

    /// Like [`RelState::select`], additionally keeping only rows where each
    /// `(col, value)` filter matches exactly.
    pub fn select_where(
        &self,
        table: TableId,
        cols: &[u32],
        not_null: &[u32],
        eq: &[(u32, Value)],
    ) -> BTreeSet<Row> {
        self.tables[table.index()]
            .iter()
            .filter(|row| not_null.iter().all(|c| row[*c as usize].is_some()))
            .filter(|row| eq.iter().all(|(c, v)| row[*c as usize].as_ref() == Some(v)))
            .map(|row| cols.iter().map(|c| row[*c as usize].clone()).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    #[test]
    fn insert_remove_select() {
        let mut st = RelState::with_tables(1);
        let t = TableId(0);
        assert!(st.insert(t, vec![v("a"), v("x")]));
        assert!(!st.insert(t, vec![v("a"), v("x")]));
        assert!(st.insert(t, vec![v("b"), None]));
        assert_eq!(st.num_rows(), 2);

        let all = st.select(t, &[0], &[]);
        assert_eq!(all.len(), 2);
        let filtered = st.select(t, &[0], &[1]);
        assert_eq!(filtered.len(), 1);
        assert!(filtered.contains(&vec![v("a")]));

        assert!(st.remove(t, &vec![v("b"), None]));
        assert_eq!(st.num_rows(), 1);
    }

    #[test]
    fn mutation_counters_track_effective_changes_but_not_equality() {
        let mut a = RelState::with_tables(2);
        let mut b = RelState::with_tables(2);
        let t = TableId(0);
        a.insert(t, vec![v("x")]);
        a.insert(t, vec![v("x")]); // duplicate: no effect, no count
        a.remove(t, &vec![v("y")]); // absent: no effect, no count
        a.remove(t, &vec![v("x")]);
        assert_eq!(a.mutation_counts(), &[2, 0]);
        assert_eq!(a.total_mutations(), 2);
        // Same rows, different history: still equal.
        assert_eq!(a, b);
        b.insert(TableId(1), vec![v("z")]);
        assert_ne!(a, b);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut st = RelState::with_tables(2);
        st.insert(TableId(0), vec![v("a")]);
        let snap = st.clone();
        assert!(snap.shares_storage_with(&st));
        // Mutating the original unshares only the touched table; the
        // snapshot keeps observing the frozen version.
        st.insert(TableId(0), vec![v("b")]);
        assert!(!snap.shares_storage_with(&st));
        assert_eq!(snap.rows(TableId(0)).len(), 1);
        assert_eq!(st.rows(TableId(0)).len(), 2);
        // Ineffective mutation through make_mut still unshares, but rows
        // stay equal.
        let snap2 = st.clone();
        assert!(!st.insert(TableId(0), vec![v("b")]));
        assert_eq!(snap2, st);
    }

    #[test]
    fn select_projects_in_order() {
        let mut st = RelState::with_tables(1);
        st.insert(TableId(0), vec![v("k"), v("a"), v("b")]);
        let proj = st.select(TableId(0), &[2, 0], &[]);
        assert!(proj.contains(&vec![v("b"), v("k")]));
    }
}

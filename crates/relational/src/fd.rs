//! Functional-dependency theory: closure, superkey test, minimal cover.
//!
//! Used by the normal-form checker to substantiate the paper's claim (§4)
//! that "in the absence of additional constraints which express functional or
//! multivalued dependencies in a procedural fashion, this algorithm always
//! yields a relational schema in fifth normal form".

use std::collections::BTreeSet;

/// A functional dependency `lhs → rhs` over column ordinals of one table.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Fd {
    /// Determinant columns.
    pub lhs: BTreeSet<u32>,
    /// Determined columns.
    pub rhs: BTreeSet<u32>,
}

impl Fd {
    /// Creates an FD from slices.
    pub fn new(lhs: &[u32], rhs: &[u32]) -> Self {
        Self {
            lhs: lhs.iter().copied().collect(),
            rhs: rhs.iter().copied().collect(),
        }
    }

    /// True when the dependency is trivial (`rhs ⊆ lhs`).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }
}

/// The attribute closure of `attrs` under `fds` (textbook fixpoint).
pub fn closure(attrs: &BTreeSet<u32>, fds: &[Fd]) -> BTreeSet<u32> {
    let mut out = attrs.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs.is_subset(&out) && !fd.rhs.is_subset(&out) {
                out.extend(fd.rhs.iter().copied());
                changed = true;
            }
        }
    }
    out
}

/// Whether `attrs` functionally determines all of `all_cols` under `fds`.
pub fn is_superkey(attrs: &BTreeSet<u32>, all_cols: &BTreeSet<u32>, fds: &[Fd]) -> bool {
    closure(attrs, fds).is_superset(all_cols)
}

/// All minimal candidate keys of a relation with columns `all_cols` under
/// `fds`. Exponential in the worst case; table arities here are small.
pub fn candidate_keys(all_cols: &BTreeSet<u32>, fds: &[Fd]) -> Vec<BTreeSet<u32>> {
    let cols: Vec<u32> = all_cols.iter().copied().collect();
    let n = cols.len();
    let mut keys: Vec<BTreeSet<u32>> = Vec::new();
    // Enumerate subsets in order of increasing size so minimality is easy.
    for size in 0..=n {
        let mut found_this_size = Vec::new();
        for mask in 0u64..(1u64 << n) {
            if (mask.count_ones() as usize) != size {
                continue;
            }
            let subset: BTreeSet<u32> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| cols[i])
                .collect();
            if keys.iter().any(|k| k.is_subset(&subset)) {
                continue; // superset of a smaller key
            }
            if is_superkey(&subset, all_cols, fds) {
                found_this_size.push(subset);
            }
        }
        keys.extend(found_this_size);
    }
    keys
}

/// A minimal cover of `fds`: singleton right-hand sides, no extraneous
/// left-hand attributes, no redundant dependencies.
pub fn minimal_cover(fds: &[Fd]) -> Vec<Fd> {
    // 1. Split right-hand sides.
    let mut cover: Vec<Fd> = Vec::new();
    for fd in fds {
        for &r in &fd.rhs {
            if !fd.lhs.contains(&r) {
                cover.push(Fd {
                    lhs: fd.lhs.clone(),
                    rhs: [r].into_iter().collect(),
                });
            }
        }
    }
    // 2. Remove extraneous LHS attributes.
    let mut i = 0;
    while i < cover.len() {
        let lhs: Vec<u32> = cover[i].lhs.iter().copied().collect();
        for a in lhs {
            if cover[i].lhs.len() <= 1 {
                break;
            }
            let mut reduced = cover[i].lhs.clone();
            reduced.remove(&a);
            if closure(&reduced, &cover).is_superset(&cover[i].rhs) {
                cover[i].lhs = reduced;
            }
        }
        i += 1;
    }
    // 3. Remove redundant FDs.
    let mut i = 0;
    while i < cover.len() {
        let fd = cover[i].clone();
        let rest: Vec<Fd> = cover
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, f)| f.clone())
            .collect();
        if closure(&fd.lhs, &rest).is_superset(&fd.rhs) {
            cover.remove(i);
        } else {
            i += 1;
        }
    }
    cover.sort();
    cover.dedup();
    cover
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> BTreeSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn closure_textbook() {
        // A→B, B→C: closure(A) = {A,B,C}.
        let fds = vec![Fd::new(&[0], &[1]), Fd::new(&[1], &[2])];
        assert_eq!(closure(&set(&[0]), &fds), set(&[0, 1, 2]));
        assert_eq!(closure(&set(&[1]), &fds), set(&[1, 2]));
        assert_eq!(closure(&set(&[2]), &fds), set(&[2]));
    }

    #[test]
    fn superkey_and_candidate_keys() {
        // R(A,B,C), A→B, B→C: only key is {A}.
        let fds = vec![Fd::new(&[0], &[1]), Fd::new(&[1], &[2])];
        let all = set(&[0, 1, 2]);
        assert!(is_superkey(&set(&[0]), &all, &fds));
        assert!(!is_superkey(&set(&[1]), &all, &fds));
        assert_eq!(candidate_keys(&all, &fds), vec![set(&[0])]);
    }

    #[test]
    fn multiple_candidate_keys() {
        // R(A,B), A→B, B→A: keys {A} and {B}.
        let fds = vec![Fd::new(&[0], &[1]), Fd::new(&[1], &[0])];
        let keys = candidate_keys(&set(&[0, 1]), &fds);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&set(&[0])) && keys.contains(&set(&[1])));
    }

    #[test]
    fn no_fds_key_is_everything() {
        let keys = candidate_keys(&set(&[0, 1]), &[]);
        assert_eq!(keys, vec![set(&[0, 1])]);
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        // A→B, B→C, A→C (redundant).
        let fds = vec![
            Fd::new(&[0], &[1]),
            Fd::new(&[1], &[2]),
            Fd::new(&[0], &[2]),
        ];
        let mc = minimal_cover(&fds);
        assert_eq!(mc.len(), 2);
        assert!(mc.contains(&Fd::new(&[0], &[1])));
        assert!(mc.contains(&Fd::new(&[1], &[2])));
    }

    #[test]
    fn minimal_cover_trims_extraneous_lhs() {
        // AB→C with A→B means B extraneous? A→B, AB→C: closure(A)={A,B,C}
        // so AB→C reduces to A→C.
        let fds = vec![Fd::new(&[0], &[1]), Fd::new(&[0, 1], &[2])];
        let mc = minimal_cover(&fds);
        assert!(mc.contains(&Fd::new(&[0], &[2])) || mc.contains(&Fd::new(&[1], &[2])));
        for fd in &mc {
            assert_eq!(fd.rhs.len(), 1);
        }
    }

    #[test]
    fn trivial_fd_detection() {
        assert!(Fd::new(&[0, 1], &[1]).is_trivial());
        assert!(!Fd::new(&[0], &[1]).is_trivial());
    }
}

//! Delta validation: O(change) constraint checking for engine mutations.
//!
//! [`crate::validate::validate`] re-examines the whole state; for a single
//! row insert that is O(database). [`validate_delta`] instead checks only
//! the constraints *reachable from the touched rows*, answering every
//! membership/uniqueness question with O(1) probes against a
//! [`ConstraintIndexes`] maintained alongside the state.
//!
//! # Contract
//!
//! `validate_delta(schema, state, indexes, delta)` must be called **after**
//! the delta's operations have been applied to both `state` and `indexes`,
//! and it assumes the pre-delta state satisfied the schema. Under that
//! precondition it is *sound*: if it returns no violations, a full
//! [`crate::validate::validate`] of the post-state returns none either
//! (the delta-introduced violation would need a witness row among the
//! changed rows, and every changed row triggers the probes for every
//! constraint on its table). It can over-approximate on pathological
//! deltas that insert and then remove the same row — a case the engine
//! never produces — so the engine's debug oracle asserts only the sound
//! direction.
//!
//! # Delta rules per constraint kind
//!
//! * keys — on insert, probe the key counter for a count > 1;
//! * foreign keys — on insert into the referencing table, probe the target
//!   counter for existence; on remove from the referenced table, probe the
//!   *reverse* (source) counter to detect newly orphaned referencers;
//! * frequency — on insert, group count outside `[min, max]`; on remove,
//!   group count in `(0, min)`;
//! * view constraints (`C_EQ$`, `C_SS$`, `C_EX$`, `C_TU$`) — for each
//!   selection the touched row qualifies under, probe the membership
//!   counters of the other selections of the constraint;
//! * conditional equality (`C_CEQ$`) — inserted indicator rows are checked
//!   directly; sub-relation changes compare the flagged-row counter with
//!   the all-rows counter for the touched key;
//! * row-local kinds (`C_DE$`, `C_EE$`, `C_VAL$`, `C_CX$`) — re-checked on
//!   the inserted row only, no probes needed.

use std::collections::HashMap;

use crate::constraint::RelConstraintKind;
use crate::index::{
    key_projection, sel_projection, sel_qualifies, CompiledKind, ConstraintIndexes,
};
use crate::schema::RelSchema;
use crate::state::{RelState, Row};
use crate::table::TableId;
use crate::validate::RelViolation;

/// One row-level change, as recorded by the engine's undo log.
#[derive(Clone, PartialEq, Debug)]
pub enum DeltaOp {
    /// A row inserted into a table.
    Insert {
        /// The table.
        table: TableId,
        /// The inserted row.
        row: Row,
    },
    /// A row removed from a table.
    Remove {
        /// The table.
        table: TableId,
        /// The removed row.
        row: Row,
    },
}

impl DeltaOp {
    /// The table the operation touches.
    pub fn table(&self) -> TableId {
        match self {
            DeltaOp::Insert { table, .. } | DeltaOp::Remove { table, .. } => *table,
        }
    }

    /// The row the operation carries.
    pub fn row(&self) -> &Row {
        match self {
            DeltaOp::Insert { row, .. } | DeltaOp::Remove { row, .. } => row,
        }
    }
}

/// An ordered set of row-level changes against a state.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct Delta {
    /// The operations, in application order.
    pub ops: Vec<DeltaOp>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an insert.
    pub fn insert(&mut self, table: TableId, row: Row) {
        self.ops.push(DeltaOp::Insert { table, row });
    }

    /// Records a removal.
    pub fn remove(&mut self, table: TableId, row: Row) {
        self.ops.push(DeltaOp::Remove { table, row });
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// The net effect of the delta: inverse pairs on the same `(table,
    /// row)` cancel, and each surviving row keeps one op, in first-touch
    /// order. Because states are sets, the net delta applied to the
    /// pre-state reaches the same post-state as the raw op list — but it
    /// never carries an insert-then-remove pair, the one shape on which
    /// [`validate_delta`] may over-approximate (probing a row that is no
    /// longer there). The engine validates batches through their net
    /// delta for exactly that reason: group-commit verdicts then match
    /// full re-validation of the post-state.
    pub fn net(&self) -> Delta {
        let mut order: Vec<(TableId, &Row)> = Vec::new();
        let mut balance: HashMap<(TableId, &Row), i32> = HashMap::new();
        for op in &self.ops {
            let key = (op.table(), op.row());
            let slot = balance.entry(key).or_insert_with(|| {
                order.push(key);
                0
            });
            *slot += match op {
                DeltaOp::Insert { .. } => 1,
                DeltaOp::Remove { .. } => -1,
            };
        }
        let mut net = Delta::new();
        for key in order {
            match balance[&key] {
                n if n > 0 => net.insert(key.0, key.1.clone()),
                n if n < 0 => net.remove(key.0, key.1.clone()),
                _ => {}
            }
        }
        net
    }
}

/// Validates the changes in `delta` against `schema`, probing `indexes`
/// instead of scanning `state`. See the module docs for the contract.
pub fn validate_delta(
    schema: &RelSchema,
    state: &RelState,
    indexes: &ConstraintIndexes,
    delta: &Delta,
) -> Vec<RelViolation> {
    let mut span = ridl_obs::span::enter("validate.delta");
    if span.is_recording() {
        span.attr("ops", delta.ops.len());
    }
    let mut out = Vec::new();
    for op in &delta.ops {
        let table = op.table();
        if table.index() >= schema.tables.len() || table.index() >= state.num_tables() {
            push_unique(
                &mut out,
                RelViolation {
                    constraint: "ARITY".into(),
                    detail: format!("state has no slot for table {:?}", table),
                },
            );
            continue;
        }
        if let DeltaOp::Insert { row, .. } = op {
            if !check_row_structure(schema, table, row, &mut out) {
                // Malformed arity: the row is exempt from (and unsafe for)
                // constraint projections, mirroring the full validator.
                continue;
            }
        }
        for ci in &indexes.by_table[table.index()] {
            check_op(
                schema,
                indexes,
                *ci,
                table,
                op.row(),
                matches!(op, DeltaOp::Insert { .. }),
                &mut out,
            );
        }
    }
    out
}

/// Validates a state whose rows were **streamed through freshly charged
/// indexes** — the engine's `bulk_load` path. The empty pre-state is
/// trivially valid, so the charged counters summarise the whole state and
/// most constraints can be checked **in aggregate**, directly on the
/// counter entries (O(distinct projections) per constraint) instead of
/// per row:
///
/// * keys — any projection counted more than once is a duplicate;
/// * foreign keys — any counted source projection absent from the target
///   counter dangles;
/// * frequency — any group count outside `[min, max]`;
/// * view constraints — membership comparisons between selection counters;
/// * conditional equality — flagged/all-rows/membership counter agreement
///   per tracked key.
///
/// Only the checks a counter cannot see stay per-row: structure (arity,
/// NOT NULL, DOMAIN), NULLs in primary keys (NULL projections are exempt
/// from counting), and the row-local kinds — none of which hash anything.
/// Violation order is deterministic (constraint order, details sorted
/// within a constraint) even though the counters iterate in hash order.
pub fn validate_load(
    schema: &RelSchema,
    state: &RelState,
    indexes: &ConstraintIndexes,
) -> Vec<RelViolation> {
    let mut span = ridl_obs::span::enter("validate.load");
    if span.is_recording() {
        span.attr("rows", state.num_rows());
    }
    let mut out = Vec::new();
    // Per-row pass: structure, primary-key NULLs, row-local constraints.
    for (tid, _) in schema.tables() {
        if tid.index() >= state.num_tables() {
            push_unique(
                &mut out,
                RelViolation {
                    constraint: "ARITY".into(),
                    detail: format!("state has no slot for table {:?}", tid),
                },
            );
            continue;
        }
        for row in state.rows(tid) {
            if !check_row_structure(schema, tid, row, &mut out) {
                continue;
            }
            for ci in &indexes.by_table[tid.index()] {
                let compiled = &indexes.compiled[*ci];
                match &compiled.kind {
                    CompiledKind::Key {
                        table,
                        cols,
                        require_not_null: true,
                        ..
                    } if *table == tid && key_projection(row, cols).is_none() => {
                        let any_not_nullable_null = cols.iter().any(|c| {
                            row[*c as usize].is_none() && !schema.table(tid).column(*c).nullable
                        });
                        if any_not_nullable_null {
                            push_unique(
                                &mut out,
                                RelViolation {
                                    constraint: compiled.name.clone(),
                                    detail: format!(
                                        "NULL in primary key of {}",
                                        schema.table(tid).name
                                    ),
                                },
                            );
                        }
                    }
                    CompiledKind::RowLocal => check_row_local(
                        schema,
                        &compiled.name,
                        &schema.constraints[compiled.schema_index].kind,
                        tid,
                        row,
                        &mut out,
                    ),
                    _ => {}
                }
            }
        }
    }
    // Aggregate pass: one walk over each constraint's counter entries.
    for compiled in &indexes.compiled {
        let sw = ridl_obs::Stopwatch::start();
        let start = out.len();
        check_aggregate(schema, indexes, compiled, &mut out);
        out[start..].sort();
        let stats = &ridl_obs::metrics().per_kind[compiled.kind.obs_class().index()];
        stats.checks.inc();
        stats.violations.add((out.len() - start) as u64);
        sw.record(&stats.nanos);
    }
    out
}

/// Checks one compiled constraint against its counters alone.
fn check_aggregate(
    schema: &RelSchema,
    idx: &ConstraintIndexes,
    compiled: &crate::index::Compiled,
    out: &mut Vec<RelViolation>,
) {
    let name = compiled.name.as_str();
    match &compiled.kind {
        CompiledKind::Key { table, counter, .. } => {
            for (key, n) in idx.key_entries(*counter) {
                if n > 1 {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!("duplicate key {key:?} in {}", schema.table(*table).name),
                    });
                }
            }
        }
        CompiledKind::ForeignKey {
            table,
            ref_table,
            source,
            target,
            ..
        } => {
            for (key, _) in idx.key_entries(*source) {
                if idx.key_count(*target, key) == 0 {
                    out.push(fk_violation(schema, name, key, *table, *ref_table));
                }
            }
        }
        CompiledKind::Frequency {
            counter, min, max, ..
        } => {
            for (key, n) in idx.key_entries(*counter) {
                if n < *min || max.map(|m| n > m).unwrap_or(false) {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!(
                            "group {key:?} occurs {n} times, outside [{min}, {}]",
                            max.map(|m| m.to_string()).unwrap_or_else(|| "∞".into())
                        ),
                    });
                }
            }
        }
        CompiledKind::EqualityView { left, right } => {
            let mut differ = |a: crate::index::SelCounterId, b: crate::index::SelCounterId| {
                for (t, _) in idx.sel_entries(a) {
                    if idx.sel_count(b, t) == 0 {
                        push_unique(
                            out,
                            RelViolation {
                                constraint: name.to_owned(),
                                detail: format!("selections differ, e.g. [{t:?}]"),
                            },
                        );
                    }
                }
            };
            differ(left.1, right.1);
            differ(right.1, left.1);
        }
        CompiledKind::SubsetView { sub, sup } => {
            for (t, _) in idx.sel_entries(sub.1) {
                if idx.sel_count(sup.1, t) == 0 {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!("{t:?} not contained in superset selection"),
                    });
                }
            }
        }
        CompiledKind::ExclusionView { items } => {
            for (i, (_, a)) in items.iter().enumerate() {
                for (t, _) in idx.sel_entries(*a) {
                    if items
                        .iter()
                        .enumerate()
                        .any(|(j, (_, b))| j > i && idx.sel_count(*b, t) > 0)
                    {
                        out.push(RelViolation {
                            constraint: name.to_owned(),
                            detail: format!("{t:?} appears in two exclusive selections"),
                        });
                    }
                }
            }
        }
        CompiledKind::TotalUnionView { over, items } => {
            for (t, _) in idx.sel_entries(over.1) {
                if items.iter().all(|(_, c)| idx.sel_count(*c, t) == 0) {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!("{t:?} not covered by any union member"),
                    });
                }
            }
        }
        CompiledKind::ConditionalEquality {
            table,
            indicator,
            sub,
            flagged,
            all_keys,
            ..
        } => {
            for (key, n_all) in idx.sel_entries(*all_keys) {
                let present = idx.sel_count(sub.1, key) > 0;
                let n_flagged = idx.sel_count(*flagged, key);
                let consistent = if present {
                    n_flagged == n_all
                } else {
                    n_flagged == 0
                };
                if !consistent {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: ceq_detail(schema, *table, *indicator, key, !present, present),
                    });
                }
            }
            // Sub-relation keys with no indicator row at all are accepted
            // here, matching both the full validator (which walks indicator
            // rows only) and the delta rule (n_flagged == n_all == 0).
        }
        CompiledKind::RowLocal => {} // handled in the per-row pass
    }
}

/// Structural checks (arity, NOT NULL, DOMAIN) for one inserted row.
/// Returns false when the arity is wrong (cell checks are skipped).
/// Accounting is detail-gated: this runs once per touched row on the
/// engine's hot path.
fn check_row_structure(
    schema: &RelSchema,
    table: TableId,
    row: &Row,
    out: &mut Vec<RelViolation>,
) -> bool {
    if !ridl_obs::detail_enabled() {
        return check_row_structure_inner(schema, table, row, out);
    }
    let sw = ridl_obs::Stopwatch::start();
    let before = out.len();
    let ok = check_row_structure_inner(schema, table, row, out);
    let stats = &ridl_obs::metrics().per_kind[ridl_obs::ConstraintClass::Structure.index()];
    stats.checks.inc();
    stats.violations.add((out.len() - before) as u64);
    sw.record(&stats.nanos);
    ok
}

fn check_row_structure_inner(
    schema: &RelSchema,
    table: TableId,
    row: &Row,
    out: &mut Vec<RelViolation>,
) -> bool {
    let t = schema.table(table);
    if row.len() != t.arity() {
        push_unique(
            out,
            RelViolation {
                constraint: "ARITY".into(),
                detail: format!(
                    "row of {} has {} values, table has {} columns",
                    t.name,
                    row.len(),
                    t.arity()
                ),
            },
        );
        return false;
    }
    for (i, cell) in row.iter().enumerate() {
        let col = t.column(i as u32);
        match cell {
            None => {
                if !col.nullable {
                    push_unique(
                        out,
                        RelViolation {
                            constraint: "NOT NULL".into(),
                            detail: format!("NULL in {}.{}", t.name, col.name),
                        },
                    );
                }
            }
            Some(v) => {
                let dt = schema.domain_of(col.domain).data_type;
                if !v.fits(dt) {
                    push_unique(
                        out,
                        RelViolation {
                            constraint: "DOMAIN".into(),
                            detail: format!("{v} does not fit {dt} in {}.{}", t.name, col.name),
                        },
                    );
                }
            }
        }
    }
    true
}

/// One delta probe of one compiled constraint. Accounting is detail-gated:
/// this is the engine's innermost per-op loop, and with detail off the only
/// instrumentation cost is one relaxed load.
fn check_op(
    schema: &RelSchema,
    idx: &ConstraintIndexes,
    ci: usize,
    op_table: TableId,
    row: &Row,
    inserted: bool,
    out: &mut Vec<RelViolation>,
) {
    if !ridl_obs::detail_enabled() {
        return check_op_inner(schema, idx, ci, op_table, row, inserted, out);
    }
    let sw = ridl_obs::Stopwatch::start();
    let before = out.len();
    check_op_inner(schema, idx, ci, op_table, row, inserted, out);
    let stats = &ridl_obs::metrics().per_kind[idx.compiled[ci].kind.obs_class().index()];
    stats.checks.inc();
    stats.violations.add((out.len() - before) as u64);
    sw.record(&stats.nanos);
}

fn check_op_inner(
    schema: &RelSchema,
    idx: &ConstraintIndexes,
    ci: usize,
    op_table: TableId,
    row: &Row,
    inserted: bool,
    out: &mut Vec<RelViolation>,
) {
    let compiled = &idx.compiled[ci];
    let name = compiled.name.as_str();
    match &compiled.kind {
        CompiledKind::Key {
            table,
            cols,
            counter,
            require_not_null,
        } => {
            if !inserted || *table != op_table {
                return;
            }
            match key_projection(row, cols) {
                Some(key) => {
                    if idx.key_count(*counter, &key) > 1 {
                        push_unique(
                            out,
                            RelViolation {
                                constraint: name.to_owned(),
                                detail: format!(
                                    "duplicate key {key:?} in {}",
                                    schema.table(*table).name
                                ),
                            },
                        );
                    }
                }
                None => {
                    if *require_not_null {
                        let any_not_nullable_null = cols.iter().any(|c| {
                            row[*c as usize].is_none() && !schema.table(*table).column(*c).nullable
                        });
                        if any_not_nullable_null {
                            push_unique(
                                out,
                                RelViolation {
                                    constraint: name.to_owned(),
                                    detail: format!(
                                        "NULL in primary key of {}",
                                        schema.table(*table).name
                                    ),
                                },
                            );
                        }
                    }
                }
            }
        }
        CompiledKind::ForeignKey {
            table,
            cols,
            ref_table,
            ref_cols,
            source,
            target,
        } => {
            // Inserted referencer: its key must exist among the targets.
            if inserted && *table == op_table {
                if let Some(key) = key_projection(row, cols) {
                    if idx.key_count(*target, &key) == 0 {
                        push_unique(out, fk_violation(schema, name, &key, *table, *ref_table));
                    }
                }
            }
            // Removed target: the reverse index tells us in O(1) whether
            // anything still references the vanished key.
            if !inserted && *ref_table == op_table {
                if let Some(key) = key_projection(row, ref_cols) {
                    if idx.key_count(*target, &key) == 0 && idx.key_count(*source, &key) > 0 {
                        push_unique(out, fk_violation(schema, name, &key, *table, *ref_table));
                    }
                }
            }
        }
        CompiledKind::Frequency {
            table,
            cols,
            counter,
            min,
            max,
        } => {
            if *table != op_table {
                return;
            }
            if let Some(key) = key_projection(row, cols) {
                let n = idx.key_count(*counter, &key);
                let bad = if inserted {
                    n < *min || max.map(|m| n > m).unwrap_or(false)
                } else {
                    n > 0 && n < *min
                };
                if bad {
                    push_unique(
                        out,
                        RelViolation {
                            constraint: name.to_owned(),
                            detail: format!(
                                "group {key:?} occurs {n} times, outside [{min}, {}]",
                                max.map(|m| m.to_string()).unwrap_or_else(|| "∞".into())
                            ),
                        },
                    );
                }
            }
        }
        CompiledKind::EqualityView { left, right } => {
            for (sel, _) in [left, right] {
                if sel.table == op_table && sel_qualifies(row, sel) {
                    let t = sel_projection(row, sel);
                    let l = idx.sel_count(left.1, &t) > 0;
                    let r = idx.sel_count(right.1, &t) > 0;
                    if l != r {
                        push_unique(
                            out,
                            RelViolation {
                                constraint: name.to_owned(),
                                detail: format!("selections differ, e.g. [{t:?}]"),
                            },
                        );
                    }
                }
            }
        }
        CompiledKind::SubsetView { sub, sup } => {
            let probe = |t: &Row, out: &mut Vec<RelViolation>| {
                if idx.sel_count(sub.1, t) > 0 && idx.sel_count(sup.1, t) == 0 {
                    push_unique(
                        out,
                        RelViolation {
                            constraint: name.to_owned(),
                            detail: format!("{t:?} not contained in superset selection"),
                        },
                    );
                }
            };
            if inserted && sub.0.table == op_table && sel_qualifies(row, &sub.0) {
                probe(&sel_projection(row, &sub.0), out);
            }
            if !inserted && sup.0.table == op_table && sel_qualifies(row, &sup.0) {
                probe(&sel_projection(row, &sup.0), out);
            }
        }
        CompiledKind::ExclusionView { items } => {
            if !inserted {
                return;
            }
            for (i, (sel, _)) in items.iter().enumerate() {
                if sel.table == op_table && sel_qualifies(row, sel) {
                    let t = sel_projection(row, sel);
                    if items
                        .iter()
                        .enumerate()
                        .any(|(j, (_, c))| j != i && idx.sel_count(*c, &t) > 0)
                    {
                        push_unique(
                            out,
                            RelViolation {
                                constraint: name.to_owned(),
                                detail: format!("{t:?} appears in two exclusive selections"),
                            },
                        );
                    }
                }
            }
        }
        CompiledKind::TotalUnionView { over, items } => {
            let uncovered = |t: &Row| items.iter().all(|(_, c)| idx.sel_count(*c, t) == 0);
            let report = |t: Row, out: &mut Vec<RelViolation>| {
                push_unique(
                    out,
                    RelViolation {
                        constraint: name.to_owned(),
                        detail: format!("{t:?} not covered by any union member"),
                    },
                );
            };
            if inserted && over.0.table == op_table && sel_qualifies(row, &over.0) {
                let t = sel_projection(row, &over.0);
                if uncovered(&t) {
                    report(t, out);
                }
            }
            if !inserted {
                for (sel, _) in items {
                    if sel.table == op_table && sel_qualifies(row, sel) {
                        let t = sel_projection(row, sel);
                        if idx.sel_count(over.1, &t) > 0 && uncovered(&t) {
                            report(t, out);
                        }
                    }
                }
            }
        }
        CompiledKind::ConditionalEquality {
            table,
            indicator,
            when_value,
            key_cols,
            sub,
            flagged,
            all_keys,
        } => {
            // Inserted indicator row: check it directly against membership.
            if inserted && *table == op_table {
                let key: Row = key_cols.iter().map(|c| row[*c as usize].clone()).collect();
                let is_flagged = row[*indicator as usize].as_ref() == Some(when_value);
                let present = idx.sel_count(sub.1, &key) > 0;
                if is_flagged != present {
                    push_unique(
                        out,
                        RelViolation {
                            constraint: name.to_owned(),
                            detail: ceq_detail(
                                schema, *table, *indicator, &key, is_flagged, present,
                            ),
                        },
                    );
                }
            }
            // Sub-relation membership changed for a key: every indicator row
            // of that key must agree with the new membership.
            if sub.0.table == op_table && sel_qualifies(row, &sub.0) {
                let key = sel_projection(row, &sub.0);
                let present = idx.sel_count(sub.1, &key) > 0;
                let n_flagged = idx.sel_count(*flagged, &key);
                let n_all = idx.sel_count(*all_keys, &key);
                let consistent = if present {
                    n_flagged == n_all
                } else {
                    n_flagged == 0
                };
                if !consistent {
                    push_unique(
                        out,
                        RelViolation {
                            constraint: name.to_owned(),
                            detail: ceq_detail(schema, *table, *indicator, &key, !present, present),
                        },
                    );
                }
            }
        }
        CompiledKind::RowLocal => {
            if inserted {
                check_row_local(
                    schema,
                    name,
                    &schema.constraints[compiled.schema_index].kind,
                    op_table,
                    row,
                    out,
                );
            }
        }
    }
}

fn fk_violation(
    schema: &RelSchema,
    name: &str,
    key: &[ridl_brm::Value],
    table: TableId,
    ref_table: TableId,
) -> RelViolation {
    RelViolation {
        constraint: name.to_owned(),
        detail: format!(
            "{key:?} in {} has no match in {}",
            schema.table(table).name,
            schema.table(ref_table).name
        ),
    }
}

fn ceq_detail(
    schema: &RelSchema,
    table: TableId,
    indicator: u32,
    key: &Row,
    flagged: bool,
    present: bool,
) -> String {
    format!(
        "indicator {} of key {key:?} in {} is {} but sub-relation membership is {}",
        schema.table(table).column(indicator).name,
        schema.table(table).name,
        flagged,
        present
    )
}

/// Per-row constraints that need no counters: checked directly against the
/// inserted row, with the same messages as the full validator.
fn check_row_local(
    schema: &RelSchema,
    name: &str,
    kind: &RelConstraintKind,
    op_table: TableId,
    row: &Row,
    out: &mut Vec<RelViolation>,
) {
    match kind {
        RelConstraintKind::DependentExistence {
            table,
            dependent,
            on,
        } if *table == op_table
            && row[*dependent as usize].is_some()
            && row[*on as usize].is_none() =>
        {
            push_unique(
                out,
                RelViolation {
                    constraint: name.to_owned(),
                    detail: format!(
                        "{} set while {} is NULL in {}",
                        schema.table(*table).column(*dependent).name,
                        schema.table(*table).column(*on).name,
                        schema.table(*table).name
                    ),
                },
            );
        }
        RelConstraintKind::EqualExistence { table, cols } if *table == op_table => {
            let set = cols.iter().filter(|c| row[**c as usize].is_some()).count();
            if set != 0 && set != cols.len() {
                push_unique(
                    out,
                    RelViolation {
                        constraint: name.to_owned(),
                        detail: format!(
                            "columns {:?} of {} are partially NULL",
                            schema.col_names(*table, cols),
                            schema.table(*table).name
                        ),
                    },
                );
            }
        }
        RelConstraintKind::CheckValue { table, col, values } if *table == op_table => {
            if let Some(v) = &row[*col as usize] {
                if !values.contains(v) {
                    push_unique(
                        out,
                        RelViolation {
                            constraint: name.to_owned(),
                            detail: format!(
                                "{v} not admitted in {}.{}",
                                schema.table(*table).name,
                                schema.table(*table).column(*col).name
                            ),
                        },
                    );
                }
            }
        }
        RelConstraintKind::CoverExistence { table, groups } if *table == op_table => {
            let covered = groups
                .iter()
                .any(|g| g.iter().all(|c| row[*c as usize].is_some()));
            if !covered {
                push_unique(
                    out,
                    RelViolation {
                        constraint: name.to_owned(),
                        detail: format!(
                            "row of {} has no complete reference group",
                            schema.table(*table).name
                        ),
                    },
                );
            }
        }
        _ => {}
    }
}

/// Keeps the report free of exact duplicates (one delta can trip the same
/// probe from several ops).
fn push_unique(out: &mut Vec<RelViolation>, v: RelViolation) {
    if !out.contains(&v) {
        out.push(v);
    }
}

/// Convenience: applies `delta` to `state` and `indexes`, then validates it.
/// Returns the violations; on violations the caller is expected to revert
/// (the engine does this via its undo log).
pub fn apply_and_validate(
    schema: &RelSchema,
    state: &mut RelState,
    indexes: &mut ConstraintIndexes,
    delta: &Delta,
) -> Vec<RelViolation> {
    for op in &delta.ops {
        match op {
            DeltaOp::Insert { table, row } => {
                if state.insert(*table, row.clone()) {
                    indexes.note_insert(*table, row);
                }
            }
            DeltaOp::Remove { table, row } => {
                if state.remove(*table, row) {
                    indexes.note_remove(*table, row);
                }
            }
        }
    }
    validate_delta(schema, state, indexes, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ColumnSelection;
    use crate::table::{Column, Table};
    use crate::validate::validate;
    use ridl_brm::{DataType, Value};

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    /// Applies ops and asserts delta verdict == full verdict (both clean or
    /// both dirty), returning the delta violations.
    fn check(
        schema: &RelSchema,
        state: &mut RelState,
        indexes: &mut ConstraintIndexes,
        delta: Delta,
    ) -> Vec<RelViolation> {
        let dv = apply_and_validate(schema, state, indexes, &delta);
        let fv = validate(schema, state);
        assert_eq!(
            dv.is_empty(),
            fv.is_empty(),
            "delta verdict {dv:?} vs full verdict {fv:?}"
        );
        dv
    }

    fn two_table_schema() -> (RelSchema, TableId, TableId) {
        let mut s = RelSchema::new("delta");
        let d = s.domain("D", DataType::Char(8));
        let a = s.add_table(Table::new(
            "A",
            vec![Column::not_null("K", d), Column::nullable("R", d)],
        ));
        let b = s.add_table(Table::new("B", vec![Column::not_null("K", d)]));
        (s, a, b)
    }

    #[test]
    fn duplicate_key_detected_and_clean_insert_passes() {
        let (mut s, a, _) = two_table_schema();
        s.add_named(RelConstraintKind::PrimaryKey {
            table: a,
            cols: vec![0],
        });
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d = Delta::new();
        d.insert(a, vec![v("x"), None]);
        assert!(check(&s, &mut st, &mut idx, d).is_empty());
        let mut d2 = Delta::new();
        d2.insert(a, vec![v("x"), v("r")]);
        let vio = check(&s, &mut st, &mut idx, d2);
        assert!(vio.iter().any(|x| x.detail.contains("duplicate key")));
    }

    #[test]
    fn fk_orphan_on_target_removal() {
        let (mut s, a, b) = two_table_schema();
        s.add_named(RelConstraintKind::ForeignKey {
            table: a,
            cols: vec![1],
            ref_table: b,
            ref_cols: vec![0],
        });
        let mut st = RelState::with_tables(2);
        st.insert(b, vec![v("t")]);
        st.insert(a, vec![v("x"), v("t")]);
        let mut idx = ConstraintIndexes::build(&s, &st);
        // Removing the referenced row orphans A's reference.
        let mut d = Delta::new();
        d.remove(b, vec![v("t")]);
        let vio = check(&s, &mut st, &mut idx, d);
        assert!(vio.iter().any(|x| x.constraint.starts_with("C_FKEY$")));
    }

    #[test]
    fn fk_insert_requires_target() {
        let (mut s, a, b) = two_table_schema();
        s.add_named(RelConstraintKind::ForeignKey {
            table: a,
            cols: vec![1],
            ref_table: b,
            ref_cols: vec![0],
        });
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d = Delta::new();
        d.insert(a, vec![v("x"), v("missing")]);
        assert!(!check(&s, &mut st, &mut idx, d).is_empty());
        // Inserting target and referencer in one delta is fine.
        let mut st2 = RelState::with_tables(2);
        let mut idx2 = ConstraintIndexes::build(&s, &st2);
        let mut d2 = Delta::new();
        d2.insert(b, vec![v("t")]);
        d2.insert(a, vec![v("x"), v("t")]);
        assert!(check(&s, &mut st2, &mut idx2, d2).is_empty());
    }

    #[test]
    fn equality_view_both_directions() {
        let (mut s, a, b) = two_table_schema();
        s.add_named(RelConstraintKind::EqualityView {
            left: ColumnSelection::of(b, vec![0]),
            right: ColumnSelection::of(a, vec![1]).where_not_null(vec![1]),
        });
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        // Insert only one side: violation.
        let mut d = Delta::new();
        d.insert(b, vec![v("p")]);
        assert!(!check(&s, &mut st, &mut idx, d).is_empty());
        // Completing the pair heals it.
        let mut d2 = Delta::new();
        d2.insert(a, vec![v("x"), v("p")]);
        assert!(check(&s, &mut st, &mut idx, d2).is_empty());
        // Removing one side re-breaks it.
        let mut d3 = Delta::new();
        d3.remove(a, vec![v("x"), v("p")]);
        assert!(!check(&s, &mut st, &mut idx, d3).is_empty());
    }

    #[test]
    fn frequency_bounds() {
        let (mut s, a, _) = two_table_schema();
        s.add_named(RelConstraintKind::Frequency {
            table: a,
            cols: vec![1],
            min: 2,
            max: Some(2),
        });
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d = Delta::new();
        d.insert(a, vec![v("x1"), v("g")]);
        d.insert(a, vec![v("x2"), v("g")]);
        assert!(check(&s, &mut st, &mut idx, d).is_empty());
        // Third member exceeds max.
        let mut d2 = Delta::new();
        d2.insert(a, vec![v("x3"), v("g")]);
        assert!(!check(&s, &mut st, &mut idx, d2).is_empty());
        // Back to two, then dropping to one undershoots min.
        let mut d3 = Delta::new();
        d3.remove(a, vec![v("x3"), v("g")]);
        assert!(check(&s, &mut st, &mut idx, d3).is_empty());
        let mut d4 = Delta::new();
        d4.remove(a, vec![v("x2"), v("g")]);
        assert!(!check(&s, &mut st, &mut idx, d4).is_empty());
    }

    #[test]
    fn total_union_and_exclusion() {
        let mut s = RelSchema::new("tu");
        let d = s.domain("D", DataType::Char(8));
        let a = s.add_table(Table::new("A", vec![Column::not_null("K", d)]));
        let b = s.add_table(Table::new("B", vec![Column::not_null("K", d)]));
        let u = s.add_table(Table::new("U", vec![Column::not_null("K", d)]));
        s.add_named(RelConstraintKind::ExclusionView {
            items: vec![
                ColumnSelection::of(a, vec![0]),
                ColumnSelection::of(b, vec![0]),
            ],
        });
        s.add_named(RelConstraintKind::TotalUnionView {
            over: ColumnSelection::of(u, vec![0]),
            items: vec![
                ColumnSelection::of(a, vec![0]),
                ColumnSelection::of(b, vec![0]),
            ],
        });
        let mut st = RelState::with_tables(3);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d1 = Delta::new();
        d1.insert(a, vec![v("x")]);
        d1.insert(u, vec![v("x")]);
        assert!(check(&s, &mut st, &mut idx, d1).is_empty());
        // Same member in both exclusive branches.
        let mut d2 = Delta::new();
        d2.insert(b, vec![v("x")]);
        let vio = check(&s, &mut st, &mut idx, d2);
        assert!(vio.iter().any(|x| x.constraint.starts_with("C_EX$")));
        let mut d3 = Delta::new();
        d3.remove(b, vec![v("x")]);
        assert!(check(&s, &mut st, &mut idx, d3).is_empty());
        // Removing the last covering member uncovers the union row.
        let mut d4 = Delta::new();
        d4.remove(a, vec![v("x")]);
        let vio4 = check(&s, &mut st, &mut idx, d4);
        assert!(vio4.iter().any(|x| x.constraint.starts_with("C_TU$")));
    }

    #[test]
    fn conditional_equality_sub_side() {
        let mut s = RelSchema::new("ceq");
        let d = s.domain("D", DataType::Char(8));
        let db = s.domain("DB", DataType::Boolean);
        let paper = s.add_table(Table::new(
            "Paper",
            vec![Column::not_null("Id", d), Column::not_null("Flag", db)],
        ));
        let pp = s.add_table(Table::new("PP", vec![Column::not_null("Id", d)]));
        s.add_named(RelConstraintKind::ConditionalEquality {
            table: paper,
            indicator: 1,
            when_value: Value::Bool(true),
            key_cols: vec![0],
            sub: ColumnSelection::of(pp, vec![0]),
        });
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d1 = Delta::new();
        d1.insert(paper, vec![v("P1"), Some(Value::Bool(true))]);
        d1.insert(pp, vec![v("P1")]);
        d1.insert(paper, vec![v("P2"), Some(Value::Bool(false))]);
        assert!(check(&s, &mut st, &mut idx, d1).is_empty());
        // Sub-relation row appears without the indicator being set.
        let mut d2 = Delta::new();
        d2.insert(pp, vec![v("P2")]);
        let vio = check(&s, &mut st, &mut idx, d2);
        assert!(vio.iter().any(|x| x.constraint.starts_with("C_CEQ$")));
        let mut d2b = Delta::new();
        d2b.remove(pp, vec![v("P2")]);
        assert!(check(&s, &mut st, &mut idx, d2b).is_empty());
        // Sub-relation row vanishing while the indicator stays set.
        let mut d3 = Delta::new();
        d3.remove(pp, vec![v("P1")]);
        let vio3 = check(&s, &mut st, &mut idx, d3);
        assert!(vio3.iter().any(|x| x.constraint.starts_with("C_CEQ$")));
    }

    /// Applies ops and asserts the delta report is **byte-identical** to
    /// the full validator's — same violations, same order, same messages.
    /// Callers construct single-witness states so "e.g."-style samples in
    /// the messages coincide too.
    fn check_exact(
        schema: &RelSchema,
        state: &mut RelState,
        indexes: &mut ConstraintIndexes,
        delta: Delta,
    ) -> Vec<RelViolation> {
        let dv = apply_and_validate(schema, state, indexes, &delta);
        let fv = validate(schema, state);
        assert_eq!(dv, fv, "delta report differs from the full validator");
        assert!(!dv.is_empty(), "expected a negative case");
        dv
    }

    #[test]
    fn key_rejection_message_matches_full_validator() {
        let (mut s, a, _) = two_table_schema();
        s.add_named(RelConstraintKind::PrimaryKey {
            table: a,
            cols: vec![0],
        });
        let mut st = RelState::with_tables(2);
        st.insert(a, vec![v("x"), None]);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d = Delta::new();
        d.insert(a, vec![v("x"), v("r")]);
        let vio = check_exact(&s, &mut st, &mut idx, d);
        assert!(vio[0].detail.contains("duplicate key"));
    }

    #[test]
    fn fk_rejection_message_matches_full_validator() {
        let (mut s, a, b) = two_table_schema();
        s.add_named(RelConstraintKind::ForeignKey {
            table: a,
            cols: vec![1],
            ref_table: b,
            ref_cols: vec![0],
        });
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d = Delta::new();
        d.insert(a, vec![v("x"), v("missing")]);
        let vio = check_exact(&s, &mut st, &mut idx, d);
        assert!(vio[0].detail.contains("has no match in"));
    }

    #[test]
    fn frequency_rejection_message_matches_full_validator() {
        let (mut s, a, _) = two_table_schema();
        s.add_named(RelConstraintKind::Frequency {
            table: a,
            cols: vec![1],
            min: 1,
            max: Some(1),
        });
        let mut st = RelState::with_tables(2);
        st.insert(a, vec![v("x1"), v("g")]);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d = Delta::new();
        d.insert(a, vec![v("x2"), v("g")]);
        let vio = check_exact(&s, &mut st, &mut idx, d);
        assert!(vio[0].detail.contains("occurs 2 times"));
    }

    #[test]
    fn subset_view_rejection_message_matches_full_validator() {
        let (mut s, a, b) = two_table_schema();
        s.add_named(RelConstraintKind::SubsetView {
            sub: ColumnSelection::of(a, vec![1]).where_not_null(vec![1]),
            sup: ColumnSelection::of(b, vec![0]),
        });
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d = Delta::new();
        d.insert(a, vec![v("x"), v("t")]);
        let vio = check_exact(&s, &mut st, &mut idx, d);
        assert!(vio[0].detail.contains("not contained in superset"));
    }

    #[test]
    fn equality_view_rejection_message_matches_full_validator() {
        let (mut s, a, b) = two_table_schema();
        s.add_named(RelConstraintKind::EqualityView {
            left: ColumnSelection::of(b, vec![0]),
            right: ColumnSelection::of(a, vec![1]).where_not_null(vec![1]),
        });
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d = Delta::new();
        d.insert(b, vec![v("p")]);
        let vio = check_exact(&s, &mut st, &mut idx, d);
        assert!(vio[0].detail.contains("selections differ"));
    }

    #[test]
    fn exclusion_view_rejection_message_matches_full_validator() {
        let (mut s, a, b) = two_table_schema();
        s.add_named(RelConstraintKind::ExclusionView {
            items: vec![
                ColumnSelection::of(a, vec![0]),
                ColumnSelection::of(b, vec![0]),
            ],
        });
        let mut st = RelState::with_tables(2);
        st.insert(a, vec![v("x"), None]);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d = Delta::new();
        d.insert(b, vec![v("x")]);
        let vio = check_exact(&s, &mut st, &mut idx, d);
        assert!(vio[0].detail.contains("exclusive selections"));
    }

    #[test]
    fn net_delta_cancels_inverse_pairs() {
        let (_, a, b) = two_table_schema();
        let mut d = Delta::new();
        d.insert(a, vec![v("x"), None]); // cancelled by the remove below
        d.insert(b, vec![v("y")]);
        d.remove(a, vec![v("x"), None]);
        d.remove(b, vec![v("z")]); // survives as a remove
        let net = d.net();
        assert_eq!(net.len(), 2);
        assert_eq!(
            net.ops[0],
            DeltaOp::Insert {
                table: b,
                row: vec![v("y")]
            }
        );
        assert_eq!(
            net.ops[1],
            DeltaOp::Remove {
                table: b,
                row: vec![v("z")]
            }
        );
        // Re-inserting after a cancelled pair survives (balance returns > 0).
        let mut d2 = Delta::new();
        d2.insert(a, vec![v("x"), None]);
        d2.remove(a, vec![v("x"), None]);
        d2.insert(a, vec![v("x"), None]);
        assert_eq!(d2.net().len(), 1);
    }

    #[test]
    fn row_local_and_structure() {
        let mut s = RelSchema::new("rl");
        let d = s.domain("D", DataType::Char(4));
        let t = s.add_table(Table::new(
            "T",
            vec![
                Column::not_null("K", d),
                Column::nullable("A", d),
                Column::nullable("B", d),
            ],
        ));
        s.add_named(RelConstraintKind::DependentExistence {
            table: t,
            dependent: 2,
            on: 1,
        });
        s.add_named(RelConstraintKind::CheckValue {
            table: t,
            col: 1,
            values: vec![Value::str("ok")],
        });
        let mut st = RelState::with_tables(1);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let mut d1 = Delta::new();
        d1.insert(t, vec![v("k1"), v("ok"), v("ok")]);
        assert!(check(&s, &mut st, &mut idx, d1).is_empty());
        let mut d2 = Delta::new();
        d2.insert(t, vec![v("k2"), None, v("ok")]); // dependent without on
        assert!(!check(&s, &mut st, &mut idx, d2).is_empty());
        let mut st2 = RelState::with_tables(1);
        let mut idx2 = ConstraintIndexes::build(&s, &st2);
        let mut d3 = Delta::new();
        d3.insert(t, vec![v("k"), v("bad"), None]); // CheckValue
        assert!(!check(&s, &mut st2, &mut idx2, d3).is_empty());
        let mut st3 = RelState::with_tables(1);
        let mut idx3 = ConstraintIndexes::build(&s, &st3);
        let mut d4 = Delta::new();
        d4.insert(t, vec![None, None, None]); // NOT NULL on K
        let vio = apply_and_validate(&s, &mut st3, &mut idx3, &d4);
        assert!(vio.iter().any(|x| x.constraint == "NOT NULL"));
    }
}

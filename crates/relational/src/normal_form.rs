//! Normal-form classification of generated tables.
//!
//! Reproduces the paper's §4 claim that the naive/default synthesis yields a
//! fifth-normal-form schema, and conversely lets experiments show that
//! denormalising options (table combining, indicator attributes) knowingly
//! leave that regime.
//!
//! 5NF proper requires reasoning over arbitrary join dependencies; RIDL-M's
//! synthesis only ever produces tables that are joins of *functional* facts
//! around one anchor (key → attribute) or single m:n facts (all-key). For
//! this class, BCNF + "no two independent multivalued facts in one table"
//! (no non-trivial MVDs beyond the declared ones) coincides with 4NF/5NF,
//! which is what [`normal_form_of`] certifies. The approximation is recorded
//! here and in EXPERIMENTS.md.

use std::collections::BTreeSet;

use crate::fd::{candidate_keys, closure, Fd};

/// A multivalued dependency `lhs →→ rhs` over column ordinals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mvd {
    /// Determinant columns.
    pub lhs: BTreeSet<u32>,
    /// Multi-determined columns.
    pub rhs: BTreeSet<u32>,
}

impl Mvd {
    /// Creates an MVD from slices.
    pub fn new(lhs: &[u32], rhs: &[u32]) -> Self {
        Self {
            lhs: lhs.iter().copied().collect(),
            rhs: rhs.iter().copied().collect(),
        }
    }
}

/// The dependencies known to hold on one table.
#[derive(Clone, Default, Debug)]
pub struct TableDependencies {
    /// All columns of the table.
    pub columns: BTreeSet<u32>,
    /// Functional dependencies.
    pub fds: Vec<Fd>,
    /// Multivalued dependencies that are not implied by the FDs
    /// (e.g. introduced by combining two m:n facts into one table).
    pub mvds: Vec<Mvd>,
}

impl TableDependencies {
    /// Creates dependencies for a table with `arity` columns.
    pub fn with_arity(arity: usize) -> Self {
        Self {
            columns: (0..arity as u32).collect(),
            fds: Vec::new(),
            mvds: Vec::new(),
        }
    }
}

/// The highest normal form a table satisfies.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum NormalForm {
    /// Violates 2NF: a non-prime attribute depends on part of a key.
    First,
    /// 2NF but a transitive dependency exists.
    Second,
    /// 3NF but some determinant is not a superkey.
    Third,
    /// BCNF but a non-trivial MVD whose determinant is not a superkey exists.
    Bcnf,
    /// 4NF; for the table class RIDL-M produces (anchored functional joins
    /// and single m:n facts) this coincides with 5NF — see module docs.
    FifthApprox,
}

impl NormalForm {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            NormalForm::First => "1NF",
            NormalForm::Second => "2NF",
            NormalForm::Third => "3NF",
            NormalForm::Bcnf => "BCNF",
            NormalForm::FifthApprox => "5NF",
        }
    }
}

/// Classifies a table by its dependencies.
pub fn normal_form_of(deps: &TableDependencies) -> NormalForm {
    let all = &deps.columns;
    let keys = candidate_keys(all, &deps.fds);
    let prime: BTreeSet<u32> = keys.iter().flatten().copied().collect();

    // BCNF: every non-trivial FD's determinant is a superkey.
    let mut bcnf = true;
    for fd in &deps.fds {
        if fd.is_trivial() {
            continue;
        }
        if !closure(&fd.lhs, &deps.fds).is_superset(all) {
            bcnf = false;
        }
    }

    // 2NF: no non-prime attribute depends on a *proper subset* of a key.
    let mut second = true;
    for key in &keys {
        if key.len() <= 1 {
            continue;
        }
        // Every proper non-empty subset of the key.
        let key_vec: Vec<u32> = key.iter().copied().collect();
        for mask in 1u64..(1 << key_vec.len()) - 1 {
            let part: BTreeSet<u32> = key_vec
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, c)| *c)
                .collect();
            let cl = closure(&part, &deps.fds);
            if cl.iter().any(|c| !prime.contains(c) && !part.contains(c)) {
                second = false;
            }
        }
    }

    // 3NF: every non-trivial FD has a superkey determinant or prime RHS.
    let mut third = true;
    for fd in &deps.fds {
        if fd.is_trivial() {
            continue;
        }
        let det_superkey = closure(&fd.lhs, &deps.fds).is_superset(all);
        let rhs_prime = fd
            .rhs
            .iter()
            .all(|c| prime.contains(c) || fd.lhs.contains(c));
        if !det_superkey && !rhs_prime {
            third = false;
        }
    }

    if !second {
        return NormalForm::First;
    }
    if !third {
        return NormalForm::Second;
    }
    if !bcnf {
        return NormalForm::Third;
    }

    // 4NF: every non-trivial declared MVD has a superkey determinant.
    for mvd in &deps.mvds {
        let trivial = mvd.rhs.is_subset(&mvd.lhs)
            || mvd.lhs.union(&mvd.rhs).copied().collect::<BTreeSet<u32>>() == *all;
        if trivial {
            continue;
        }
        if !closure(&mvd.lhs, &deps.fds).is_superset(all) {
            return NormalForm::Bcnf;
        }
    }
    NormalForm::FifthApprox
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchored_functional_table_is_5nf() {
        // Paper(Paper_Id, Title, Date): key {0}, 0→1, 0→2.
        let mut d = TableDependencies::with_arity(3);
        d.fds.push(Fd::new(&[0], &[1, 2]));
        assert_eq!(normal_form_of(&d), NormalForm::FifthApprox);
    }

    #[test]
    fn all_key_mn_table_is_5nf() {
        // writes(Person, Paper): no FDs, key = all columns.
        let d = TableDependencies::with_arity(2);
        assert_eq!(normal_form_of(&d), NormalForm::FifthApprox);
    }

    #[test]
    fn transitive_dependency_is_2nf() {
        // R(A,B,C): A→B, B→C. B is not a key, C non-prime: violates 3NF.
        let mut d = TableDependencies::with_arity(3);
        d.fds.push(Fd::new(&[0], &[1]));
        d.fds.push(Fd::new(&[1], &[2]));
        assert_eq!(normal_form_of(&d), NormalForm::Second);
    }

    #[test]
    fn partial_dependency_is_1nf() {
        // R(A,B,C): key {A,B}, A→C. C non-prime on part of key: violates 2NF.
        let mut d = TableDependencies::with_arity(3);
        d.fds.push(Fd::new(&[0], &[2]));
        assert_eq!(normal_form_of(&d), NormalForm::First);
    }

    #[test]
    fn overlapping_keys_3nf_not_bcnf() {
        // Classic: R(A,B,C), AB→C, C→A. Keys {A,B} and {B,C}; C→A has
        // non-superkey determinant but prime RHS: 3NF not BCNF.
        let mut d = TableDependencies::with_arity(3);
        d.fds.push(Fd::new(&[0, 1], &[2]));
        d.fds.push(Fd::new(&[2], &[0]));
        assert_eq!(normal_form_of(&d), NormalForm::Third);
    }

    #[test]
    fn independent_mvd_blocks_4nf() {
        // R(Person, Phone, Child): Person →→ Phone independent of Child.
        let mut d = TableDependencies::with_arity(3);
        d.mvds.push(Mvd::new(&[0], &[1]));
        assert_eq!(normal_form_of(&d), NormalForm::Bcnf);
    }

    #[test]
    fn mvd_with_superkey_determinant_is_fine() {
        let mut d = TableDependencies::with_arity(2);
        d.fds.push(Fd::new(&[0], &[1]));
        d.mvds.push(Mvd::new(&[0], &[1]));
        assert_eq!(normal_form_of(&d), NormalForm::FifthApprox);
    }

    #[test]
    fn labels_are_ordered() {
        assert!(NormalForm::First < NormalForm::FifthApprox);
        assert_eq!(NormalForm::Bcnf.label(), "BCNF");
    }
}

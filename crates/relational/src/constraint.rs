//! Constraints of the extended relational model.
//!
//! Beyond keys and NOT NULL, these are the paper's *additional constraint
//! types* (§4.1): they carry the conceptual semantics into the relational
//! schema and state the **lossless rules** of the transformation. Where a
//! target DBMS cannot enforce them, `ridl-sqlgen` renders them as commented
//! pseudo-SQL, "a formal specification for a program segment" (§4.2.2).

use std::fmt;

use ridl_brm::Value;

use crate::table::{ColRef, TableId};

/// A projection of a table with optional `IS NOT NULL` filters — the
/// building block of view constraints and of the forwards map's SELECTs.
///
/// Renders as
/// `SELECT c1, c2 FROM t WHERE (f1 IS NOT NULL) AND (f2 = v)`.
#[derive(Clone, PartialEq, Debug)]
pub struct ColumnSelection {
    /// The selected table.
    pub table: TableId,
    /// Projected column ordinals, in order.
    pub cols: Vec<u32>,
    /// Columns required to be non-null for a row to qualify.
    pub not_null: Vec<u32>,
    /// Columns required to equal a literal for a row to qualify (used for
    /// indicator-attribute membership selections).
    pub eq: Vec<(u32, Value)>,
}

impl ColumnSelection {
    /// Selection of columns with no filter.
    pub fn of(table: TableId, cols: Vec<u32>) -> Self {
        Self {
            table,
            cols,
            not_null: Vec::new(),
            eq: Vec::new(),
        }
    }

    /// Adds `IS NOT NULL` filters.
    pub fn where_not_null(mut self, cols: Vec<u32>) -> Self {
        self.not_null = cols;
        self
    }

    /// Adds an equality filter.
    pub fn where_eq(mut self, col: u32, value: Value) -> Self {
        self.eq.push((col, value));
        self
    }
}

/// The kinds of relational constraints.
#[derive(Clone, PartialEq, Debug)]
pub enum RelConstraintKind {
    /// Primary key over the given columns. Unless the `NULL ALLOWED` mapping
    /// option was used, key columns are NOT NULL (Entity Integrity Rule).
    PrimaryKey {
        /// The keyed table.
        table: TableId,
        /// Key column ordinals.
        cols: Vec<u32>,
    },
    /// Candidate key (rendered dotted in the paper's diagrams, `UNIQUE` in
    /// DDL). Rows with NULL in any key column are exempt, which is what the
    /// `NULL ALLOWED` option relies on for non-homogeneously referenced
    /// NOLOTs (§4.2.1).
    CandidateKey {
        /// The keyed table.
        table: TableId,
        /// Key column ordinals.
        cols: Vec<u32>,
    },
    /// Foreign key: the (non-null) projection of `cols` must appear in
    /// `ref_cols` of `ref_table`.
    ForeignKey {
        /// The referencing table.
        table: TableId,
        /// Referencing column ordinals.
        cols: Vec<u32>,
        /// The referenced table.
        ref_table: TableId,
        /// Referenced column ordinals.
        ref_cols: Vec<u32>,
    },
    /// `C_EQ$`: the two selections have equal row sets (the paper's EQUALITY
    /// VIEW CONSTRAINT; the lossless rule of table splitting and of
    /// sub/super-relation separation).
    EqualityView {
        /// One side.
        left: ColumnSelection,
        /// The other side.
        right: ColumnSelection,
    },
    /// `C_SS$`: the left selection's rows are contained in the right's.
    SubsetView {
        /// The contained side.
        sub: ColumnSelection,
        /// The containing side.
        sup: ColumnSelection,
    },
    /// `C_EX$`: the selections are pairwise disjoint.
    ExclusionView {
        /// The mutually exclusive selections.
        items: Vec<ColumnSelection>,
    },
    /// `C_TU$`: every row of `over` appears in at least one of `items`.
    TotalUnionView {
        /// The covered selection.
        over: ColumnSelection,
        /// The covering selections.
        items: Vec<ColumnSelection>,
    },
    /// `C_DE$` (Dependent Existence, Alternative 4 of fig. 6): in any row of
    /// `table`, `dependent IS NOT NULL` implies `on IS NOT NULL`.
    DependentExistence {
        /// The constrained table.
        table: TableId,
        /// The dependent column.
        dependent: u32,
        /// The column it depends on.
        on: u32,
    },
    /// `C_EE$` (Equal Existence): in any row, the columns are all NULL or
    /// all NOT NULL.
    EqualExistence {
        /// The constrained table.
        table: TableId,
        /// The co-existing columns.
        cols: Vec<u32>,
    },
    /// `C_CEQ$` (conditional equality, the redundancy-control rule of the
    /// `SUBOT INDICATOR FOR SUPOT` option, §4.2.2): a row of `keyed`'s
    /// selection has `indicator = when_value` exactly when its key appears
    /// in the sub-relation selection.
    ConditionalEquality {
        /// The super-relation table carrying the indicator.
        table: TableId,
        /// Ordinal of the indicator column.
        indicator: u32,
        /// Indicator value meaning "has a sub-relation tuple".
        when_value: Value,
        /// Key columns of the super-relation matched against `sub`.
        key_cols: Vec<u32>,
        /// The sub-relation selection whose membership the indicator mirrors.
        sub: ColumnSelection,
    },
    /// `C_CX$` (cover existence, the `NULL ALLOWED` option §4.2.1): every
    /// row has at least one group of columns that is fully non-null — the
    /// rule that keeps a non-homogeneously referencible NOLOT identifiable
    /// when its "primary key" admits nulls.
    CoverExistence {
        /// The constrained table.
        table: TableId,
        /// The alternative key-column groups; one must be complete per row.
        groups: Vec<Vec<u32>>,
    },
    /// `C_VAL$`: the column's non-null values are limited to the enumerated
    /// set (CHECK ... IN (...)).
    CheckValue {
        /// The constrained table.
        table: TableId,
        /// The constrained column ordinal.
        col: u32,
        /// The admissible values.
        values: Vec<Value>,
    },
    /// Occurrence frequency carried to the relational level (`C_FREQ$`):
    /// each distinct non-null value combination of `cols` occurs between
    /// `min` and `max` times in the table.
    Frequency {
        /// The constrained table.
        table: TableId,
        /// The grouped column ordinals.
        cols: Vec<u32>,
        /// Minimum group size.
        min: u32,
        /// Maximum group size (`None` = unbounded).
        max: Option<u32>,
    },
}

impl RelConstraintKind {
    /// Constraint-name prefix, matching the paper's generated names
    /// (`C_KEY$_11`, `C_FKEY$_8`, `C_EQ$_3`, `C_DE$_8`, `C_EE$_6`, …).
    pub fn name_prefix(&self) -> &'static str {
        match self {
            RelConstraintKind::PrimaryKey { .. } | RelConstraintKind::CandidateKey { .. } => {
                "C_KEY$"
            }
            RelConstraintKind::ForeignKey { .. } => "C_FKEY$",
            RelConstraintKind::EqualityView { .. } => "C_EQ$",
            RelConstraintKind::SubsetView { .. } => "C_SS$",
            RelConstraintKind::ExclusionView { .. } => "C_EX$",
            RelConstraintKind::TotalUnionView { .. } => "C_TU$",
            RelConstraintKind::DependentExistence { .. } => "C_DE$",
            RelConstraintKind::EqualExistence { .. } => "C_EE$",
            RelConstraintKind::ConditionalEquality { .. } => "C_CEQ$",
            RelConstraintKind::CoverExistence { .. } => "C_CX$",
            RelConstraintKind::CheckValue { .. } => "C_VAL$",
            RelConstraintKind::Frequency { .. } => "C_FREQ$",
        }
    }

    /// Whether an SQL2-era RDBMS can enforce this natively (keys, FK, value
    /// checks). Everything else is emitted as commented pseudo-SQL, exactly
    /// as the paper does.
    pub fn natively_enforceable(&self) -> bool {
        matches!(
            self,
            RelConstraintKind::PrimaryKey { .. }
                | RelConstraintKind::CandidateKey { .. }
                | RelConstraintKind::ForeignKey { .. }
                | RelConstraintKind::CheckValue { .. }
                | RelConstraintKind::DependentExistence { .. }
                | RelConstraintKind::EqualExistence { .. }
                | RelConstraintKind::CoverExistence { .. }
        )
    }

    /// The observability class this constraint kind reports under — the
    /// taxonomy per-statement enforcement reports, the macro-benchmark's
    /// per-class cost accounts, and the significant-example generator all
    /// share.
    pub fn class(&self) -> ridl_obs::ConstraintClass {
        use ridl_obs::ConstraintClass as C;
        match self {
            RelConstraintKind::PrimaryKey { .. } | RelConstraintKind::CandidateKey { .. } => C::Key,
            RelConstraintKind::ForeignKey { .. } => C::ForeignKey,
            RelConstraintKind::Frequency { .. } => C::Frequency,
            RelConstraintKind::EqualityView { .. } => C::EqualityView,
            RelConstraintKind::SubsetView { .. } => C::SubsetView,
            RelConstraintKind::ExclusionView { .. } => C::ExclusionView,
            RelConstraintKind::TotalUnionView { .. } => C::TotalUnionView,
            RelConstraintKind::ConditionalEquality { .. } => C::ConditionalEquality,
            RelConstraintKind::DependentExistence { .. }
            | RelConstraintKind::EqualExistence { .. }
            | RelConstraintKind::CheckValue { .. }
            | RelConstraintKind::CoverExistence { .. } => C::RowLocal,
        }
    }

    /// Every table the constraint touches.
    pub fn tables(&self) -> Vec<TableId> {
        match self {
            RelConstraintKind::PrimaryKey { table, .. }
            | RelConstraintKind::CandidateKey { table, .. }
            | RelConstraintKind::DependentExistence { table, .. }
            | RelConstraintKind::EqualExistence { table, .. }
            | RelConstraintKind::CheckValue { table, .. }
            | RelConstraintKind::CoverExistence { table, .. }
            | RelConstraintKind::Frequency { table, .. } => vec![*table],
            RelConstraintKind::ForeignKey {
                table, ref_table, ..
            } => vec![*table, *ref_table],
            RelConstraintKind::EqualityView { left, right } => vec![left.table, right.table],
            RelConstraintKind::SubsetView { sub, sup } => vec![sub.table, sup.table],
            RelConstraintKind::ExclusionView { items } => items.iter().map(|s| s.table).collect(),
            RelConstraintKind::TotalUnionView { over, items } => std::iter::once(over.table)
                .chain(items.iter().map(|s| s.table))
                .collect(),
            RelConstraintKind::ConditionalEquality { table, sub, .. } => {
                vec![*table, sub.table]
            }
        }
    }

    /// Column references this constraint mentions, for id checking.
    pub fn columns(&self) -> Vec<ColRef> {
        let sel = |s: &ColumnSelection| -> Vec<ColRef> {
            s.cols
                .iter()
                .chain(s.not_null.iter())
                .map(|c| ColRef::new(s.table, *c))
                .collect()
        };
        match self {
            RelConstraintKind::PrimaryKey { table, cols }
            | RelConstraintKind::CandidateKey { table, cols }
            | RelConstraintKind::EqualExistence { table, cols }
            | RelConstraintKind::Frequency { table, cols, .. } => {
                cols.iter().map(|c| ColRef::new(*table, *c)).collect()
            }
            RelConstraintKind::ForeignKey {
                table,
                cols,
                ref_table,
                ref_cols,
            } => cols
                .iter()
                .map(|c| ColRef::new(*table, *c))
                .chain(ref_cols.iter().map(|c| ColRef::new(*ref_table, *c)))
                .collect(),
            RelConstraintKind::EqualityView { left, right } => {
                let mut v = sel(left);
                v.extend(sel(right));
                v
            }
            RelConstraintKind::SubsetView { sub, sup } => {
                let mut v = sel(sub);
                v.extend(sel(sup));
                v
            }
            RelConstraintKind::ExclusionView { items } => items.iter().flat_map(sel).collect(),
            RelConstraintKind::TotalUnionView { over, items } => {
                let mut v = sel(over);
                v.extend(items.iter().flat_map(sel));
                v
            }
            RelConstraintKind::DependentExistence {
                table,
                dependent,
                on,
            } => vec![ColRef::new(*table, *dependent), ColRef::new(*table, *on)],
            RelConstraintKind::ConditionalEquality {
                table,
                indicator,
                key_cols,
                sub,
                ..
            } => {
                let mut v = vec![ColRef::new(*table, *indicator)];
                v.extend(key_cols.iter().map(|c| ColRef::new(*table, *c)));
                v.extend(sel(sub));
                v
            }
            RelConstraintKind::CheckValue { table, col, .. } => {
                vec![ColRef::new(*table, *col)]
            }
            RelConstraintKind::CoverExistence { table, groups } => groups
                .iter()
                .flatten()
                .map(|c| ColRef::new(*table, *c))
                .collect(),
        }
    }
}

/// A named relational constraint.
#[derive(Clone, PartialEq, Debug)]
pub struct RelConstraint {
    /// The generated constraint name, e.g. `C_EQ$_3`.
    pub name: String,
    /// What the constraint states.
    pub kind: RelConstraintKind,
}

impl RelConstraint {
    /// Creates a named constraint.
    pub fn new(name: impl Into<String>, kind: RelConstraintKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }
}

impl fmt::Display for RelConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind.name_prefix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_follow_paper_convention() {
        let pk = RelConstraintKind::PrimaryKey {
            table: TableId(0),
            cols: vec![0],
        };
        assert_eq!(pk.name_prefix(), "C_KEY$");
        assert!(pk.natively_enforceable());
        let eq = RelConstraintKind::EqualityView {
            left: ColumnSelection::of(TableId(0), vec![0]),
            right: ColumnSelection::of(TableId(1), vec![1]).where_not_null(vec![1]),
        };
        assert_eq!(eq.name_prefix(), "C_EQ$");
        assert!(!eq.natively_enforceable());
    }

    #[test]
    fn touched_tables_and_columns() {
        let fk = RelConstraintKind::ForeignKey {
            table: TableId(1),
            cols: vec![0],
            ref_table: TableId(0),
            ref_cols: vec![2],
        };
        assert_eq!(fk.tables(), vec![TableId(1), TableId(0)]);
        assert_eq!(
            fk.columns(),
            vec![ColRef::new(TableId(1), 0), ColRef::new(TableId(0), 2)]
        );
        let ce = RelConstraintKind::ConditionalEquality {
            table: TableId(0),
            indicator: 3,
            when_value: Value::Bool(true),
            key_cols: vec![0],
            sub: ColumnSelection::of(TableId(1), vec![0]),
        };
        assert_eq!(ce.tables(), vec![TableId(0), TableId(1)]);
        assert_eq!(ce.columns().len(), 3);
    }
}

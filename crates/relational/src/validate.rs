//! Enforcement of the extended relational constraints on a state.
//!
//! The paper laments that "most RDBMSs at this moment support constraints
//! poorly, if at all" (§3.3) and therefore emits the extended constraints as
//! formal specifications for the application programmer. Here the
//! specification is executable: [`validate`] decides whether a [`RelState`]
//! satisfies every constraint of a [`RelSchema`], and `ridl-engine` uses the
//! same checks to reject violating updates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ridl_brm::Value;

use crate::constraint::{ColumnSelection, RelConstraintKind};
use crate::schema::RelSchema;
use crate::state::{RelState, Row};
use crate::table::TableId;

/// A violation of the relational schema found in a state.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct RelViolation {
    /// Name of the violated constraint, or a pseudo-name for structural
    /// problems (`NOT NULL`, `ARITY`, `DOMAIN`).
    pub constraint: String,
    /// Human-readable description of the counterexample.
    pub detail: String,
}

impl fmt::Display for RelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.constraint, self.detail)
    }
}

fn eval(sel: &ColumnSelection, state: &RelState) -> BTreeSet<Row> {
    state.select_where(sel.table, &sel.cols, &sel.not_null, &sel.eq)
}

/// Validates `state` against every structural rule and constraint of
/// `schema`. Returns all violations found.
pub fn validate(schema: &RelSchema, state: &RelState) -> Vec<RelViolation> {
    let mut out = Vec::new();
    check_structure(schema, state, &mut out);
    for c in &schema.constraints {
        check_constraint(schema, state, &c.name, &c.kind, &mut out);
    }
    out
}

/// True when the state satisfies everything.
pub fn is_valid(schema: &RelSchema, state: &RelState) -> bool {
    validate(schema, state).is_empty()
}

fn check_structure(schema: &RelSchema, state: &RelState, out: &mut Vec<RelViolation>) {
    for (tid, _) in schema.tables() {
        check_structure_table(schema, state, tid, out);
    }
}

/// Structural checks (slot presence, arity, NOT NULL, DOMAIN) for one
/// table. The sequential [`validate`] is the concatenation of these per
/// table followed by [`check_constraint`] per constraint — the unit
/// decomposition [`crate::parallel`] distributes across workers.
pub(crate) fn check_structure_table(
    schema: &RelSchema,
    state: &RelState,
    tid: TableId,
    out: &mut Vec<RelViolation>,
) {
    let sw = ridl_obs::Stopwatch::start();
    let mut span = ridl_obs::span::enter(ridl_obs::ConstraintClass::Structure.span_name());
    if span.is_recording() {
        span.attr("table", schema.table(tid).name.clone());
    }
    let before = out.len();
    check_structure_table_inner(schema, state, tid, out);
    if span.is_recording() {
        span.attr("violations", out.len() - before);
    }
    let stats = &ridl_obs::metrics().per_kind[ridl_obs::ConstraintClass::Structure.index()];
    stats.checks.inc();
    stats.violations.add((out.len() - before) as u64);
    sw.record(&stats.nanos);
}

fn check_structure_table_inner(
    schema: &RelSchema,
    state: &RelState,
    tid: TableId,
    out: &mut Vec<RelViolation>,
) {
    let table = schema.table(tid);
    {
        if tid.index() >= state.num_tables() {
            out.push(RelViolation {
                constraint: "ARITY".into(),
                detail: format!("state has no slot for table {}", table.name),
            });
            return;
        }
        for row in state.rows(tid) {
            if row.len() != table.arity() {
                out.push(RelViolation {
                    constraint: "ARITY".into(),
                    detail: format!(
                        "row of {} has {} values, table has {} columns",
                        table.name,
                        row.len(),
                        table.arity()
                    ),
                });
                continue;
            }
            for (i, cell) in row.iter().enumerate() {
                let col = table.column(i as u32);
                match cell {
                    None => {
                        if !col.nullable {
                            out.push(RelViolation {
                                constraint: "NOT NULL".into(),
                                detail: format!("NULL in {}.{}", table.name, col.name),
                            });
                        }
                    }
                    Some(v) => {
                        let dt = schema.domain_of(col.domain).data_type;
                        if !v.fits(dt) {
                            out.push(RelViolation {
                                constraint: "DOMAIN".into(),
                                detail: format!(
                                    "{v} does not fit {dt} in {}.{}",
                                    table.name, col.name
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
}

fn key_projection(row: &Row, cols: &[u32]) -> Option<Vec<Value>> {
    cols.iter()
        .map(|c| row[*c as usize].clone())
        .collect::<Option<Vec<_>>>()
}

fn check_key(
    schema: &RelSchema,
    state: &RelState,
    name: &str,
    table: TableId,
    cols: &[u32],
    require_not_null: bool,
    out: &mut Vec<RelViolation>,
) {
    let tname = &schema.table(table).name;
    let mut seen: BTreeSet<Vec<Value>> = BTreeSet::new();
    for row in state.rows(table) {
        if row.len() != schema.table(table).arity() {
            continue; // already reported as ARITY
        }
        match key_projection(row, cols) {
            Some(key) => {
                if !seen.insert(key.clone()) {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!("duplicate key {key:?} in {tname}"),
                    });
                }
            }
            None => {
                // NULL in a key column: forbidden for primary keys unless the
                // column itself was made nullable (the `NULL ALLOWED` option,
                // which ORACLE tolerates, §4.2.1); candidate keys are simply
                // exempt for such rows.
                if require_not_null {
                    let any_not_nullable_null = cols.iter().any(|c| {
                        row[*c as usize].is_none() && !schema.table(table).column(*c).nullable
                    });
                    if any_not_nullable_null {
                        out.push(RelViolation {
                            constraint: name.to_owned(),
                            detail: format!("NULL in primary key of {tname}"),
                        });
                    }
                }
            }
        }
    }
}

/// The observability class a schema-level constraint kind reports under.
pub(crate) fn kind_class(kind: &RelConstraintKind) -> ridl_obs::ConstraintClass {
    kind.class()
}

pub(crate) fn check_constraint(
    schema: &RelSchema,
    state: &RelState,
    name: &str,
    kind: &RelConstraintKind,
    out: &mut Vec<RelViolation>,
) {
    let sw = ridl_obs::Stopwatch::start();
    let mut span = ridl_obs::span::enter(kind_class(kind).span_name());
    if span.is_recording() {
        span.attr("constraint", name.to_owned());
    }
    let before = out.len();
    check_constraint_inner(schema, state, name, kind, out);
    if span.is_recording() {
        span.attr("violations", out.len() - before);
    }
    let stats = &ridl_obs::metrics().per_kind[kind_class(kind).index()];
    stats.checks.inc();
    stats.violations.add((out.len() - before) as u64);
    sw.record(&stats.nanos);
}

fn check_constraint_inner(
    schema: &RelSchema,
    state: &RelState,
    name: &str,
    kind: &RelConstraintKind,
    out: &mut Vec<RelViolation>,
) {
    match kind {
        RelConstraintKind::PrimaryKey { table, cols } => {
            check_key(schema, state, name, *table, cols, true, out)
        }
        RelConstraintKind::CandidateKey { table, cols } => {
            check_key(schema, state, name, *table, cols, false, out)
        }
        RelConstraintKind::ForeignKey {
            table,
            cols,
            ref_table,
            ref_cols,
        } => {
            let targets: BTreeSet<Vec<Value>> = state
                .rows(*ref_table)
                .iter()
                .filter_map(|r| key_projection(r, ref_cols))
                .collect();
            for row in state.rows(*table) {
                if let Some(key) = key_projection(row, cols) {
                    if !targets.contains(&key) {
                        out.push(RelViolation {
                            constraint: name.to_owned(),
                            detail: format!(
                                "{key:?} in {} has no match in {}",
                                schema.table(*table).name,
                                schema.table(*ref_table).name
                            ),
                        });
                    }
                }
            }
        }
        RelConstraintKind::EqualityView { left, right } => {
            let l = eval(left, state);
            let r = eval(right, state);
            if l != r {
                let diff: Vec<_> = l.symmetric_difference(&r).take(3).collect();
                out.push(RelViolation {
                    constraint: name.to_owned(),
                    detail: format!("selections differ, e.g. {diff:?}"),
                });
            }
        }
        RelConstraintKind::SubsetView { sub, sup } => {
            let s = eval(sub, state);
            let p = eval(sup, state);
            if let Some(row) = s.difference(&p).next() {
                out.push(RelViolation {
                    constraint: name.to_owned(),
                    detail: format!("{row:?} not contained in superset selection"),
                });
            }
        }
        RelConstraintKind::ExclusionView { items } => {
            for i in 0..items.len() {
                let a = eval(&items[i], state);
                for item in items.iter().skip(i + 1) {
                    let b = eval(item, state);
                    if let Some(row) = a.intersection(&b).next() {
                        out.push(RelViolation {
                            constraint: name.to_owned(),
                            detail: format!("{row:?} appears in two exclusive selections"),
                        });
                    }
                }
            }
        }
        RelConstraintKind::TotalUnionView { over, items } => {
            let o = eval(over, state);
            let union: BTreeSet<Row> = items.iter().flat_map(|i| eval(i, state)).collect();
            if let Some(row) = o.difference(&union).next() {
                out.push(RelViolation {
                    constraint: name.to_owned(),
                    detail: format!("{row:?} not covered by any union member"),
                });
            }
        }
        RelConstraintKind::DependentExistence {
            table,
            dependent,
            on,
        } => {
            for row in state.rows(*table) {
                if row[*dependent as usize].is_some() && row[*on as usize].is_none() {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!(
                            "{} set while {} is NULL in {}",
                            schema.table(*table).column(*dependent).name,
                            schema.table(*table).column(*on).name,
                            schema.table(*table).name
                        ),
                    });
                }
            }
        }
        RelConstraintKind::EqualExistence { table, cols } => {
            for row in state.rows(*table) {
                let set = cols.iter().filter(|c| row[**c as usize].is_some()).count();
                if set != 0 && set != cols.len() {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!(
                            "columns {:?} of {} are partially NULL",
                            schema.col_names(*table, cols),
                            schema.table(*table).name
                        ),
                    });
                }
            }
        }
        RelConstraintKind::ConditionalEquality {
            table,
            indicator,
            when_value,
            key_cols,
            sub,
        } => {
            let members = eval(sub, state);
            for row in state.rows(*table) {
                let key: Row = key_cols.iter().map(|c| row[*c as usize].clone()).collect();
                let flagged = row[*indicator as usize].as_ref() == Some(when_value);
                let present = members.contains(&key);
                if flagged != present {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!(
                            "indicator {} of key {key:?} in {} is {} but sub-relation membership is {}",
                            schema.table(*table).column(*indicator).name,
                            schema.table(*table).name,
                            flagged,
                            present
                        ),
                    });
                }
            }
        }
        RelConstraintKind::CheckValue { table, col, values } => {
            for row in state.rows(*table) {
                if let Some(v) = &row[*col as usize] {
                    if !values.contains(v) {
                        out.push(RelViolation {
                            constraint: name.to_owned(),
                            detail: format!(
                                "{v} not admitted in {}.{}",
                                schema.table(*table).name,
                                schema.table(*table).column(*col).name
                            ),
                        });
                    }
                }
            }
        }
        RelConstraintKind::CoverExistence { table, groups } => {
            for row in state.rows(*table) {
                let covered = groups
                    .iter()
                    .any(|g| g.iter().all(|c| row[*c as usize].is_some()));
                if !covered {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!(
                            "row of {} has no complete reference group",
                            schema.table(*table).name
                        ),
                    });
                }
            }
        }
        RelConstraintKind::Frequency {
            table,
            cols,
            min,
            max,
        } => {
            let mut counts: BTreeMap<Vec<Value>, u32> = BTreeMap::new();
            for row in state.rows(*table) {
                if let Some(key) = key_projection(row, cols) {
                    *counts.entry(key).or_insert(0) += 1;
                }
            }
            for (key, n) in counts {
                if n < *min || max.map(|m| n > m).unwrap_or(false) {
                    out.push(RelViolation {
                        constraint: name.to_owned(),
                        detail: format!(
                            "group {key:?} occurs {n} times, outside [{min}, {}]",
                            max.map(|m| m.to_string()).unwrap_or_else(|| "∞".into())
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Table};
    use ridl_brm::DataType;

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    /// Builds the paper's Alternative-3 pair of tables (fig. 6): Paper with a
    /// nullable Paper_ProgramId_Is, Program_Paper keyed on Paper_ProgramId,
    /// tied together by an equality view constraint (C_EQ$).
    fn alt3() -> (RelSchema, TableId, TableId) {
        let mut s = RelSchema::new("alt3");
        let d_id = s.domain("D_Paper_Id", DataType::Char(6));
        let d_pid = s.domain("D_Paper_ProgramId", DataType::Char(2));
        let d_sess = s.domain("D_Session", DataType::Numeric(3, 0));
        let paper = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d_id),
                Column::nullable("Paper_ProgramId_Is", d_pid),
            ],
        ));
        let pp = s.add_table(Table::new(
            "Program_Paper",
            vec![
                Column::not_null("Paper_ProgramId", d_pid),
                Column::not_null("Session_comprising", d_sess),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: paper,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::PrimaryKey {
            table: pp,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::ForeignKey {
            table: pp,
            cols: vec![0],
            ref_table: paper,
            ref_cols: vec![1],
        });
        s.add_named(RelConstraintKind::EqualityView {
            left: ColumnSelection::of(pp, vec![0]),
            right: ColumnSelection::of(paper, vec![1]).where_not_null(vec![1]),
        });
        (s, paper, pp)
    }

    #[test]
    fn consistent_alt3_state_is_valid() {
        let (s, paper, pp) = alt3();
        let mut st = RelState::with_tables(2);
        st.insert(paper, vec![v("P1"), v("p1")]);
        st.insert(paper, vec![v("P2"), None]);
        st.insert(pp, vec![v("p1"), Some(Value::Int(3))]);
        assert!(is_valid(&s, &st), "{:?}", validate(&s, &st));
    }

    #[test]
    fn equality_view_detects_redundancy_drift() {
        let (s, paper, pp) = alt3();
        let mut st = RelState::with_tables(2);
        // Paper claims a program id but Program_Paper has no matching row.
        st.insert(paper, vec![v("P1"), v("p1")]);
        let vio = validate(&s, &st);
        assert!(vio.iter().any(|x| x.constraint.starts_with("C_EQ$")));
        // And the reverse drift is caught by FK + equality.
        let mut st2 = RelState::with_tables(2);
        st2.insert(paper, vec![v("P1"), None]);
        st2.insert(pp, vec![v("p1"), Some(Value::Int(3))]);
        let vio2 = validate(&s, &st2);
        assert!(vio2.iter().any(|x| x.constraint.starts_with("C_FKEY$")));
        assert!(vio2.iter().any(|x| x.constraint.starts_with("C_EQ$")));
    }

    #[test]
    fn primary_key_rejects_duplicates_and_nulls() {
        let (s, paper, _) = alt3();
        let mut st = RelState::with_tables(2);
        st.insert(paper, vec![v("P1"), None]);
        st.insert(paper, vec![v("P1"), v("p1")]);
        let vio = validate(&s, &st);
        assert!(vio.iter().any(|x| x.detail.contains("duplicate key")));
    }

    #[test]
    fn not_null_and_domain_enforced() {
        let (s, paper, _) = alt3();
        let mut st = RelState::with_tables(2);
        st.insert(paper, vec![None, None]);
        st.insert(paper, vec![v("WAY-TOO-LONG-ID"), None]);
        let vio = validate(&s, &st);
        assert!(vio.iter().any(|x| x.constraint == "NOT NULL"));
        assert!(vio.iter().any(|x| x.constraint == "DOMAIN"));
    }

    #[test]
    fn dependent_and_equal_existence() {
        let mut s = RelSchema::new("alt4");
        let d = s.domain("D", DataType::Char(8));
        let t = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::nullable("Paper_ProgramId_with", d),
                Column::nullable("Session_comprising", d),
                Column::nullable("Person_presenting", d),
            ],
        ));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: t,
            cols: vec![0],
        });
        // Paper fig. 6, Alternative 4: C_DE$ (presenting needs a program id)
        // and C_EE$ (program id and session exist together).
        s.add_named(RelConstraintKind::DependentExistence {
            table: t,
            dependent: 3,
            on: 1,
        });
        s.add_named(RelConstraintKind::EqualExistence {
            table: t,
            cols: vec![1, 2],
        });
        let mut st = RelState::with_tables(1);
        st.insert(t, vec![v("P1"), v("p1"), v("s1"), v("alice")]);
        st.insert(t, vec![v("P2"), None, None, None]);
        assert!(is_valid(&s, &st), "{:?}", validate(&s, &st));
        st.insert(t, vec![v("P3"), None, None, v("bob")]);
        st.insert(t, vec![v("P4"), v("p4"), None, None]);
        let vio = validate(&s, &st);
        assert!(vio.iter().any(|x| x.constraint.starts_with("C_DE$")));
        assert!(vio.iter().any(|x| x.constraint.starts_with("C_EE$")));
    }

    #[test]
    fn conditional_equality_indicator() {
        let mut s = RelSchema::new("alt_ind");
        let d = s.domain("D", DataType::Char(8));
        let db = s.domain("D_Flag", DataType::Boolean);
        let paper = s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::not_null("Is_Program_Paper", db),
            ],
        ));
        let pp = s.add_table(Table::new(
            "Program_Paper",
            vec![Column::not_null("Paper_Id", d)],
        ));
        s.add_named(RelConstraintKind::ConditionalEquality {
            table: paper,
            indicator: 1,
            when_value: Value::Bool(true),
            key_cols: vec![0],
            sub: ColumnSelection::of(pp, vec![0]),
        });
        let mut st = RelState::with_tables(2);
        st.insert(paper, vec![v("P1"), Some(Value::Bool(true))]);
        st.insert(paper, vec![v("P2"), Some(Value::Bool(false))]);
        st.insert(pp, vec![v("P1")]);
        assert!(is_valid(&s, &st), "{:?}", validate(&s, &st));
        // Flip the indicator: redundancy now inconsistent.
        st.remove(paper, &vec![v("P2"), Some(Value::Bool(false))]);
        st.insert(paper, vec![v("P2"), Some(Value::Bool(true))]);
        assert!(!is_valid(&s, &st));
    }

    #[test]
    fn exclusion_total_union_check_value_frequency() {
        let mut s = RelSchema::new("misc");
        let d = s.domain("D", DataType::Char(8));
        let a = s.add_table(Table::new("A", vec![Column::not_null("K", d)]));
        let b = s.add_table(Table::new("B", vec![Column::not_null("K", d)]));
        let u = s.add_table(Table::new("U", vec![Column::not_null("K", d)]));
        s.add_named(RelConstraintKind::ExclusionView {
            items: vec![
                ColumnSelection::of(a, vec![0]),
                ColumnSelection::of(b, vec![0]),
            ],
        });
        s.add_named(RelConstraintKind::TotalUnionView {
            over: ColumnSelection::of(u, vec![0]),
            items: vec![
                ColumnSelection::of(a, vec![0]),
                ColumnSelection::of(b, vec![0]),
            ],
        });
        s.add_named(RelConstraintKind::CheckValue {
            table: u,
            col: 0,
            values: vec![Value::str("x"), Value::str("y"), Value::str("z")],
        });
        s.add_named(RelConstraintKind::Frequency {
            table: u,
            cols: vec![0],
            min: 1,
            max: Some(1),
        });
        let mut st = RelState::with_tables(3);
        st.insert(u, vec![v("x")]);
        st.insert(a, vec![v("x")]);
        assert!(is_valid(&s, &st), "{:?}", validate(&s, &st));
        st.insert(b, vec![v("x")]); // violates exclusion
        st.insert(u, vec![v("q")]); // violates total union + check value
        let vio = validate(&s, &st);
        assert!(vio.iter().any(|x| x.constraint.starts_with("C_EX$")));
        assert!(vio.iter().any(|x| x.constraint.starts_with("C_TU$")));
        assert!(vio.iter().any(|x| x.constraint.starts_with("C_VAL$")));
    }
}

//! Incrementally-maintained constraint indexes over a [`RelState`].
//!
//! Full validation ([`crate::validate::validate`]) walks every row of every
//! table — O(state) per check. The engine's hot path instead maintains a
//! [`ConstraintIndexes`] next to the state: one hash-multiset per distinct
//! projection a constraint needs, updated in O(columns) on every row
//! insert/remove. Delta validation ([`crate::delta::validate_delta`]) then
//! answers key-uniqueness, foreign-key existence/orphaning and
//! view-constraint membership questions with O(1) probes instead of scans.
//!
//! Two counter families cover every constraint kind:
//!
//! * **key counters** — the NULL-skipping projections used by keys, both
//!   ends of foreign keys, and frequency constraints (a row with a NULL in
//!   any projected column is exempt, matching the full validator);
//! * **selection counters** — the [`ColumnSelection`] evaluations used by
//!   the paper's view constraints (`C_EQ$`, `C_SS$`, `C_EX$`, `C_TU$`,
//!   `C_CEQ$`), which keep NULLs in the projected tuples.
//!
//! Counters are deduplicated across constraints, so e.g. a primary key and
//! a foreign key targeting the same columns share one map.

use std::thread;

use ridl_brm::Value;

use crate::constraint::{ColumnSelection, RelConstraintKind};
use crate::hasher::FxHashMap;
use crate::schema::RelSchema;
use crate::state::{RelState, Row};
use crate::table::TableId;

/// States below this row count charge sequentially in
/// [`ConstraintIndexes::build`]: thread spawn/join overhead dwarfs the
/// work.
const PARALLEL_CHARGE_ROWS: usize = 4096;

/// Identifier of a key counter within [`ConstraintIndexes`].
pub(crate) type KeyCounterId = usize;
/// Identifier of a selection counter within [`ConstraintIndexes`].
pub(crate) type SelCounterId = usize;

/// A constraint compiled against counter ids, for O(1) delta checks.
#[derive(Clone, PartialEq, Debug)]
pub(crate) enum CompiledKind {
    /// Primary or candidate key.
    Key {
        /// The keyed table.
        table: TableId,
        /// Key column ordinals.
        cols: Vec<u32>,
        /// Counter over the key projection.
        counter: KeyCounterId,
        /// Primary keys reject NULLs in non-nullable key columns.
        require_not_null: bool,
    },
    /// Foreign key with both-ends counters (the reverse index).
    ForeignKey {
        /// The referencing table.
        table: TableId,
        /// Referencing column ordinals.
        cols: Vec<u32>,
        /// The referenced table.
        ref_table: TableId,
        /// Referenced column ordinals.
        ref_cols: Vec<u32>,
        /// Counter over referencing keys (the reverse index: who points in).
        source: KeyCounterId,
        /// Counter over referenced keys (existence probes).
        target: KeyCounterId,
    },
    /// Occurrence frequency over a group projection.
    Frequency {
        /// The constrained table.
        table: TableId,
        /// Grouped column ordinals.
        cols: Vec<u32>,
        /// Counter over the group projection.
        counter: KeyCounterId,
        /// Minimum group size.
        min: u32,
        /// Maximum group size (`None` = unbounded).
        max: Option<u32>,
    },
    /// `C_EQ$`: both selections must hold the same tuples.
    EqualityView {
        /// Left selection and its counter.
        left: (ColumnSelection, SelCounterId),
        /// Right selection and its counter.
        right: (ColumnSelection, SelCounterId),
    },
    /// `C_SS$`.
    SubsetView {
        /// Contained selection and its counter.
        sub: (ColumnSelection, SelCounterId),
        /// Containing selection and its counter.
        sup: (ColumnSelection, SelCounterId),
    },
    /// `C_EX$`.
    ExclusionView {
        /// The mutually exclusive selections with their counters.
        items: Vec<(ColumnSelection, SelCounterId)>,
    },
    /// `C_TU$`.
    TotalUnionView {
        /// The covered selection and its counter.
        over: (ColumnSelection, SelCounterId),
        /// The covering selections with their counters.
        items: Vec<(ColumnSelection, SelCounterId)>,
    },
    /// `C_CEQ$` with the three counters its delta rule needs.
    ConditionalEquality {
        /// The indicator-carrying table.
        table: TableId,
        /// Indicator column ordinal.
        indicator: u32,
        /// Indicator value meaning "member".
        when_value: Value,
        /// Key columns matched against the sub-relation.
        key_cols: Vec<u32>,
        /// The sub-relation selection and its counter.
        sub: (ColumnSelection, SelCounterId),
        /// Counter over key projections of rows with `indicator = when_value`.
        flagged: SelCounterId,
        /// Counter over key projections of all rows.
        all_keys: SelCounterId,
    },
    /// Row-local kinds (`C_DE$`, `C_EE$`, `C_VAL$`, `C_CX$`): checked
    /// directly against the touched row, no counter needed.
    RowLocal,
}

impl CompiledKind {
    /// The observability class this compiled kind reports under.
    pub(crate) fn obs_class(&self) -> ridl_obs::ConstraintClass {
        use ridl_obs::ConstraintClass as C;
        match self {
            CompiledKind::Key { .. } => C::Key,
            CompiledKind::ForeignKey { .. } => C::ForeignKey,
            CompiledKind::Frequency { .. } => C::Frequency,
            CompiledKind::EqualityView { .. } => C::EqualityView,
            CompiledKind::SubsetView { .. } => C::SubsetView,
            CompiledKind::ExclusionView { .. } => C::ExclusionView,
            CompiledKind::TotalUnionView { .. } => C::TotalUnionView,
            CompiledKind::ConditionalEquality { .. } => C::ConditionalEquality,
            CompiledKind::RowLocal => C::RowLocal,
        }
    }
}

/// A compiled constraint: name + counter-resolved kind.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct Compiled {
    /// The constraint name, used in violation reports.
    pub name: String,
    /// Index into [`RelSchema::constraints`], for row-local re-checks.
    pub schema_index: usize,
    /// The counter-resolved kind.
    pub kind: CompiledKind,
}

#[derive(Clone, PartialEq, Debug)]
struct KeyCounter {
    table: TableId,
    cols: Vec<u32>,
    counts: FxHashMap<Vec<Value>, u32>,
}

#[derive(Clone, PartialEq, Debug)]
struct SelCounter {
    sel: ColumnSelection,
    counts: FxHashMap<Vec<Option<Value>>, u32>,
}

/// Hash indexes over a state, maintained per row insert/remove, answering
/// the probes [`crate::delta::validate_delta`] performs.
#[derive(Clone, PartialEq, Debug)]
pub struct ConstraintIndexes {
    key_counters: Vec<KeyCounter>,
    sel_counters: Vec<SelCounter>,
    pub(crate) compiled: Vec<Compiled>,
    /// Constraint indices (into `compiled`) touching each table.
    pub(crate) by_table: Vec<Vec<usize>>,
    /// Table arities, to guard projections against malformed rows.
    arities: Vec<usize>,
    /// Key-counter ids per table, for maintenance.
    key_by_table: Vec<Vec<KeyCounterId>>,
    /// Selection-counter ids per table, for maintenance.
    sel_by_table: Vec<Vec<SelCounterId>>,
}

/// Projects `row` onto `cols`, NULL-skipping: `None` when any projected
/// cell is NULL or out of range (malformed rows are exempt everywhere,
/// mirroring the full validator's ARITY handling).
pub(crate) fn key_projection(row: &Row, cols: &[u32]) -> Option<Vec<Value>> {
    cols.iter()
        .map(|c| row.get(*c as usize).cloned().flatten())
        .collect()
}

/// Whether `row` satisfies a selection's filters (and is long enough for
/// every column the selection mentions).
pub(crate) fn sel_qualifies(row: &Row, sel: &ColumnSelection) -> bool {
    let long_enough = sel
        .cols
        .iter()
        .chain(sel.not_null.iter())
        .chain(sel.eq.iter().map(|(c, _)| c))
        .all(|c| (*c as usize) < row.len());
    long_enough
        && sel.not_null.iter().all(|c| row[*c as usize].is_some())
        && sel
            .eq
            .iter()
            .all(|(c, v)| row[*c as usize].as_ref() == Some(v))
}

/// Projects a qualifying row under a selection (NULLs kept).
pub(crate) fn sel_projection(row: &Row, sel: &ColumnSelection) -> Vec<Option<Value>> {
    sel.cols.iter().map(|c| row[*c as usize].clone()).collect()
}

impl ConstraintIndexes {
    /// Compiles the schema's constraints into counters and charges them
    /// with `state`. O(state); large states charge their tables across
    /// [`std::thread::available_parallelism`] workers (counters are
    /// per-table, so each worker fills a disjoint set and the result is
    /// identical to a sequential charge).
    pub fn build(schema: &RelSchema, state: &RelState) -> Self {
        let workers = if state.num_rows() >= PARALLEL_CHARGE_ROWS {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            1
        };
        Self::build_with_workers(schema, state, workers)
    }

    /// [`ConstraintIndexes::build`] with an explicit worker count (tests
    /// drive this directly to exercise the parallel charge on any machine).
    pub fn build_with_workers(schema: &RelSchema, state: &RelState, workers: usize) -> Self {
        let mut span = ridl_obs::span::enter("index.build");
        if span.is_recording() {
            span.attr("rows", state.num_rows());
            span.attr("workers", workers);
        }
        ridl_obs::metrics().index_builds.inc();
        ridl_obs::metrics()
            .index_charge_rows
            .add(state.num_rows() as u64);
        let num_tables = schema.tables.len();
        let mut this = Self {
            key_counters: Vec::new(),
            sel_counters: Vec::new(),
            compiled: Vec::new(),
            by_table: vec![Vec::new(); num_tables],
            arities: schema.tables.iter().map(|t| t.arity()).collect(),
            key_by_table: vec![Vec::new(); num_tables],
            sel_by_table: vec![Vec::new(); num_tables],
        };
        for (i, c) in schema.constraints.iter().enumerate() {
            let kind = this.compile(&c.kind);
            this.compiled.push(Compiled {
                name: c.name.clone(),
                schema_index: i,
                kind,
            });
            for t in c.kind.tables() {
                if t.index() < num_tables && !this.by_table[t.index()].contains(&i) {
                    this.by_table[t.index()].push(i);
                }
            }
        }
        let chargeable: Vec<TableId> = schema
            .tables()
            .map(|(tid, _)| tid)
            .filter(|tid| tid.index() < state.num_tables())
            .collect();
        if workers <= 1 || chargeable.len() <= 1 {
            for tid in chargeable {
                for row in state.rows(tid) {
                    this.note_insert(tid, row);
                }
            }
            return this;
        }
        this.charge_parallel(state, &chargeable, workers);
        this
    }

    /// Charges the (empty) counters from `state` with tables partitioned
    /// across scoped workers. Every counter belongs to exactly one table,
    /// so each map is filled by exactly one worker — no locks, no merge
    /// conflicts, and the totals equal a sequential charge.
    fn charge_parallel(&mut self, state: &RelState, tables: &[TableId], workers: usize) {
        // Greedy longest-first binning balances per-worker row counts.
        let mut sized: Vec<(usize, TableId)> = tables
            .iter()
            .map(|tid| (state.rows(*tid).len(), *tid))
            .collect();
        sized.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
        let workers = workers.min(tables.len());
        let mut bins: Vec<(usize, Vec<TableId>)> = vec![(0, Vec::new()); workers];
        for (n, tid) in sized {
            let bin = bins
                .iter_mut()
                .min_by_key(|(load, _)| *load)
                .expect("workers >= 1");
            bin.0 += n;
            bin.1.push(tid);
        }
        type KeyMaps = Vec<(KeyCounterId, FxHashMap<Vec<Value>, u32>)>;
        type SelMaps = Vec<(SelCounterId, FxHashMap<Vec<Option<Value>>, u32>)>;
        let shared: &Self = self;
        let filled: Vec<(KeyMaps, SelMaps)> = thread::scope(|s| {
            let handles: Vec<_> = bins
                .iter()
                .map(|(_, bin)| {
                    s.spawn(move || {
                        let mut keys: KeyMaps = Vec::new();
                        let mut sels: SelMaps = Vec::new();
                        for tid in bin {
                            let t = tid.index();
                            let mut local_keys: Vec<(KeyCounterId, FxHashMap<_, _>)> = shared
                                .key_by_table[t]
                                .iter()
                                .map(|id| (*id, FxHashMap::default()))
                                .collect();
                            let mut local_sels: Vec<(SelCounterId, FxHashMap<_, _>)> = shared
                                .sel_by_table[t]
                                .iter()
                                .map(|id| (*id, FxHashMap::default()))
                                .collect();
                            for row in state.rows(*tid) {
                                if !shared.well_formed(*tid, row) {
                                    continue;
                                }
                                for (id, counts) in &mut local_keys {
                                    let cols = &shared.key_counters[*id].cols;
                                    if let Some(key) = key_projection(row, cols) {
                                        *counts.entry(key).or_insert(0) += 1;
                                    }
                                }
                                for (id, counts) in &mut local_sels {
                                    let sel = &shared.sel_counters[*id].sel;
                                    if sel_qualifies(row, sel) {
                                        *counts.entry(sel_projection(row, sel)).or_insert(0) += 1;
                                    }
                                }
                            }
                            keys.append(&mut local_keys);
                            sels.append(&mut local_sels);
                        }
                        (keys, sels)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("index charge worker panicked"))
                .collect()
        });
        for (keys, sels) in filled {
            for (id, counts) in keys {
                self.key_counters[id].counts = counts;
            }
            for (id, counts) in sels {
                self.sel_counters[id].counts = counts;
            }
        }
    }

    fn key_counter(&mut self, table: TableId, cols: &[u32]) -> KeyCounterId {
        if let Some(id) = self
            .key_counters
            .iter()
            .position(|k| k.table == table && k.cols == cols)
        {
            return id;
        }
        let id = self.key_counters.len();
        self.key_counters.push(KeyCounter {
            table,
            cols: cols.to_vec(),
            counts: FxHashMap::default(),
        });
        if table.index() < self.key_by_table.len() {
            self.key_by_table[table.index()].push(id);
        }
        id
    }

    fn sel_counter(&mut self, sel: &ColumnSelection) -> SelCounterId {
        if let Some(id) = self.sel_counters.iter().position(|s| &s.sel == sel) {
            return id;
        }
        let id = self.sel_counters.len();
        self.sel_counters.push(SelCounter {
            sel: sel.clone(),
            counts: FxHashMap::default(),
        });
        if sel.table.index() < self.sel_by_table.len() {
            self.sel_by_table[sel.table.index()].push(id);
        }
        id
    }

    fn compile(&mut self, kind: &RelConstraintKind) -> CompiledKind {
        match kind {
            RelConstraintKind::PrimaryKey { table, cols } => CompiledKind::Key {
                table: *table,
                cols: cols.clone(),
                counter: self.key_counter(*table, cols),
                require_not_null: true,
            },
            RelConstraintKind::CandidateKey { table, cols } => CompiledKind::Key {
                table: *table,
                cols: cols.clone(),
                counter: self.key_counter(*table, cols),
                require_not_null: false,
            },
            RelConstraintKind::ForeignKey {
                table,
                cols,
                ref_table,
                ref_cols,
            } => CompiledKind::ForeignKey {
                table: *table,
                cols: cols.clone(),
                ref_table: *ref_table,
                ref_cols: ref_cols.clone(),
                source: self.key_counter(*table, cols),
                target: self.key_counter(*ref_table, ref_cols),
            },
            RelConstraintKind::Frequency {
                table,
                cols,
                min,
                max,
            } => CompiledKind::Frequency {
                table: *table,
                cols: cols.clone(),
                counter: self.key_counter(*table, cols),
                min: *min,
                max: *max,
            },
            RelConstraintKind::EqualityView { left, right } => CompiledKind::EqualityView {
                left: (left.clone(), self.sel_counter(left)),
                right: (right.clone(), self.sel_counter(right)),
            },
            RelConstraintKind::SubsetView { sub, sup } => CompiledKind::SubsetView {
                sub: (sub.clone(), self.sel_counter(sub)),
                sup: (sup.clone(), self.sel_counter(sup)),
            },
            RelConstraintKind::ExclusionView { items } => CompiledKind::ExclusionView {
                items: items
                    .iter()
                    .map(|s| (s.clone(), self.sel_counter(s)))
                    .collect(),
            },
            RelConstraintKind::TotalUnionView { over, items } => CompiledKind::TotalUnionView {
                over: (over.clone(), self.sel_counter(over)),
                items: items
                    .iter()
                    .map(|s| (s.clone(), self.sel_counter(s)))
                    .collect(),
            },
            RelConstraintKind::ConditionalEquality {
                table,
                indicator,
                when_value,
                key_cols,
                sub,
            } => {
                let flagged_sel = ColumnSelection::of(*table, key_cols.clone())
                    .where_eq(*indicator, when_value.clone());
                let all_sel = ColumnSelection::of(*table, key_cols.clone());
                CompiledKind::ConditionalEquality {
                    table: *table,
                    indicator: *indicator,
                    when_value: when_value.clone(),
                    key_cols: key_cols.clone(),
                    sub: (sub.clone(), self.sel_counter(sub)),
                    flagged: self.sel_counter(&flagged_sel),
                    all_keys: self.sel_counter(&all_sel),
                }
            }
            RelConstraintKind::DependentExistence { .. }
            | RelConstraintKind::EqualExistence { .. }
            | RelConstraintKind::CheckValue { .. }
            | RelConstraintKind::CoverExistence { .. } => CompiledKind::RowLocal,
        }
    }

    /// Whether `row` is well-formed for its table (correct arity); malformed
    /// rows are exempt from indexing, like the full validator's ARITY rule.
    fn well_formed(&self, table: TableId, row: &Row) -> bool {
        self.arities
            .get(table.index())
            .is_some_and(|a| *a == row.len())
    }

    /// Records a row inserted into `table`. O(indexed projections on the
    /// table), independent of state size.
    pub fn note_insert(&mut self, table: TableId, row: &Row) {
        if table.index() >= self.key_by_table.len() || !self.well_formed(table, row) {
            return;
        }
        ridl_obs::metrics().index_inserts.inc();
        for id in &self.key_by_table[table.index()] {
            let kc = &mut self.key_counters[*id];
            if let Some(key) = key_projection(row, &kc.cols) {
                *kc.counts.entry(key).or_insert(0) += 1;
            }
        }
        for id in &self.sel_by_table[table.index()] {
            let sc = &mut self.sel_counters[*id];
            if sel_qualifies(row, &sc.sel) {
                let t = sel_projection(row, &sc.sel);
                *sc.counts.entry(t).or_insert(0) += 1;
            }
        }
    }

    /// Records a row removed from `table`.
    pub fn note_remove(&mut self, table: TableId, row: &Row) {
        if table.index() >= self.key_by_table.len() || !self.well_formed(table, row) {
            return;
        }
        ridl_obs::metrics().index_removes.inc();
        for id in &self.key_by_table[table.index()] {
            let kc = &mut self.key_counters[*id];
            if let Some(key) = key_projection(row, &kc.cols) {
                decrement(&mut kc.counts, key);
            }
        }
        for id in &self.sel_by_table[table.index()] {
            let sc = &mut self.sel_counters[*id];
            if sel_qualifies(row, &sc.sel) {
                decrement(&mut sc.counts, sel_projection(row, &sc.sel));
            }
        }
    }

    /// Occurrences of a NULL-free key projection.
    pub(crate) fn key_count(&self, id: KeyCounterId, key: &[Value]) -> u32 {
        if ridl_obs::detail_enabled() {
            ridl_obs::metrics().key_probes.inc();
        }
        self.key_counters[id].counts.get(key).copied().unwrap_or(0)
    }

    /// Occurrences of a selection tuple.
    pub(crate) fn sel_count(&self, id: SelCounterId, tuple: &[Option<Value>]) -> u32 {
        if ridl_obs::detail_enabled() {
            ridl_obs::metrics().sel_probes.inc();
        }
        self.sel_counters[id]
            .counts
            .get(tuple)
            .copied()
            .unwrap_or(0)
    }

    /// All tracked key projections of a counter with their counts — the
    /// aggregate view [`crate::delta::validate_load`] checks whole
    /// constraints against without touching rows.
    pub(crate) fn key_entries(&self, id: KeyCounterId) -> impl Iterator<Item = (&Vec<Value>, u32)> {
        self.key_counters[id].counts.iter().map(|(k, n)| (k, *n))
    }

    /// All tracked selection tuples of a counter with their counts.
    pub(crate) fn sel_entries(
        &self,
        id: SelCounterId,
    ) -> impl Iterator<Item = (&Vec<Option<Value>>, u32)> {
        self.sel_counters[id].counts.iter().map(|(k, n)| (k, *n))
    }

    /// Rebuild-and-compare check used by tests: true when the counters
    /// equal a fresh build from `state`.
    pub fn consistent_with(&self, schema: &RelSchema, state: &RelState) -> bool {
        let fresh = Self::build(schema, state);
        self.key_counters
            .iter()
            .zip(fresh.key_counters.iter())
            .all(|(a, b)| a.counts == b.counts)
            && self
                .sel_counters
                .iter()
                .zip(fresh.sel_counters.iter())
                .all(|(a, b)| a.counts == b.counts)
    }
}

fn decrement<K: std::hash::Hash + Eq>(map: &mut FxHashMap<K, u32>, key: K) {
    match map.get_mut(&key) {
        Some(n) if *n > 1 => *n -= 1,
        Some(_) => {
            map.remove(&key);
        }
        None => debug_assert!(false, "index decrement of untracked projection"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Column, Table};
    use ridl_brm::DataType;

    fn v(s: &str) -> Option<Value> {
        Some(Value::str(s))
    }

    fn schema() -> RelSchema {
        let mut s = RelSchema::new("idx");
        let d = s.domain("D", DataType::Char(8));
        let a = s.add_table(Table::new(
            "A",
            vec![Column::not_null("K", d), Column::nullable("R", d)],
        ));
        let b = s.add_table(Table::new("B", vec![Column::not_null("K", d)]));
        s.add_named(RelConstraintKind::PrimaryKey {
            table: a,
            cols: vec![0],
        });
        s.add_named(RelConstraintKind::ForeignKey {
            table: a,
            cols: vec![1],
            ref_table: b,
            ref_cols: vec![0],
        });
        s
    }

    #[test]
    fn counters_track_insert_remove() {
        let s = schema();
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let row = vec![v("a1"), v("b1")];
        st.insert(TableId(0), row.clone());
        idx.note_insert(TableId(0), &row);
        assert!(idx.consistent_with(&s, &st));
        st.remove(TableId(0), &row);
        idx.note_remove(TableId(0), &row);
        assert!(idx.consistent_with(&s, &st));
    }

    #[test]
    fn counters_dedup_shared_projections() {
        let mut s = schema();
        // A second key over the same columns shares the first's counter.
        s.add_named(RelConstraintKind::CandidateKey {
            table: TableId(0),
            cols: vec![0],
        });
        let st = RelState::with_tables(2);
        let idx = ConstraintIndexes::build(&s, &st);
        // PK(A.0), FK source (A.1), FK target (B.0): 3 counters, not 4.
        assert_eq!(idx.key_counters.len(), 3);
    }

    #[test]
    fn null_projections_are_exempt() {
        let s = schema();
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let row = vec![v("a1"), None];
        st.insert(TableId(0), row.clone());
        idx.note_insert(TableId(0), &row);
        // FK source projection skips the NULL row.
        assert_eq!(idx.key_count(1, &[Value::str("a1")]), 0);
        assert_eq!(idx.key_count(0, &[Value::str("a1")]), 1);
    }

    #[test]
    fn parallel_charge_matches_sequential() {
        let s = schema();
        let mut st = RelState::with_tables(2);
        for i in 0..200 {
            st.insert(
                TableId(0),
                vec![v(&format!("a{i}")), v(&format!("b{}", i % 7))],
            );
        }
        for i in 0..7 {
            st.insert(TableId(1), vec![v(&format!("b{i}"))]);
        }
        let seq = ConstraintIndexes::build_with_workers(&s, &st, 1);
        for workers in [2, 3, 8] {
            let par = ConstraintIndexes::build_with_workers(&s, &st, workers);
            assert!(par.consistent_with(&s, &st));
            for (a, b) in seq.key_counters.iter().zip(&par.key_counters) {
                assert_eq!(a.counts, b.counts, "{workers} workers");
            }
            for (a, b) in seq.sel_counters.iter().zip(&par.sel_counters) {
                assert_eq!(a.counts, b.counts, "{workers} workers");
            }
        }
    }

    #[test]
    fn malformed_rows_are_ignored() {
        let s = schema();
        let mut st = RelState::with_tables(2);
        let mut idx = ConstraintIndexes::build(&s, &st);
        let short = vec![v("a1")];
        st.insert(TableId(0), short.clone());
        idx.note_insert(TableId(0), &short);
        assert_eq!(idx.key_count(0, &[Value::str("a1")]), 0);
        assert!(idx.consistent_with(&s, &st));
    }
}

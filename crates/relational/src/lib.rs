//! # ridl-relational — the extended relational model targeted by RIDL-M
//!
//! The paper (§4.1) observes that BRM→relational transformations are not
//! one-to-one unless the relational model is *extended with additional
//! constraint types*: these express both the conceptual constraints and the
//! **lossless rules** that make the transformation state-equivalent. This
//! crate is that extended target model:
//!
//! * structure: [`Domain`]s, [`Table`]s with nullable [`Column`]s;
//! * classic constraints: primary/candidate keys, foreign keys, NOT NULL;
//! * the paper's extended ("view") constraints: equality-view (`C_EQ$`),
//!   subset-view (`C_SS$`), exclusion-view (`C_EX$`), total-union view
//!   (`C_TU$`), dependent existence (`C_DE$`), equal existence (`C_EE$`),
//!   conditional equality for indicator attributes (`C_CEQ$`), value checks
//!   (`C_VAL$`), and null-tolerant candidate keys;
//! * states: [`RelState`] with a full [`validate()`] pass, so generated
//!   constraint specifications are *executable*, not just documentation;
//! * incremental enforcement: [`ConstraintIndexes`] (hash-multiset indexes
//!   maintained per row change) and [`validate_delta()`] (O(change)
//!   checking of exactly the constraints reachable from touched rows),
//!   which `ridl-engine` uses on its mutation hot path;
//! * parallel enforcement: [`validate_parallel()`] partitions the
//!   constraint set across scoped threads for full-state validation with
//!   output byte-identical to the sequential validator — the engine's
//!   commit/load path;
//! * dependency theory: functional dependencies ([`fd`]) and a normal-form
//!   checker ([`normal_form`]) used to reproduce the paper's claim that the
//!   default synthesis yields fully normalized schemas.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod constraint;
pub mod delta;
pub mod fd;
pub mod hasher;
pub mod index;
pub mod normal_form;
pub mod parallel;
pub mod schema;
pub mod state;
pub mod table;
pub mod validate;

pub use constraint::{ColumnSelection, RelConstraint, RelConstraintKind};
pub use delta::{apply_and_validate, validate_delta, validate_load, Delta, DeltaOp};
pub use fd::{closure, is_superkey, minimal_cover, Fd};
pub use index::ConstraintIndexes;
pub use normal_form::{normal_form_of, Mvd, NormalForm, TableDependencies};
pub use parallel::{validate_parallel, validate_with_workers};
pub use schema::RelSchema;
pub use state::{RelState, Row};
pub use table::{ColRef, Column, Domain, DomainId, Table, TableId};
pub use validate::{validate, RelViolation};

//! The binary conceptual schema: arenas of object types, fact types,
//! sublinks and constraints, with navigation helpers used throughout the
//! workbench.

use std::collections::HashMap;

use crate::constraint::{Constraint, ConstraintId, ConstraintKind, RoleOrSublink};
use crate::error::BrmError;
use crate::fact::{FactType, Side};
use crate::ids::{FactTypeId, ObjectTypeId, RoleRef, SublinkId};
use crate::object_type::{ObjectType, ObjectTypeKind};
use crate::sublink::Sublink;

/// A binary conceptual schema (a "logical theory" in the paper's
/// model-theoretic reading, §4.1).
#[derive(Clone, Default, Debug)]
pub struct Schema {
    /// Schema name (the meta-database may hold several independent schemas).
    pub name: String,
    pub(crate) object_types: Vec<ObjectType>,
    pub(crate) fact_types: Vec<FactType>,
    pub(crate) sublinks: Vec<Sublink>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Schema {
    /// Creates an empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    // ---- raw insertion (used by the builder and by transformations) ----

    /// Adds an object type, returning its id. Does not check name uniqueness;
    /// use [`crate::SchemaBuilder`] for checked construction.
    pub fn push_object_type(&mut self, ot: ObjectType) -> ObjectTypeId {
        let id = ObjectTypeId::from_raw(self.object_types.len() as u32);
        self.object_types.push(ot);
        id
    }

    /// Adds a fact type, returning its id.
    pub fn push_fact_type(&mut self, ft: FactType) -> FactTypeId {
        let id = FactTypeId::from_raw(self.fact_types.len() as u32);
        self.fact_types.push(ft);
        id
    }

    /// Adds a sublink, returning its id.
    pub fn push_sublink(&mut self, sl: Sublink) -> SublinkId {
        let id = SublinkId::from_raw(self.sublinks.len() as u32);
        self.sublinks.push(sl);
        id
    }

    /// Adds a constraint, returning its id.
    pub fn push_constraint(&mut self, c: Constraint) -> ConstraintId {
        let id = ConstraintId::from_raw(self.constraints.len() as u32);
        self.constraints.push(c);
        id
    }

    // ---- accessors ----

    /// The object type with the given id.
    pub fn object_type(&self, id: ObjectTypeId) -> &ObjectType {
        &self.object_types[id.index()]
    }

    /// The fact type with the given id.
    pub fn fact_type(&self, id: FactTypeId) -> &FactType {
        &self.fact_types[id.index()]
    }

    /// The sublink with the given id.
    pub fn sublink(&self, id: SublinkId) -> &Sublink {
        &self.sublinks[id.index()]
    }

    /// The constraint with the given id.
    pub fn constraint(&self, id: ConstraintId) -> &Constraint {
        &self.constraints[id.index()]
    }

    /// Iterates object types with their ids.
    pub fn object_types(&self) -> impl Iterator<Item = (ObjectTypeId, &ObjectType)> {
        self.object_types
            .iter()
            .enumerate()
            .map(|(i, ot)| (ObjectTypeId::from_raw(i as u32), ot))
    }

    /// Iterates fact types with their ids.
    pub fn fact_types(&self) -> impl Iterator<Item = (FactTypeId, &FactType)> {
        self.fact_types
            .iter()
            .enumerate()
            .map(|(i, ft)| (FactTypeId::from_raw(i as u32), ft))
    }

    /// Iterates sublinks with their ids.
    pub fn sublinks(&self) -> impl Iterator<Item = (SublinkId, &Sublink)> {
        self.sublinks
            .iter()
            .enumerate()
            .map(|(i, sl)| (SublinkId::from_raw(i as u32), sl))
    }

    /// Iterates constraints with their ids.
    pub fn constraints(&self) -> impl Iterator<Item = (ConstraintId, &Constraint)> {
        self.constraints
            .iter()
            .enumerate()
            .map(|(i, c)| (ConstraintId::from_raw(i as u32), c))
    }

    /// Number of object types.
    pub fn num_object_types(&self) -> usize {
        self.object_types.len()
    }

    /// Number of fact types.
    pub fn num_fact_types(&self) -> usize {
        self.fact_types.len()
    }

    /// Number of sublinks.
    pub fn num_sublinks(&self) -> usize {
        self.sublinks.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    // ---- name lookup ----

    /// Finds an object type by name.
    pub fn object_type_by_name(&self, name: &str) -> Option<ObjectTypeId> {
        self.object_types()
            .find(|(_, ot)| ot.name == name)
            .map(|(id, _)| id)
    }

    /// Finds a fact type by name.
    pub fn fact_type_by_name(&self, name: &str) -> Option<FactTypeId> {
        self.fact_types()
            .find(|(_, ft)| ft.name == name)
            .map(|(id, _)| id)
    }

    /// Finds an object type by name or errors.
    pub fn require_object_type(&self, name: &str) -> Result<ObjectTypeId, BrmError> {
        self.object_type_by_name(name).ok_or(BrmError::UnknownName {
            name: name.to_owned(),
            namespace: "object type",
        })
    }

    /// Finds a fact type by name or errors.
    pub fn require_fact_type(&self, name: &str) -> Result<FactTypeId, BrmError> {
        self.fact_type_by_name(name).ok_or(BrmError::UnknownName {
            name: name.to_owned(),
            namespace: "fact type",
        })
    }

    // ---- navigation ----

    /// The object type playing the given role.
    pub fn role_player(&self, role: RoleRef) -> ObjectTypeId {
        self.fact_type(role.fact).player(role.side)
    }

    /// Display name for a role: `<role-name> ON <player-name>`.
    pub fn role_display(&self, role: RoleRef) -> String {
        let ft = self.fact_type(role.fact);
        let r = ft.role(role.side);
        let player = &self.object_type(r.player).name;
        if r.name.is_empty() {
            format!("ROLE ON {player}")
        } else {
            format!("ROLE {} ON {player}", r.name)
        }
    }

    /// All roles played by the given object type, `(fact, side)`.
    pub fn roles_of(&self, ot: ObjectTypeId) -> Vec<RoleRef> {
        let mut out = Vec::new();
        for (fid, ft) in self.fact_types() {
            for side in Side::BOTH {
                if ft.player(side) == ot {
                    out.push(RoleRef::new(fid, side));
                }
            }
        }
        out
    }

    /// Direct supertypes of `ot` via sublinks.
    pub fn supertypes_of(&self, ot: ObjectTypeId) -> Vec<ObjectTypeId> {
        self.sublinks
            .iter()
            .filter(|sl| sl.sub == ot)
            .map(|sl| sl.sup)
            .collect()
    }

    /// Direct subtypes of `ot` via sublinks.
    pub fn subtypes_of(&self, ot: ObjectTypeId) -> Vec<ObjectTypeId> {
        self.sublinks
            .iter()
            .filter(|sl| sl.sup == ot)
            .map(|sl| sl.sub)
            .collect()
    }

    /// All (transitive, reflexive) supertypes of `ot`, `ot` first.
    pub fn ancestors_of(&self, ot: ObjectTypeId) -> Vec<ObjectTypeId> {
        let mut seen = vec![ot];
        let mut frontier = vec![ot];
        while let Some(cur) = frontier.pop() {
            for sup in self.supertypes_of(cur) {
                if !seen.contains(&sup) {
                    seen.push(sup);
                    frontier.push(sup);
                }
            }
        }
        seen
    }

    /// True if the sublink graph contains a cycle.
    pub fn sublink_graph_has_cycle(&self) -> bool {
        // Kahn's algorithm over object types restricted to sublink edges.
        let n = self.object_types.len();
        let mut indeg = vec![0u32; n];
        for sl in &self.sublinks {
            indeg[sl.sup.index()] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut visited = 0usize;
        while let Some(i) = queue.pop() {
            visited += 1;
            for sl in &self.sublinks {
                if sl.sub.index() == i {
                    indeg[sl.sup.index()] -= 1;
                    if indeg[sl.sup.index()] == 0 {
                        queue.push(sl.sup.index());
                    }
                }
            }
        }
        visited != n
    }

    // ---- constraint queries used by the analyzer and mapper ----

    /// True if a uniqueness constraint spans exactly this single role.
    ///
    /// A unique role makes its fact *functional* from the role's player: each
    /// player instance determines at most one co-role value.
    pub fn is_role_unique(&self, role: RoleRef) -> bool {
        self.constraints.iter().any(|c| {
            matches!(&c.kind, ConstraintKind::Uniqueness { roles } if roles.as_slice() == [role])
        })
    }

    /// True if some total constraint's items consist of exactly this role.
    pub fn is_role_total(&self, role: RoleRef) -> bool {
        self.constraints.iter().any(|c| {
            matches!(&c.kind, ConstraintKind::Total { items, .. }
                if items.as_slice() == [RoleOrSublink::Role(role)])
        })
    }

    /// The uniqueness constraints defined over roles of the given fact.
    pub fn fact_uniqueness(&self, fact: FactTypeId) -> Vec<&Constraint> {
        self.constraints
            .iter()
            .filter(|c| match &c.kind {
                ConstraintKind::Uniqueness { roles } => roles.iter().any(|r| r.fact == fact),
                _ => false,
            })
            .collect()
    }

    /// True if the fact has any uniqueness constraint at all (NIAM requires
    /// at least one per fact type; completeness checks enforce this).
    pub fn fact_has_uniqueness(&self, fact: FactTypeId) -> bool {
        !self.fact_uniqueness(fact).is_empty()
    }

    /// Classifies a fact: `(left_unique, right_unique)`.
    ///
    /// `(true, false)` is an n:1 fact from right to left player, etc.
    /// `(false, false)` with a both-role uniqueness is an m:n fact.
    pub fn fact_multiplicity(&self, fact: FactTypeId) -> (bool, bool) {
        (
            self.is_role_unique(RoleRef::new(fact, Side::Left)),
            self.is_role_unique(RoleRef::new(fact, Side::Right)),
        )
    }

    // ---- integrity of the ids ----

    /// Verifies that every id stored anywhere in the schema is in range and
    /// that basic structural invariants hold (sublinks between entity-like
    /// object types). Returns all problems found.
    pub fn check_ids(&self) -> Vec<BrmError> {
        let mut errs = Vec::new();
        let not = self.object_types.len() as u32;
        let nft = self.fact_types.len() as u32;
        let nsl = self.sublinks.len() as u32;
        let check_ot = |what: String, id: ObjectTypeId, errs: &mut Vec<BrmError>| {
            if id.raw() >= not {
                errs.push(BrmError::DanglingId { what });
            }
        };
        for (fid, ft) in self.fact_types() {
            for side in Side::BOTH {
                check_ot(
                    format!("fact {fid} ({}) {side} player", ft.name),
                    ft.player(side),
                    &mut errs,
                );
            }
        }
        for (sid, sl) in self.sublinks() {
            check_ot(format!("sublink {sid} sub"), sl.sub, &mut errs);
            check_ot(format!("sublink {sid} sup"), sl.sup, &mut errs);
        }
        for (cid, c) in self.constraints() {
            for r in c.kind.referenced_roles() {
                if r.fact.raw() >= nft {
                    errs.push(BrmError::DanglingId {
                        what: format!("constraint {cid} role {r}"),
                    });
                }
            }
            for s in c.kind.referenced_sublinks() {
                if s.raw() >= nsl {
                    errs.push(BrmError::DanglingId {
                        what: format!("constraint {cid} sublink {s}"),
                    });
                }
            }
            for ot in c.kind.referenced_object_types() {
                check_ot(format!("constraint {cid} object type"), ot, &mut errs);
            }
        }
        errs
    }

    /// Checks that names are unique per namespace.
    pub fn check_names(&self) -> Vec<BrmError> {
        let mut errs = Vec::new();
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for ot in &self.object_types {
            if seen.insert(ot.name.as_str(), ()).is_some() {
                errs.push(BrmError::DuplicateName {
                    name: ot.name.clone(),
                    namespace: "object type",
                });
            }
        }
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for ft in &self.fact_types {
            if seen.insert(ft.name.as_str(), ()).is_some() {
                errs.push(BrmError::DuplicateName {
                    name: ft.name.clone(),
                    namespace: "fact type",
                });
            }
        }
        errs
    }

    /// Convenience: the kind of an object type.
    pub fn kind_of(&self, ot: ObjectTypeId) -> ObjectTypeKind {
        self.object_type(ot).kind
    }

    /// Convenience: the name of an object type.
    pub fn ot_name(&self, ot: ObjectTypeId) -> &str {
        &self.object_type(ot).name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::datatype::DataType;

    fn sample() -> Schema {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.nolot("Program_Paper").unwrap();
        b.lot("Paper_Id", DataType::Char(6)).unwrap();
        b.fact(
            "paper_has_id",
            ("identified_by", "Paper"),
            ("of", "Paper_Id"),
        )
        .unwrap();
        b.sublink("Program_Paper", "Paper").unwrap();
        b.unique("paper_has_id", Side::Left).unwrap();
        b.unique("paper_has_id", Side::Right).unwrap();
        b.total_role("paper_has_id", Side::Left).unwrap();
        b.finish_unchecked()
    }

    #[test]
    fn navigation() {
        let s = sample();
        let paper = s.object_type_by_name("Paper").unwrap();
        let pp = s.object_type_by_name("Program_Paper").unwrap();
        let f = s.fact_type_by_name("paper_has_id").unwrap();
        assert_eq!(s.role_player(RoleRef::new(f, Side::Left)), paper);
        assert_eq!(s.roles_of(paper).len(), 1);
        assert_eq!(s.supertypes_of(pp), vec![paper]);
        assert_eq!(s.subtypes_of(paper), vec![pp]);
        let anc = s.ancestors_of(pp);
        assert!(anc.contains(&paper) && anc.contains(&pp));
        assert!(!s.sublink_graph_has_cycle());
    }

    #[test]
    fn multiplicity_and_totality() {
        let s = sample();
        let f = s.fact_type_by_name("paper_has_id").unwrap();
        assert_eq!(s.fact_multiplicity(f), (true, true));
        assert!(s.is_role_total(RoleRef::new(f, Side::Left)));
        assert!(!s.is_role_total(RoleRef::new(f, Side::Right)));
        assert!(s.fact_has_uniqueness(f));
    }

    #[test]
    fn cycle_detection() {
        let mut s = Schema::new("c");
        let a = s.push_object_type(ObjectType::new("A", ObjectTypeKind::Nolot));
        let b = s.push_object_type(ObjectType::new("B", ObjectTypeKind::Nolot));
        s.push_sublink(Sublink::new(a, b));
        assert!(!s.sublink_graph_has_cycle());
        s.push_sublink(Sublink::new(b, a));
        assert!(s.sublink_graph_has_cycle());
    }

    #[test]
    fn dangling_ids_detected() {
        let mut s = Schema::new("d");
        let a = s.push_object_type(ObjectType::new("A", ObjectTypeKind::Nolot));
        s.push_fact_type(FactType::new(
            "f",
            crate::fact::Role::new("r1", a),
            crate::fact::Role::new("r2", ObjectTypeId::from_raw(99)),
        ));
        let errs = s.check_ids();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], BrmError::DanglingId { .. }));
    }

    #[test]
    fn duplicate_names_detected() {
        let mut s = Schema::new("d");
        s.push_object_type(ObjectType::new("A", ObjectTypeKind::Nolot));
        s.push_object_type(ObjectType::new("A", ObjectTypeKind::Nolot));
        let errs = s.check_names();
        assert_eq!(errs.len(), 1);
    }
}

//! Values populating object types: lexical values and abstract entities.
//!
//! The BRM separates *non-lexical* entities (abstract individuals of the
//! universe of discourse) from their *lexical* representations (§2). A
//! [`Value`] is either a lexical literal or an opaque [`EntityId`] surrogate.
//! Entities deliberately carry no content: all information about an entity is
//! stored as binary facts, and referring to an entity lexically requires a
//! reference scheme — exactly the property RIDL-A's non-referability check
//! verifies.

use std::fmt;

use crate::datatype::DataType;

/// An opaque surrogate for a non-lexical entity.
///
/// Surrogates exist only inside populations; they never appear in a generated
/// relational schema (the mapper replaces them by lexical representations,
/// §4.2.3). Equality of populations is therefore judged *up to entity
/// renaming* — compare with `compacted`/renaming helpers on
/// [`crate::population::Population`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u64);

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An exact decimal, stored as scaled integer so values hash and order.
///
/// `mantissa * 10^-scale`. Using a scaled integer instead of `f64` keeps
/// `Value` `Eq + Hash`, which populations (sets of facts) require.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Decimal {
    /// The unscaled value.
    pub mantissa: i64,
    /// Number of decimal fraction digits.
    pub scale: u8,
}

impl Decimal {
    /// Creates a decimal `mantissa * 10^-scale`.
    pub fn new(mantissa: i64, scale: u8) -> Self {
        Self { mantissa, scale }
    }

    /// A whole number.
    pub fn whole(n: i64) -> Self {
        Self {
            mantissa: n,
            scale: 0,
        }
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let sign = if self.mantissa < 0 { "-" } else { "" };
        let abs = self.mantissa.unsigned_abs();
        let pow = 10u64.pow(self.scale as u32);
        write!(
            f,
            "{sign}{}.{:0width$}",
            abs / pow,
            abs % pow,
            width = self.scale as usize
        )
    }
}

/// A value of an object-type population.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// A character-string lexical value.
    Str(String),
    /// An integral lexical value.
    Int(i64),
    /// An exact decimal lexical value.
    Num(Decimal),
    /// A date, days since an arbitrary epoch.
    Date(i32),
    /// A truth value.
    Bool(bool),
    /// A non-lexical entity surrogate.
    Entity(EntityId),
}

impl Value {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Shorthand for an entity value.
    pub fn entity(raw: u64) -> Self {
        Value::Entity(EntityId(raw))
    }

    /// True if this is a lexical (non-entity) value.
    pub fn is_lexical(&self) -> bool {
        !matches!(self, Value::Entity(_))
    }

    /// The entity surrogate, if any.
    pub fn as_entity(&self) -> Option<EntityId> {
        match self {
            Value::Entity(e) => Some(*e),
            _ => None,
        }
    }

    /// Whether this lexical value inhabits the given data type.
    ///
    /// Entities inhabit no lexical data type. String length limits are
    /// enforced; numeric precision is checked against the digit budget.
    pub fn fits(&self, dt: DataType) -> bool {
        match (self, dt) {
            (Value::Str(s), DataType::Char(n) | DataType::VarChar(n)) => s.len() <= n as usize,
            (Value::Int(v), DataType::Integer) => {
                let _ = v;
                true
            }
            (Value::Int(v), DataType::Numeric(p, s)) => digits(*v) + s as u32 <= p as u32,
            (Value::Num(d), DataType::Numeric(p, s)) => {
                d.scale <= s && digits(d.mantissa) <= p as u32
            }
            (Value::Num(_), DataType::Real) => true,
            (Value::Int(_), DataType::Real) => true,
            (Value::Date(_), DataType::Date) => true,
            (Value::Bool(_), DataType::Boolean) => true,
            (Value::Entity(_), DataType::Surrogate) => true,
            _ => false,
        }
    }
}

fn digits(v: i64) -> u32 {
    let mut a = v.unsigned_abs();
    let mut d = 1;
    while a >= 10 {
        a /= 10;
        d += 1;
    }
    d
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Num(d) => write!(f, "{d}"),
            Value::Date(d) => write!(f, "DATE#{d}"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Entity(e) => write!(f, "{e}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_display() {
        assert_eq!(Decimal::whole(42).to_string(), "42");
        assert_eq!(Decimal::new(1234, 2).to_string(), "12.34");
        assert_eq!(Decimal::new(-105, 1).to_string(), "-10.5");
        assert_eq!(Decimal::new(7, 3).to_string(), "0.007");
    }

    #[test]
    fn value_fits_types() {
        assert!(Value::str("ab").fits(DataType::Char(2)));
        assert!(!Value::str("abc").fits(DataType::Char(2)));
        assert!(Value::Int(999).fits(DataType::Numeric(3, 0)));
        assert!(!Value::Int(1000).fits(DataType::Numeric(3, 0)));
        assert!(Value::Num(Decimal::new(1234, 2)).fits(DataType::Numeric(4, 2)));
        assert!(!Value::Num(Decimal::new(1234, 2)).fits(DataType::Numeric(4, 1)));
        assert!(!Value::entity(1).fits(DataType::Char(30)));
    }

    #[test]
    fn lexicality() {
        assert!(Value::str("x").is_lexical());
        assert!(Value::Int(1).is_lexical());
        assert!(!Value::entity(9).is_lexical());
        assert_eq!(Value::entity(9).as_entity(), Some(EntityId(9)));
        assert_eq!(Value::Int(9).as_entity(), None);
    }
}

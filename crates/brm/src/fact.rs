//! Binary fact types and their roles.

use std::fmt;

use crate::ids::ObjectTypeId;

/// Which of the two roles of a binary fact type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Side {
    /// The first role.
    Left,
    /// The second role.
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Both sides, left first.
    pub const BOTH: [Side; 2] = [Side::Left, Side::Right];

    /// 0 for left, 1 for right — for indexing two-element arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "left"),
            Side::Right => write!(f, "right"),
        }
    }
}

/// One role ("box" in the NIAM diagram) of a fact type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Role {
    /// The role name, e.g. `presented_by` (may be empty for bridge facts).
    pub name: String,
    /// The object type playing this role.
    pub player: ObjectTypeId,
}

impl Role {
    /// Creates a role.
    pub fn new(name: impl Into<String>, player: ObjectTypeId) -> Self {
        Self {
            name: name.into(),
            player,
        }
    }
}

/// A binary fact type: "all information is stored as a link … involving two
/// object types — hence the name *binary*" (§2). Both roles may be played by
/// the same object type (homogeneous facts, e.g. `Person supervises Person`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FactType {
    /// Fact-type name, unique within the schema.
    pub name: String,
    /// The two roles; `roles[0]` is [`Side::Left`].
    pub roles: [Role; 2],
}

impl FactType {
    /// Creates a fact type from its two roles.
    pub fn new(name: impl Into<String>, left: Role, right: Role) -> Self {
        Self {
            name: name.into(),
            roles: [left, right],
        }
    }

    /// The role on the given side.
    #[inline]
    pub fn role(&self, side: Side) -> &Role {
        &self.roles[side.index()]
    }

    /// The object type playing the role on the given side.
    #[inline]
    pub fn player(&self, side: Side) -> ObjectTypeId {
        self.roles[side.index()].player
    }

    /// If `ot` plays exactly one of the two roles, returns that side.
    ///
    /// Returns `None` when `ot` plays neither role or both (homogeneous fact,
    /// where the side is ambiguous and must be named explicitly).
    pub fn side_of(&self, ot: ObjectTypeId) -> Option<Side> {
        let l = self.player(Side::Left) == ot;
        let r = self.player(Side::Right) == ot;
        match (l, r) {
            (true, false) => Some(Side::Left),
            (false, true) => Some(Side::Right),
            _ => None,
        }
    }

    /// True when both roles are played by the same object type.
    pub fn is_homogeneous(&self) -> bool {
        self.player(Side::Left) == self.player(Side::Right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ot(n: u32) -> ObjectTypeId {
        ObjectTypeId::from_raw(n)
    }

    #[test]
    fn side_accessors() {
        let f = FactType::new(
            "submits",
            Role::new("submitted_by", ot(0)),
            Role::new("submitting", ot(1)),
        );
        assert_eq!(f.role(Side::Left).name, "submitted_by");
        assert_eq!(f.player(Side::Right), ot(1));
        assert_eq!(f.side_of(ot(0)), Some(Side::Left));
        assert_eq!(f.side_of(ot(1)), Some(Side::Right));
        assert_eq!(f.side_of(ot(2)), None);
        assert!(!f.is_homogeneous());
    }

    #[test]
    fn homogeneous_fact_is_ambiguous() {
        let f = FactType::new(
            "supervises",
            Role::new("boss_of", ot(7)),
            Role::new("reports_to", ot(7)),
        );
        assert!(f.is_homogeneous());
        assert_eq!(f.side_of(ot(7)), None);
    }

    #[test]
    fn side_other_and_index() {
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
        assert_eq!(Side::Left.index(), 0);
        assert_eq!(Side::Right.index(), 1);
    }
}

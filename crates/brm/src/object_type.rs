//! Object types: LOTs, NOLOTs and LOT-NOLOTs.

use crate::datatype::DataType;

/// The kind of an object type (§2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ObjectTypeKind {
    /// A **L**exical **O**bject **T**ype: its instances are strings/numbers of
    /// the universe of discourse, drawn from the given data type. By BRM rule
    /// a LOT is involved in exactly one fact type, with a NOLOT.
    Lot(DataType),
    /// A **NO**n-**L**exical **O**bject **T**ype: abstract entities,
    /// represented in populations by opaque surrogates.
    Nolot,
    /// Notational convenience: an object type whose non-lexical entities and
    /// lexical representations are not distinguished explicitly. Schema
    /// canonicalisation expands a LOT-NOLOT into a NOLOT plus a bridging LOT.
    LotNolot(DataType),
}

impl ObjectTypeKind {
    /// The lexical data type, when the object type is (partly) lexical.
    pub fn data_type(self) -> Option<DataType> {
        match self {
            ObjectTypeKind::Lot(dt) | ObjectTypeKind::LotNolot(dt) => Some(dt),
            ObjectTypeKind::Nolot => None,
        }
    }

    /// True for pure LOTs.
    pub fn is_lot(self) -> bool {
        matches!(self, ObjectTypeKind::Lot(_))
    }

    /// True for pure NOLOTs.
    pub fn is_nolot(self) -> bool {
        matches!(self, ObjectTypeKind::Nolot)
    }

    /// True for the hybrid LOT-NOLOT notation.
    pub fn is_lot_nolot(self) -> bool {
        matches!(self, ObjectTypeKind::LotNolot(_))
    }

    /// True for object types that may be subtyped / carry facts like a NOLOT
    /// (NOLOT and LOT-NOLOT).
    pub fn is_entity_like(self) -> bool {
        !self.is_lot()
    }
}

/// An object type of a binary conceptual schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ObjectType {
    /// Unique (case-preserved) name within the schema.
    pub name: String,
    /// LOT / NOLOT / LOT-NOLOT.
    pub kind: ObjectTypeKind,
}

impl ObjectType {
    /// Creates an object type.
    pub fn new(name: impl Into<String>, kind: ObjectTypeKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let lot = ObjectTypeKind::Lot(DataType::Char(2));
        let nolot = ObjectTypeKind::Nolot;
        let hybrid = ObjectTypeKind::LotNolot(DataType::Date);
        assert!(lot.is_lot() && !lot.is_entity_like());
        assert!(nolot.is_nolot() && nolot.is_entity_like());
        assert!(hybrid.is_lot_nolot() && hybrid.is_entity_like());
        assert_eq!(lot.data_type(), Some(DataType::Char(2)));
        assert_eq!(nolot.data_type(), None);
        assert_eq!(hybrid.data_type(), Some(DataType::Date));
    }
}

//! Lexical data types for LOTs.
//!
//! The paper annotates lexical object types with RDBMS data types (e.g.
//! `D Paper_ProgramId -- DATA TYPE CHAR(2)`). `DataType` is the dialect-neutral
//! form; the `ridl-sqlgen` crate renders it per target DBMS.

use std::fmt;

/// A dialect-neutral lexical data type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataType {
    /// Fixed-width character string of the given length.
    Char(u16),
    /// Variable-width character string with the given maximum length.
    VarChar(u16),
    /// Exact numeric with `precision` total digits and `scale` fraction digits.
    Numeric(u8, u8),
    /// Machine integer.
    Integer,
    /// Approximate numeric.
    Real,
    /// Calendar date.
    Date,
    /// Truth value. SQL2-era targets without BOOLEAN render it as `CHAR(1)`.
    Boolean,
    /// An entity surrogate (§4.2.3: "It is of course possible to introduce
    /// surrogates as a representation for non-lexical objects, but this
    /// representation is an artifact"). Surrogate columns exist only in the
    /// intermediate *binary relational schema*; the lexicalisation
    /// transformation replaces them before DDL generation.
    Surrogate,
}

impl DataType {
    /// Estimated physical width in bytes.
    ///
    /// RIDL-M's default lexical-representation choice picks the "smallest"
    /// naming convention, partly judged by "the smallest physical
    /// representation as derived from the data types of the LOTs involved"
    /// (§4.2.3). This estimate is that judgement.
    pub fn byte_width(self) -> u32 {
        match self {
            DataType::Char(n) => n as u32,
            DataType::VarChar(n) => n as u32 + 2,
            DataType::Numeric(p, _) => (p as u32).div_ceil(2) + 1,
            DataType::Integer => 4,
            DataType::Real => 8,
            DataType::Date => 7,
            DataType::Boolean => 1,
            DataType::Surrogate => 8,
        }
    }

    /// Whether two data types are comparable for foreign-key compatibility.
    ///
    /// Step 4 of the naive algorithm (§4) warns that replacing non-lexical
    /// attributes by lexical representations must keep foreign keys over
    /// "compatible domains"; this is the compatibility judgement.
    pub fn compatible_with(self, other: DataType) -> bool {
        use DataType::*;
        match (self, other) {
            (Char(_) | VarChar(_), Char(_) | VarChar(_)) => true,
            (Numeric(..) | Integer | Real, Numeric(..) | Integer | Real) => true,
            (a, b) => a == b,
        }
    }

    /// True for character-string types.
    pub fn is_textual(self) -> bool {
        matches!(self, DataType::Char(_) | DataType::VarChar(_))
    }

    /// True for numeric types (exact or approximate).
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Numeric(..) | DataType::Integer | DataType::Real
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Char(n) => write!(f, "CHAR({n})"),
            DataType::VarChar(n) => write!(f, "VARCHAR({n})"),
            DataType::Numeric(p, 0) => write!(f, "NUMERIC({p})"),
            DataType::Numeric(p, s) => write!(f, "NUMERIC({p},{s})"),
            DataType::Integer => write!(f, "INTEGER"),
            DataType::Real => write!(f, "REAL"),
            DataType::Date => write!(f, "DATE"),
            DataType::Boolean => write!(f, "BOOLEAN"),
            DataType::Surrogate => write!(f, "SURROGATE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(DataType::Char(2).to_string(), "CHAR(2)");
        assert_eq!(DataType::Numeric(3, 0).to_string(), "NUMERIC(3)");
        assert_eq!(DataType::Numeric(7, 2).to_string(), "NUMERIC(7,2)");
    }

    #[test]
    fn byte_width_orders_reasonably() {
        assert!(DataType::Char(2).byte_width() < DataType::Char(30).byte_width());
        assert!(DataType::Numeric(3, 0).byte_width() < DataType::Char(30).byte_width());
        assert_eq!(DataType::Boolean.byte_width(), 1);
    }

    #[test]
    fn compatibility_groups_text_and_numbers() {
        assert!(DataType::Char(2).compatible_with(DataType::VarChar(10)));
        assert!(DataType::Integer.compatible_with(DataType::Numeric(5, 0)));
        assert!(!DataType::Char(2).compatible_with(DataType::Integer));
        assert!(DataType::Date.compatible_with(DataType::Date));
        assert!(!DataType::Date.compatible_with(DataType::Boolean));
    }
}

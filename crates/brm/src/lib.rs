//! # ridl-brm — the Binary Relationship Model (NIAM)
//!
//! The conceptual substrate of the RIDL\* workbench (De Troyer, SIGMOD 1989).
//!
//! A *binary conceptual schema* is a semantic network of:
//!
//! * **object types** — [`ObjectType`]: lexical (`LOT`, strings/numbers of the
//!   universe of discourse), non-lexical (`NOLOT`, abstract entities), or the
//!   notational hybrid `LOT-NOLOT`;
//! * **fact types** — [`FactType`]: binary relationships, each involving exactly
//!   two [`Role`]s played by object types;
//! * **sublinks** — [`Sublink`]: subtype links between NOLOTs, with inheritance;
//! * **constraints** — [`Constraint`]: identifier/uniqueness, total role, total
//!   union, exclusion, subset, equality, cardinality and value constraints.
//!
//! Following the paper's model-theoretic view (§4.1), a schema is a logical
//! theory and a [`Population`] is a model of it (a database *state*). The
//! [`population::validate`] function decides whether a population satisfies all
//! constraints of a schema, which is the machinery that lets downstream crates
//! *test* losslessness of schema transformations instead of assuming it.
//!
//! Schemas are built with the fluent [`SchemaBuilder`] or parsed from the RIDL
//! textual language (`ridl-lang`).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod constraint;
pub mod datatype;
pub mod error;
pub mod fact;
pub mod ids;
pub mod object_type;
pub mod population;
pub mod schema;
pub mod sublink;
pub mod value;

pub use builder::SchemaBuilder;
pub use constraint::{Constraint, ConstraintId, ConstraintKind, RoleOrSublink, RoleSeq};
pub use datatype::DataType;
pub use error::BrmError;
pub use fact::{FactType, Role, Side};
pub use ids::{FactTypeId, ObjectTypeId, RoleRef, SublinkId};
pub use object_type::{ObjectType, ObjectTypeKind};
pub use population::{Population, Violation};
pub use schema::Schema;
pub use sublink::Sublink;
pub use value::{Decimal, EntityId, Value};

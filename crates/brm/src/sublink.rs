//! Sublink (subtype) types.

use crate::ids::ObjectTypeId;

/// A sublink type: `sub` IS-A `sup` (§2).
///
/// "The subtype occurrences implicitly inherit all properties of the
/// supertype. Subtypes need not be disjoint; not all of a NOLOT's occurrences
/// need be in one of its subtypes." Disjointness and totality, when wanted,
/// are expressed by [`crate::Constraint`]s (exclusion / total union).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Sublink {
    /// The subtype NOLOT.
    pub sub: ObjectTypeId,
    /// The supertype NOLOT.
    pub sup: ObjectTypeId,
}

impl Sublink {
    /// Creates a sublink `sub` IS-A `sup`.
    pub fn new(sub: ObjectTypeId, sup: ObjectTypeId) -> Self {
        Self { sub, sup }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let s = Sublink::new(ObjectTypeId::from_raw(1), ObjectTypeId::from_raw(0));
        assert_eq!(s.sub.raw(), 1);
        assert_eq!(s.sup.raw(), 0);
    }
}

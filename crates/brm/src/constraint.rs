//! Integrity constraints of the Binary Relationship Model.
//!
//! "The BRM explicitly addresses the issue of constraints" (§2). The paper
//! singles out the constraint types used in its example schemas — identifier
//! (uniqueness), total role, total union, exclusion — and notes that these are
//! instances of *set-algebraic constraints* on role and object-type
//! populations, which RIDL-A reasons about. We additionally carry the subset,
//! equality, cardinality and value constraint types that the NIAM literature
//! (and RIDL-M's lossless rules) require.

use std::fmt;

use crate::ids::{ObjectTypeId, RoleRef, SublinkId};
use crate::value::Value;

/// Identifier of a [`Constraint`] in a schema.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(pub(crate) u32);

impl ConstraintId {
    /// Creates an id from a raw arena index.
    pub fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw arena index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An item of a set-algebraic constraint: either a role population or a
/// subtype population (via its sublink).
///
/// The total-union constraint of the paper ranges over "the indicated roles
/// *or subtypes*", and the exclusion constraint ranges over subtypes as well.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RoleOrSublink {
    /// The population of an object type projected through a role.
    Role(RoleRef),
    /// The population of the subtype of a sublink.
    Sublink(SublinkId),
}

/// An ordered sequence of roles, used by subset/equality constraints and by
/// compound (external) uniqueness constraints.
pub type RoleSeq = Vec<RoleRef>;

/// The kind of a constraint.
#[derive(Clone, PartialEq, Debug)]
pub enum ConstraintKind {
    /// Identifier / uniqueness constraint ("the line over the key role").
    ///
    /// With a single role this is a simple functional dependency: each
    /// instance of the role's player occurs at most once in the role, so the
    /// co-role is functionally determined. With both roles of one fact it
    /// makes the *pair* unique (an m:n fact). With roles of *different* fact
    /// types that share a common player it is NIAM's external uniqueness: the
    /// combination of co-role values identifies the shared player's instance.
    Uniqueness {
        /// The roles spanned by the uniqueness constraint.
        roles: RoleSeq,
    },
    /// Total role / total union constraint (the "V" sign).
    ///
    /// Every instance of `over` must occur in at least one of `items`.
    /// A single item is the plain total-role constraint.
    Total {
        /// The constrained object type.
        over: ObjectTypeId,
        /// Roles/subtypes whose union must cover `over`'s population.
        items: Vec<RoleOrSublink>,
    },
    /// Exclusion: the populations of `items` are mutually disjoint.
    Exclusion {
        /// Pairwise-disjoint roles/subtypes.
        items: Vec<RoleOrSublink>,
    },
    /// Subset: the population of `sub` (projected tuples) is contained in the
    /// population of `sup`. Sequences must have equal length and compatible
    /// players position-wise.
    Subset {
        /// The contained side.
        sub: RoleSeq,
        /// The containing side.
        sup: RoleSeq,
    },
    /// Equality: the projected populations of `a` and `b` coincide. Appears
    /// as a lossless rule of several transformations (§4.1).
    Equality {
        /// One side.
        a: RoleSeq,
        /// The other side.
        b: RoleSeq,
    },
    /// Occurrence frequency: each instance playing `role` plays it between
    /// `min` and `max` times (`max == None` means unbounded).
    Cardinality {
        /// The constrained role.
        role: RoleRef,
        /// Minimum occurrences per player instance (0 = optional).
        min: u32,
        /// Maximum occurrences per player instance.
        max: Option<u32>,
    },
    /// Value constraint: the population of a LOT (or LOT-NOLOT) is limited to
    /// an enumerated set of lexical values.
    Value {
        /// The constrained lexical object type.
        over: ObjectTypeId,
        /// The admissible values.
        values: Vec<Value>,
    },
}

impl ConstraintKind {
    /// A short keyword for reports, matching the paper's map-report style.
    pub fn keyword(&self) -> &'static str {
        match self {
            ConstraintKind::Uniqueness { .. } => "IDENTIFIER",
            ConstraintKind::Total { .. } => "TOTAL",
            ConstraintKind::Exclusion { .. } => "EXCLUSION",
            ConstraintKind::Subset { .. } => "SUBSET",
            ConstraintKind::Equality { .. } => "EQUALITY",
            ConstraintKind::Cardinality { .. } => "CARDINALITY",
            ConstraintKind::Value { .. } => "VALUE",
        }
    }

    /// All roles referenced by the constraint, for id-validity checking.
    pub fn referenced_roles(&self) -> Vec<RoleRef> {
        match self {
            ConstraintKind::Uniqueness { roles } => roles.clone(),
            ConstraintKind::Total { items, .. } | ConstraintKind::Exclusion { items } => items
                .iter()
                .filter_map(|i| match i {
                    RoleOrSublink::Role(r) => Some(*r),
                    RoleOrSublink::Sublink(_) => None,
                })
                .collect(),
            ConstraintKind::Subset { sub, sup } => sub.iter().chain(sup.iter()).copied().collect(),
            ConstraintKind::Equality { a, b } => a.iter().chain(b.iter()).copied().collect(),
            ConstraintKind::Cardinality { role, .. } => vec![*role],
            ConstraintKind::Value { .. } => Vec::new(),
        }
    }

    /// All sublinks referenced by the constraint.
    pub fn referenced_sublinks(&self) -> Vec<SublinkId> {
        match self {
            ConstraintKind::Total { items, .. } | ConstraintKind::Exclusion { items } => items
                .iter()
                .filter_map(|i| match i {
                    RoleOrSublink::Sublink(s) => Some(*s),
                    RoleOrSublink::Role(_) => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// All object types referenced directly (not via roles).
    pub fn referenced_object_types(&self) -> Vec<ObjectTypeId> {
        match self {
            ConstraintKind::Total { over, .. } | ConstraintKind::Value { over, .. } => {
                vec![*over]
            }
            _ => Vec::new(),
        }
    }
}

/// A named constraint instance in a schema.
#[derive(Clone, PartialEq, Debug)]
pub struct Constraint {
    /// Optional user-supplied name; generated names are produced by the
    /// mapper when emitting SQL.
    pub name: Option<String>,
    /// What the constraint states.
    pub kind: ConstraintKind,
}

impl Constraint {
    /// Creates an anonymous constraint.
    pub fn new(kind: ConstraintKind) -> Self {
        Self { name: None, kind }
    }

    /// Creates a named constraint.
    pub fn named(name: impl Into<String>, kind: ConstraintKind) -> Self {
        Self {
            name: Some(name.into()),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Side;
    use crate::ids::FactTypeId;

    fn rr(f: u32, s: Side) -> RoleRef {
        RoleRef::new(FactTypeId::from_raw(f), s)
    }

    #[test]
    fn referenced_roles_cover_all_kinds() {
        let u = ConstraintKind::Uniqueness {
            roles: vec![rr(0, Side::Left)],
        };
        assert_eq!(u.referenced_roles(), vec![rr(0, Side::Left)]);

        let t = ConstraintKind::Total {
            over: ObjectTypeId::from_raw(0),
            items: vec![
                RoleOrSublink::Role(rr(1, Side::Right)),
                RoleOrSublink::Sublink(SublinkId::from_raw(0)),
            ],
        };
        assert_eq!(t.referenced_roles(), vec![rr(1, Side::Right)]);
        assert_eq!(t.referenced_sublinks(), vec![SublinkId::from_raw(0)]);
        assert_eq!(t.referenced_object_types(), vec![ObjectTypeId::from_raw(0)]);

        let s = ConstraintKind::Subset {
            sub: vec![rr(2, Side::Left)],
            sup: vec![rr(3, Side::Left)],
        };
        assert_eq!(s.referenced_roles().len(), 2);

        let e = ConstraintKind::Equality {
            a: vec![rr(2, Side::Left), rr(2, Side::Right)],
            b: vec![rr(3, Side::Left), rr(3, Side::Right)],
        };
        assert_eq!(e.referenced_roles().len(), 4);

        let c = ConstraintKind::Cardinality {
            role: rr(5, Side::Left),
            min: 0,
            max: Some(3),
        };
        assert_eq!(c.referenced_roles(), vec![rr(5, Side::Left)]);
    }

    #[test]
    fn keywords() {
        assert_eq!(
            ConstraintKind::Uniqueness { roles: vec![] }.keyword(),
            "IDENTIFIER"
        );
        assert_eq!(
            ConstraintKind::Exclusion { items: vec![] }.keyword(),
            "EXCLUSION"
        );
    }
}

//! Fluent, name-based construction of binary conceptual schemas.
//!
//! `SchemaBuilder` is the programmatic counterpart of the RIDL-G graphical
//! editor: it resolves names, rejects duplicates eagerly, and hands out
//! [`RoleRef`]s so constraints can be attached by name.

use crate::constraint::{Constraint, ConstraintId, ConstraintKind, RoleOrSublink};
use crate::datatype::DataType;
use crate::error::BrmError;
use crate::fact::{FactType, Role, Side};
use crate::ids::{FactTypeId, ObjectTypeId, RoleRef, SublinkId};
use crate::object_type::{ObjectType, ObjectTypeKind};
use crate::schema::Schema;
use crate::sublink::Sublink;
use crate::value::Value;

/// Incremental builder for a [`Schema`].
#[derive(Debug)]
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Starts an empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            schema: Schema::new(name),
        }
    }

    /// Continues building on an existing schema.
    pub fn from_schema(schema: Schema) -> Self {
        Self { schema }
    }

    // ---- object types ----

    fn add_object_type(
        &mut self,
        name: impl Into<String>,
        kind: ObjectTypeKind,
    ) -> Result<ObjectTypeId, BrmError> {
        let name = name.into();
        if self.schema.object_type_by_name(&name).is_some() {
            return Err(BrmError::DuplicateName {
                name,
                namespace: "object type",
            });
        }
        Ok(self.schema.push_object_type(ObjectType::new(name, kind)))
    }

    /// Adds a non-lexical object type.
    pub fn nolot(&mut self, name: impl Into<String>) -> Result<ObjectTypeId, BrmError> {
        self.add_object_type(name, ObjectTypeKind::Nolot)
    }

    /// Adds a lexical object type with its data type.
    pub fn lot(&mut self, name: impl Into<String>, dt: DataType) -> Result<ObjectTypeId, BrmError> {
        self.add_object_type(name, ObjectTypeKind::Lot(dt))
    }

    /// Adds a LOT-NOLOT (hybrid notation, §2).
    pub fn lot_nolot(
        &mut self,
        name: impl Into<String>,
        dt: DataType,
    ) -> Result<ObjectTypeId, BrmError> {
        self.add_object_type(name, ObjectTypeKind::LotNolot(dt))
    }

    // ---- fact types ----

    /// Adds a binary fact type. Each endpoint is `(role_name, player_name)`.
    pub fn fact(
        &mut self,
        name: impl Into<String>,
        left: (&str, &str),
        right: (&str, &str),
    ) -> Result<FactTypeId, BrmError> {
        let name = name.into();
        if self.schema.fact_type_by_name(&name).is_some() {
            return Err(BrmError::DuplicateName {
                name,
                namespace: "fact type",
            });
        }
        let lp = self.schema.require_object_type(left.1)?;
        let rp = self.schema.require_object_type(right.1)?;
        Ok(self.schema.push_fact_type(FactType::new(
            name,
            Role::new(left.0, lp),
            Role::new(right.0, rp),
        )))
    }

    // ---- sublinks ----

    /// Adds a sublink `sub` IS-A `sup` by object-type names.
    pub fn sublink(&mut self, sub: &str, sup: &str) -> Result<SublinkId, BrmError> {
        let sub_id = self.schema.require_object_type(sub)?;
        let sup_id = self.schema.require_object_type(sup)?;
        if !self.schema.kind_of(sub_id).is_entity_like()
            || !self.schema.kind_of(sup_id).is_entity_like()
        {
            return Err(BrmError::Structural {
                message: format!("sublink {sub} -> {sup} must connect NOLOTs"),
            });
        }
        Ok(self.schema.push_sublink(Sublink::new(sub_id, sup_id)))
    }

    // ---- role addressing ----

    /// Resolves a role by fact name and side.
    pub fn role(&self, fact: &str, side: Side) -> Result<RoleRef, BrmError> {
        Ok(RoleRef::new(self.schema.require_fact_type(fact)?, side))
    }

    /// Resolves the role of `fact` played by object type `player`.
    ///
    /// Errors if the fact is homogeneous (both roles played by `player`) —
    /// use [`SchemaBuilder::role`] with an explicit side in that case.
    pub fn role_of(&self, fact: &str, player: &str) -> Result<RoleRef, BrmError> {
        let fid = self.schema.require_fact_type(fact)?;
        let pid = self.schema.require_object_type(player)?;
        let side = self
            .schema
            .fact_type(fid)
            .side_of(pid)
            .ok_or(BrmError::Structural {
                message: format!("role of `{player}` in `{fact}` is ambiguous or absent"),
            })?;
        Ok(RoleRef::new(fid, side))
    }

    // ---- constraints ----

    /// Simple identifier (uniqueness over a single role).
    pub fn unique(&mut self, fact: &str, side: Side) -> Result<ConstraintId, BrmError> {
        let r = self.role(fact, side)?;
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Uniqueness {
                roles: vec![r],
            })))
    }

    /// Uniqueness over both roles of a fact (unique pairs; marks m:n facts).
    pub fn unique_pair(&mut self, fact: &str) -> Result<ConstraintId, BrmError> {
        let l = self.role(fact, Side::Left)?;
        let r = self.role(fact, Side::Right)?;
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Uniqueness {
                roles: vec![l, r],
            })))
    }

    /// External (compound) uniqueness over roles of several facts.
    pub fn external_unique(&mut self, roles: &[(&str, Side)]) -> Result<ConstraintId, BrmError> {
        let roles = roles
            .iter()
            .map(|(f, s)| self.role(f, *s))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Uniqueness { roles })))
    }

    /// Total role constraint: every instance of the role's player plays it.
    pub fn total_role(&mut self, fact: &str, side: Side) -> Result<ConstraintId, BrmError> {
        let r = self.role(fact, side)?;
        let over = self.schema.role_player(r);
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Total {
                over,
                items: vec![RoleOrSublink::Role(r)],
            })))
    }

    /// Total union over several roles of the object type `over`.
    pub fn total_union(
        &mut self,
        over: &str,
        roles: &[(&str, Side)],
    ) -> Result<ConstraintId, BrmError> {
        let over_id = self.schema.require_object_type(over)?;
        let items = roles
            .iter()
            .map(|(f, s)| self.role(f, *s).map(RoleOrSublink::Role))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Total {
                over: over_id,
                items,
            })))
    }

    /// Total union over subtypes: every instance of `over` is in some subtype.
    pub fn total_subtypes(
        &mut self,
        over: &str,
        sublinks: &[SublinkId],
    ) -> Result<ConstraintId, BrmError> {
        let over_id = self.schema.require_object_type(over)?;
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Total {
                over: over_id,
                items: sublinks
                    .iter()
                    .map(|s| RoleOrSublink::Sublink(*s))
                    .collect(),
            })))
    }

    /// Exclusion between roles.
    pub fn exclusion_roles(&mut self, roles: &[(&str, Side)]) -> Result<ConstraintId, BrmError> {
        let items = roles
            .iter()
            .map(|(f, s)| self.role(f, *s).map(RoleOrSublink::Role))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Exclusion { items })))
    }

    /// Exclusion between subtypes.
    pub fn exclusion_subtypes(&mut self, sublinks: &[SublinkId]) -> Result<ConstraintId, BrmError> {
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Exclusion {
                items: sublinks
                    .iter()
                    .map(|s| RoleOrSublink::Sublink(*s))
                    .collect(),
            })))
    }

    /// Subset constraint between two role sequences.
    pub fn subset(
        &mut self,
        sub: &[(&str, Side)],
        sup: &[(&str, Side)],
    ) -> Result<ConstraintId, BrmError> {
        let sub = sub
            .iter()
            .map(|(f, s)| self.role(f, *s))
            .collect::<Result<Vec<_>, _>>()?;
        let sup = sup
            .iter()
            .map(|(f, s)| self.role(f, *s))
            .collect::<Result<Vec<_>, _>>()?;
        if sub.len() != sup.len() {
            return Err(BrmError::Structural {
                message: "subset constraint sides must have equal arity".into(),
            });
        }
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Subset { sub, sup })))
    }

    /// Equality constraint between two role sequences.
    pub fn equality(
        &mut self,
        a: &[(&str, Side)],
        b: &[(&str, Side)],
    ) -> Result<ConstraintId, BrmError> {
        let a = a
            .iter()
            .map(|(f, s)| self.role(f, *s))
            .collect::<Result<Vec<_>, _>>()?;
        let b = b
            .iter()
            .map(|(f, s)| self.role(f, *s))
            .collect::<Result<Vec<_>, _>>()?;
        if a.len() != b.len() {
            return Err(BrmError::Structural {
                message: "equality constraint sides must have equal arity".into(),
            });
        }
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Equality { a, b })))
    }

    /// Occurrence-frequency constraint on a role.
    pub fn cardinality(
        &mut self,
        fact: &str,
        side: Side,
        min: u32,
        max: Option<u32>,
    ) -> Result<ConstraintId, BrmError> {
        let role = self.role(fact, side)?;
        if let Some(m) = max {
            if min > m {
                return Err(BrmError::Structural {
                    message: format!("cardinality min {min} exceeds max {m}"),
                });
            }
        }
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Cardinality {
                role,
                min,
                max,
            })))
    }

    /// Value (enumeration) constraint on a lexical object type.
    pub fn value_constraint(
        &mut self,
        over: &str,
        values: Vec<Value>,
    ) -> Result<ConstraintId, BrmError> {
        let over_id = self.schema.require_object_type(over)?;
        if self.schema.kind_of(over_id).is_nolot() {
            return Err(BrmError::Structural {
                message: format!("value constraint on non-lexical object type `{over}`"),
            });
        }
        Ok(self
            .schema
            .push_constraint(Constraint::new(ConstraintKind::Value {
                over: over_id,
                values,
            })))
    }

    /// Pushes a pre-built constraint (escape hatch for transformations).
    pub fn raw_constraint(&mut self, c: Constraint) -> ConstraintId {
        self.schema.push_constraint(c)
    }

    // ---- finish ----

    /// Read-only view of the schema under construction.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Finishes, verifying id and name integrity.
    pub fn finish(self) -> Result<Schema, Vec<BrmError>> {
        let mut errs = self.schema.check_ids();
        errs.extend(self.schema.check_names());
        if errs.is_empty() {
            Ok(self.schema)
        } else {
            Err(errs)
        }
    }

    /// Finishes without verification (tests, incremental transformation).
    pub fn finish_unchecked(self) -> Schema {
        self.schema
    }
}

/// Shorthand for the extremely common "NOLOT identified by LOT" pattern:
/// adds the LOT, a bridge fact `"<nolot>_has_<lot>"`, uniqueness on both
/// roles and totality on the NOLOT side — a simple reference scheme.
///
/// ```
/// use ridl_brm::builder::{identify, SchemaBuilder};
/// use ridl_brm::DataType;
///
/// let mut b = SchemaBuilder::new("s");
/// b.nolot("Paper").unwrap();
/// identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
/// let schema = b.finish().unwrap();
/// assert!(schema.fact_type_by_name("Paper_has_Paper_Id").is_some());
/// ```
pub fn identify(
    b: &mut SchemaBuilder,
    nolot: &str,
    lot: &str,
    dt: DataType,
) -> Result<FactTypeId, BrmError> {
    b.lot(lot, dt)?;
    let fname = format!("{nolot}_has_{lot}");
    let fid = b.fact(&fname, ("identified_by", nolot), ("of", lot))?;
    b.unique(&fname, Side::Left)?;
    b.unique(&fname, Side::Right)?;
    b.total_role(&fname, Side::Left)?;
    Ok(fid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_object_type_rejected() {
        let mut b = SchemaBuilder::new("t");
        b.nolot("A").unwrap();
        assert!(matches!(b.nolot("A"), Err(BrmError::DuplicateName { .. })));
    }

    #[test]
    fn fact_requires_known_players() {
        let mut b = SchemaBuilder::new("t");
        b.nolot("A").unwrap();
        assert!(b.fact("f", ("x", "A"), ("y", "Missing")).is_err());
    }

    #[test]
    fn sublink_rejects_lots() {
        let mut b = SchemaBuilder::new("t");
        b.nolot("A").unwrap();
        b.lot("L", DataType::Char(1)).unwrap();
        assert!(b.sublink("L", "A").is_err());
    }

    #[test]
    fn role_of_disambiguation() {
        let mut b = SchemaBuilder::new("t");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.fact("f", ("l", "A"), ("r", "B")).unwrap();
        let r = b.role_of("f", "B").unwrap();
        assert_eq!(r.side, Side::Right);
        b.fact("g", ("l", "A"), ("r", "A")).unwrap();
        assert!(b.role_of("g", "A").is_err());
    }

    #[test]
    fn identify_creates_reference_scheme() {
        let mut b = SchemaBuilder::new("t");
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        let s = b.finish().unwrap();
        let f = s.fact_type_by_name("Paper_has_Paper_Id").unwrap();
        assert_eq!(s.fact_multiplicity(f), (true, true));
        assert!(s.is_role_total(RoleRef::new(f, Side::Left)));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = SchemaBuilder::new("t");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.fact("f", ("l", "A"), ("r", "B")).unwrap();
        b.fact("g", ("l", "A"), ("r", "B")).unwrap();
        let e = b.subset(
            &[("f", Side::Left)],
            &[("g", Side::Left), ("g", Side::Right)],
        );
        assert!(e.is_err());
    }

    #[test]
    fn cardinality_bounds_checked() {
        let mut b = SchemaBuilder::new("t");
        b.nolot("A").unwrap();
        b.nolot("B").unwrap();
        b.fact("f", ("l", "A"), ("r", "B")).unwrap();
        assert!(b.cardinality("f", Side::Left, 3, Some(2)).is_err());
        assert!(b.cardinality("f", Side::Left, 1, Some(4)).is_ok());
    }

    #[test]
    fn finish_catches_errors() {
        let mut b = SchemaBuilder::new("t");
        b.nolot("A").unwrap();
        // Bypass the builder to inject a duplicate.
        b.schema
            .push_object_type(ObjectType::new("A", ObjectTypeKind::Nolot));
        assert!(b.finish().is_err());
    }
}

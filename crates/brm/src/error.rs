//! Error type for schema construction and id validation.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or checking a BRM schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BrmError {
    /// Two schema elements of the same namespace share a name.
    DuplicateName {
        /// The colliding name.
        name: String,
        /// The namespace ("object type", "fact type", …).
        namespace: &'static str,
    },
    /// An id refers outside the schema's arenas.
    DanglingId {
        /// Description of the dangling reference.
        what: String,
    },
    /// A name was looked up and not found.
    UnknownName {
        /// The missing name.
        name: String,
        /// The namespace searched.
        namespace: &'static str,
    },
    /// A structural rule of the BRM is violated at construction time.
    Structural {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for BrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrmError::DuplicateName { name, namespace } => {
                write!(f, "duplicate {namespace} name `{name}`")
            }
            BrmError::DanglingId { what } => write!(f, "dangling reference: {what}"),
            BrmError::UnknownName { name, namespace } => {
                write!(f, "unknown {namespace} `{name}`")
            }
            BrmError::Structural { message } => write!(f, "structural error: {message}"),
        }
    }
}

impl Error for BrmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = BrmError::DuplicateName {
            name: "Paper".into(),
            namespace: "object type",
        };
        assert_eq!(e.to_string(), "duplicate object type name `Paper`");
        let e = BrmError::UnknownName {
            name: "X".into(),
            namespace: "fact type",
        };
        assert_eq!(e.to_string(), "unknown fact type `X`");
    }
}

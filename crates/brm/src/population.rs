//! Populations: database *states* of a binary conceptual schema.
//!
//! Following §4.1 of the paper, a schema is a logical theory and a state is a
//! model of it: `STATES(S)` is the set of populations satisfying all of `S`'s
//! constraints. [`validate`] decides membership of that set, which is what
//! lets the transformation crates *test* state equivalence (Definitions 1–2)
//! instead of assuming it.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use crate::constraint::{ConstraintId, ConstraintKind, RoleOrSublink};
use crate::fact::Side;
use crate::ids::{FactTypeId, ObjectTypeId, RoleRef, SublinkId};
use crate::schema::Schema;
use crate::value::{EntityId, Value};

/// A population (database state) of a binary schema.
///
/// Object-type populations are sets of [`Value`]s; fact-type populations are
/// sets of ordered pairs (left value, right value). `BTree` collections keep
/// iteration deterministic, which benches and golden tests rely on.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Population {
    pub(crate) objects: BTreeMap<u32, BTreeSet<Value>>,
    pub(crate) facts: BTreeMap<u32, BTreeSet<(Value, Value)>>,
}

impl Population {
    /// An empty population.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a value to an object type's population.
    pub fn add_object(&mut self, ot: ObjectTypeId, v: Value) {
        self.objects.entry(ot.raw()).or_default().insert(v);
    }

    /// Adds a pair to a fact type's population.
    pub fn add_fact(&mut self, ft: FactTypeId, left: Value, right: Value) {
        self.facts
            .entry(ft.raw())
            .or_default()
            .insert((left, right));
    }

    /// Adds a fact pair and ensures both values are members of the players'
    /// populations (the common case when building states by hand).
    pub fn add_fact_closed(&mut self, schema: &Schema, ft: FactTypeId, left: Value, right: Value) {
        let f = schema.fact_type(ft);
        self.add_object(f.player(Side::Left), left.clone());
        self.add_object(f.player(Side::Right), right.clone());
        self.add_fact(ft, left, right);
    }

    /// The population of an object type (empty set if never touched).
    pub fn objects_of(&self, ot: ObjectTypeId) -> &BTreeSet<Value> {
        static EMPTY: BTreeSet<Value> = BTreeSet::new();
        self.objects.get(&ot.raw()).unwrap_or(&EMPTY)
    }

    /// The population of a fact type.
    pub fn facts_of(&self, ft: FactTypeId) -> &BTreeSet<(Value, Value)> {
        static EMPTY: BTreeSet<(Value, Value)> = BTreeSet::new();
        self.facts.get(&ft.raw()).unwrap_or(&EMPTY)
    }

    /// Mutable access to a fact population.
    pub fn facts_of_mut(&mut self, ft: FactTypeId) -> &mut BTreeSet<(Value, Value)> {
        self.facts.entry(ft.raw()).or_default()
    }

    /// Mutable access to an object population.
    pub fn objects_of_mut(&mut self, ot: ObjectTypeId) -> &mut BTreeSet<Value> {
        self.objects.entry(ot.raw()).or_default()
    }

    /// The projection of a fact population onto one role.
    pub fn role_population(&self, role: RoleRef) -> BTreeSet<Value> {
        self.facts_of(role.fact)
            .iter()
            .map(|(l, r)| match role.side {
                Side::Left => l.clone(),
                Side::Right => r.clone(),
            })
            .collect()
    }

    /// For a value `v` playing `role`, the set of co-role values paired with it.
    pub fn co_values(&self, role: RoleRef, v: &Value) -> Vec<Value> {
        self.facts_of(role.fact)
            .iter()
            .filter_map(|(l, r)| match role.side {
                Side::Left if l == v => Some(r.clone()),
                Side::Right if r == v => Some(l.clone()),
                _ => None,
            })
            .collect()
    }

    /// Total number of fact instances.
    pub fn num_fact_instances(&self) -> usize {
        self.facts.values().map(|s| s.len()).sum()
    }

    /// Total number of object instances (over all object types).
    pub fn num_object_instances(&self) -> usize {
        self.objects.values().map(|s| s.len()).sum()
    }

    /// True when no object type and no fact type is populated.
    pub fn is_empty(&self) -> bool {
        self.objects.values().all(BTreeSet::is_empty) && self.facts.values().all(BTreeSet::is_empty)
    }

    /// Renames every entity surrogate through `renaming`; entities without a
    /// mapping are kept. Used to compare populations up to entity renaming
    /// (state equivalence is isomorphism on the non-lexical part).
    pub fn rename_entities(&self, renaming: &HashMap<EntityId, EntityId>) -> Population {
        let ren = |v: &Value| match v {
            Value::Entity(e) => Value::Entity(*renaming.get(e).unwrap_or(e)),
            other => other.clone(),
        };
        Population {
            objects: self
                .objects
                .iter()
                .map(|(k, s)| (*k, s.iter().map(ren).collect()))
                .collect(),
            facts: self
                .facts
                .iter()
                .map(|(k, s)| (*k, s.iter().map(|(l, r)| (ren(l), ren(r))).collect()))
                .collect(),
        }
    }

    /// Drops empty object/fact entries so populations compare structurally.
    pub fn compacted(&self) -> Population {
        Population {
            objects: self
                .objects
                .iter()
                .filter(|(_, s)| !s.is_empty())
                .map(|(k, s)| (*k, s.clone()))
                .collect(),
            facts: self
                .facts
                .iter()
                .filter(|(_, s)| !s.is_empty())
                .map(|(k, s)| (*k, s.clone()))
                .collect(),
        }
    }
}

/// A constraint or typing violation found by [`validate`].
#[derive(Clone, PartialEq, Debug)]
pub enum Violation {
    /// A fact pair's value is not a member of the role player's population,
    /// or a lexical value does not fit the LOT's data type, or an entity
    /// appears in a LOT / a lexical value in a NOLOT.
    Typing {
        /// Human-readable description.
        detail: String,
    },
    /// A subtype population is not contained in its supertype's.
    SublinkMembership {
        /// The violated sublink.
        sublink: SublinkId,
        /// The offending value.
        value: Value,
    },
    /// A declared constraint does not hold in the state.
    Constraint {
        /// The violated constraint.
        constraint: ConstraintId,
        /// Human-readable description of the counterexample.
        detail: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Typing { detail } => write!(f, "typing: {detail}"),
            Violation::SublinkMembership { sublink, value } => {
                write!(f, "sublink {sublink}: {value} not in supertype population")
            }
            Violation::Constraint { constraint, detail } => {
                write!(f, "constraint {constraint}: {detail}")
            }
        }
    }
}

/// Checks whether `pop` is a model of `schema`; returns all violations.
pub fn validate(schema: &Schema, pop: &Population) -> Vec<Violation> {
    let mut out = Vec::new();
    check_typing(schema, pop, &mut out);
    check_sublinks(schema, pop, &mut out);
    for (cid, c) in schema.constraints() {
        check_constraint(schema, pop, cid, &c.kind, &mut out);
    }
    out
}

/// True when the population satisfies every rule of the schema.
pub fn is_model(schema: &Schema, pop: &Population) -> bool {
    validate(schema, pop).is_empty()
}

fn check_typing(schema: &Schema, pop: &Population, out: &mut Vec<Violation>) {
    for (oid, ot) in schema.object_types() {
        for v in pop.objects_of(oid) {
            match ot.kind.data_type() {
                Some(dt) => {
                    if !v.fits(dt) {
                        out.push(Violation::Typing {
                            detail: format!("value {v} does not fit {dt} of {}", ot.name),
                        });
                    }
                }
                None => {
                    if v.is_lexical() {
                        out.push(Violation::Typing {
                            detail: format!("lexical value {v} in NOLOT {}", ot.name),
                        });
                    }
                }
            }
        }
    }
    for (fid, ft) in schema.fact_types() {
        for (l, r) in pop.facts_of(fid) {
            for (side, v) in [(Side::Left, l), (Side::Right, r)] {
                let player = ft.player(side);
                if !pop.objects_of(player).contains(v) {
                    out.push(Violation::Typing {
                        detail: format!(
                            "fact {}: value {v} not in population of {}",
                            ft.name,
                            schema.ot_name(player)
                        ),
                    });
                }
            }
        }
    }
}

fn check_sublinks(schema: &Schema, pop: &Population, out: &mut Vec<Violation>) {
    for (sid, sl) in schema.sublinks() {
        let sup_pop = pop.objects_of(sl.sup);
        for v in pop.objects_of(sl.sub) {
            if !sup_pop.contains(v) {
                out.push(Violation::SublinkMembership {
                    sublink: sid,
                    value: v.clone(),
                });
            }
        }
    }
}

fn item_population(schema: &Schema, pop: &Population, item: &RoleOrSublink) -> BTreeSet<Value> {
    match item {
        RoleOrSublink::Role(r) => pop.role_population(*r),
        RoleOrSublink::Sublink(s) => pop.objects_of(schema.sublink(*s).sub).clone(),
    }
}

/// The "hub" of a role sequence: the object type played by all co-roles.
///
/// External uniqueness / compound subset semantics join the sequence's facts
/// over this shared co-player. Returns `None` when co-players differ.
fn sequence_hub(schema: &Schema, roles: &[RoleRef]) -> Option<ObjectTypeId> {
    let mut hub = None;
    for r in roles {
        let co = schema.role_player(r.co_role());
        match hub {
            None => hub = Some(co),
            Some(h) if h == co => {}
            Some(_) => return None,
        }
    }
    hub
}

/// The tuple population of a role sequence.
///
/// Arity 1: the plain role projection, each value as a 1-tuple. Arity > 1:
/// the sequence's facts are joined over their common hub object type, and for
/// every hub instance with a *complete and functional* image the tuple of
/// images is produced. Incomplete hubs contribute no tuple.
fn sequence_tuples(
    schema: &Schema,
    pop: &Population,
    roles: &[RoleRef],
) -> Option<BTreeSet<Vec<Value>>> {
    if roles.len() == 1 {
        return Some(
            pop.role_population(roles[0])
                .into_iter()
                .map(|v| vec![v])
                .collect(),
        );
    }
    let hub = sequence_hub(schema, roles)?;
    let mut tuples = BTreeSet::new();
    'hub: for h in pop.objects_of(hub) {
        let mut tuple = Vec::with_capacity(roles.len());
        for r in roles {
            // The hub plays the co-role; collect its images in `r`.
            let imgs = pop.co_values(r.co_role(), h);
            match imgs.len() {
                1 => tuple.push(imgs.into_iter().next().expect("len checked")),
                0 => continue 'hub,
                _ => return None, // non-functional: caller reports
            }
        }
        tuples.insert(tuple);
    }
    Some(tuples)
}

fn check_constraint(
    schema: &Schema,
    pop: &Population,
    cid: ConstraintId,
    kind: &ConstraintKind,
    out: &mut Vec<Violation>,
) {
    match kind {
        ConstraintKind::Uniqueness { roles } => check_uniqueness(schema, pop, cid, roles, out),
        ConstraintKind::Total { over, items } => {
            for v in pop.objects_of(*over) {
                let covered = items
                    .iter()
                    .any(|item| item_population(schema, pop, item).contains(v));
                if !covered {
                    out.push(Violation::Constraint {
                        constraint: cid,
                        detail: format!(
                            "{v} of {} plays none of the total roles/subtypes",
                            schema.ot_name(*over)
                        ),
                    });
                }
            }
        }
        ConstraintKind::Exclusion { items } => {
            for i in 0..items.len() {
                let pi = item_population(schema, pop, &items[i]);
                for item_j in items.iter().skip(i + 1) {
                    let pj = item_population(schema, pop, item_j);
                    if let Some(v) = pi.intersection(&pj).next() {
                        out.push(Violation::Constraint {
                            constraint: cid,
                            detail: format!("{v} occurs in two mutually exclusive items"),
                        });
                    }
                }
            }
        }
        ConstraintKind::Subset { sub, sup } => {
            match (
                sequence_tuples(schema, pop, sub),
                sequence_tuples(schema, pop, sup),
            ) {
                (Some(ts), Some(tp)) => {
                    if let Some(t) = ts.difference(&tp).next() {
                        out.push(Violation::Constraint {
                            constraint: cid,
                            detail: format!("tuple {t:?} in subset side but not in superset side"),
                        });
                    }
                }
                _ => out.push(Violation::Constraint {
                    constraint: cid,
                    detail: "role sequence is not functional over its hub".into(),
                }),
            }
        }
        ConstraintKind::Equality { a, b } => {
            match (
                sequence_tuples(schema, pop, a),
                sequence_tuples(schema, pop, b),
            ) {
                (Some(ta), Some(tb)) => {
                    if ta != tb {
                        let diff: Vec<_> = ta.symmetric_difference(&tb).take(3).collect();
                        out.push(Violation::Constraint {
                            constraint: cid,
                            detail: format!("populations differ, e.g. {diff:?}"),
                        });
                    }
                }
                _ => out.push(Violation::Constraint {
                    constraint: cid,
                    detail: "role sequence is not functional over its hub".into(),
                }),
            }
        }
        ConstraintKind::Cardinality { role, min, max } => {
            let mut counts: BTreeMap<&Value, u32> = BTreeMap::new();
            for (l, r) in pop.facts_of(role.fact) {
                let v = match role.side {
                    Side::Left => l,
                    Side::Right => r,
                };
                *counts.entry(v).or_insert(0) += 1;
            }
            for (v, n) in counts {
                if n < *min || max.map(|m| n > m).unwrap_or(false) {
                    out.push(Violation::Constraint {
                        constraint: cid,
                        detail: format!(
                            "{v} plays {} {n} times, outside [{min}, {}]",
                            schema.role_display(*role),
                            max.map(|m| m.to_string()).unwrap_or_else(|| "∞".into())
                        ),
                    });
                }
            }
        }
        ConstraintKind::Value { over, values } => {
            for v in pop.objects_of(*over) {
                if !values.contains(v) {
                    out.push(Violation::Constraint {
                        constraint: cid,
                        detail: format!(
                            "{v} not among the admitted values of {}",
                            schema.ot_name(*over)
                        ),
                    });
                }
            }
        }
    }
}

fn check_uniqueness(
    schema: &Schema,
    pop: &Population,
    cid: ConstraintId,
    roles: &[RoleRef],
    out: &mut Vec<Violation>,
) {
    // Intra-fact uniqueness: all roles belong to the same fact.
    if roles.iter().all(|r| r.fact == roles[0].fact) {
        if roles.len() >= 2 {
            // Pair uniqueness is trivially satisfied for set populations.
            return;
        }
        let role = roles[0];
        let mut seen = BTreeSet::new();
        for (l, r) in pop.facts_of(role.fact) {
            let key = match role.side {
                Side::Left => l,
                Side::Right => r,
            };
            if !seen.insert(key.clone()) {
                out.push(Violation::Constraint {
                    constraint: cid,
                    detail: format!(
                        "{key} occurs more than once in unique {}",
                        schema.role_display(role)
                    ),
                });
            }
        }
        return;
    }
    // External uniqueness: facts joined over the common hub; tuples of role
    // images must identify the hub instance.
    let Some(hub) = sequence_hub(schema, roles) else {
        out.push(Violation::Constraint {
            constraint: cid,
            detail: "external uniqueness roles do not share a common object type".into(),
        });
        return;
    };
    let mut seen: BTreeMap<Vec<Value>, Value> = BTreeMap::new();
    for h in pop.objects_of(hub) {
        let mut tuple = Vec::with_capacity(roles.len());
        let mut complete = true;
        for r in roles {
            let imgs = pop.co_values(r.co_role(), h);
            match imgs.len() {
                1 => tuple.push(imgs.into_iter().next().expect("len checked")),
                0 => {
                    complete = false;
                    break;
                }
                _ => {
                    out.push(Violation::Constraint {
                        constraint: cid,
                        detail: format!(
                            "{h} has several values in {} under an external identifier",
                            schema.role_display(*r)
                        ),
                    });
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            continue;
        }
        if let Some(prev) = seen.insert(tuple.clone(), h.clone()) {
            if &prev != h {
                out.push(Violation::Constraint {
                    constraint: cid,
                    detail: format!("{prev} and {h} share the external identifier {tuple:?}"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{identify, SchemaBuilder};
    use crate::datatype::DataType;

    fn paper_schema() -> Schema {
        let mut b = SchemaBuilder::new("papers");
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.lot("Title", DataType::VarChar(60)).unwrap();
        b.fact("paper_title", ("titled", "Paper"), ("title_of", "Title"))
            .unwrap();
        b.unique("paper_title", Side::Left).unwrap();
        b.total_role("paper_title", Side::Left).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn valid_population_is_model() {
        let s = paper_schema();
        let mut p = Population::new();
        let fid = s.fact_type_by_name("Paper_has_Paper_Id").unwrap();
        let ftitle = s.fact_type_by_name("paper_title").unwrap();
        p.add_fact_closed(&s, fid, Value::entity(1), Value::str("P1"));
        p.add_fact_closed(&s, ftitle, Value::entity(1), Value::str("On NIAM"));
        assert!(is_model(&s, &p), "{:?}", validate(&s, &p));
    }

    #[test]
    fn totality_violation_detected() {
        let s = paper_schema();
        let mut p = Population::new();
        let paper = s.object_type_by_name("Paper").unwrap();
        p.add_object(paper, Value::entity(1));
        // Paper e1 has neither id nor title: two total-role violations.
        let v = validate(&s, &p);
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, Violation::Constraint { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn uniqueness_violation_detected() {
        let s = paper_schema();
        let mut p = Population::new();
        let ftitle = s.fact_type_by_name("paper_title").unwrap();
        let fid = s.fact_type_by_name("Paper_has_Paper_Id").unwrap();
        p.add_fact_closed(&s, fid, Value::entity(1), Value::str("P1"));
        p.add_fact_closed(&s, ftitle, Value::entity(1), Value::str("A"));
        p.add_fact_closed(&s, ftitle, Value::entity(1), Value::str("B"));
        let v = validate(&s, &p);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::Constraint { detail, .. } if detail.contains("more than once"))));
    }

    #[test]
    fn typing_violations_detected() {
        let s = paper_schema();
        let mut p = Population::new();
        let paper = s.object_type_by_name("Paper").unwrap();
        let pid = s.object_type_by_name("Paper_Id").unwrap();
        p.add_object(paper, Value::str("lexical-in-nolot"));
        p.add_object(pid, Value::str("too-long-for-char6"));
        p.add_object(pid, Value::entity(4));
        let v = validate(&s, &p);
        assert_eq!(
            v.iter()
                .filter(|x| matches!(x, Violation::Typing { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn fact_value_must_be_in_player_population() {
        let s = paper_schema();
        let mut p = Population::new();
        let fid = s.fact_type_by_name("Paper_has_Paper_Id").unwrap();
        p.add_fact(fid, Value::entity(1), Value::str("P1"));
        let v = validate(&s, &p);
        assert!(v.iter().any(|x| matches!(x, Violation::Typing { .. })));
    }

    #[test]
    fn sublink_membership_checked() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.nolot("Invited_Paper").unwrap();
        b.sublink("Invited_Paper", "Paper").unwrap();
        let s = b.finish_unchecked();
        let paper = s.object_type_by_name("Paper").unwrap();
        let inv = s.object_type_by_name("Invited_Paper").unwrap();
        let mut p = Population::new();
        p.add_object(inv, Value::entity(1));
        let v = validate(&s, &p);
        assert!(matches!(v[0], Violation::SublinkMembership { .. }));
        p.add_object(paper, Value::entity(1));
        assert!(is_model(&s, &p));
    }

    #[test]
    fn external_uniqueness() {
        // Session identified by (Day, Slot).
        let mut b = SchemaBuilder::new("s");
        b.nolot("Session").unwrap();
        b.lot("Day", DataType::Char(3)).unwrap();
        b.lot("Slot", DataType::Numeric(2, 0)).unwrap();
        b.fact("on_day", ("held_on", "Session"), ("day_of", "Day"))
            .unwrap();
        b.fact("in_slot", ("held_in", "Session"), ("slot_of", "Slot"))
            .unwrap();
        b.unique("on_day", Side::Left).unwrap();
        b.unique("in_slot", Side::Left).unwrap();
        b.external_unique(&[("on_day", Side::Right), ("in_slot", Side::Right)])
            .unwrap();
        let s = b.finish().unwrap();
        let on_day = s.fact_type_by_name("on_day").unwrap();
        let in_slot = s.fact_type_by_name("in_slot").unwrap();
        let mut p = Population::new();
        p.add_fact_closed(&s, on_day, Value::entity(1), Value::str("MON"));
        p.add_fact_closed(&s, in_slot, Value::entity(1), Value::Int(1));
        p.add_fact_closed(&s, on_day, Value::entity(2), Value::str("MON"));
        p.add_fact_closed(&s, in_slot, Value::entity(2), Value::Int(2));
        assert!(is_model(&s, &p), "{:?}", validate(&s, &p));
        // Collide the pair (MON, 1).
        p.facts_of_mut(in_slot)
            .remove(&(Value::entity(2), Value::Int(2)));
        p.add_fact(in_slot, Value::entity(2), Value::Int(1));
        assert!(!is_model(&s, &p));
    }

    #[test]
    fn cardinality_and_value_constraints() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Referee").unwrap();
        b.nolot("Paper").unwrap();
        b.fact(
            "reviews",
            ("reviewer_of", "Referee"),
            ("reviewed_by", "Paper"),
        )
        .unwrap();
        b.unique_pair("reviews").unwrap();
        b.cardinality("reviews", Side::Right, 2, Some(3)).unwrap();
        b.lot("Grade", DataType::Char(1)).unwrap();
        b.nolot("Review").unwrap();
        b.fact("graded", ("grade_of", "Review"), ("grades", "Grade"))
            .unwrap();
        b.value_constraint(
            "Grade",
            vec![Value::str("A"), Value::str("B"), Value::str("C")],
        )
        .unwrap();
        let s = b.finish().unwrap();
        let reviews = s.fact_type_by_name("reviews").unwrap();
        let mut p = Population::new();
        // Paper e10 reviewed once only: violates min 2.
        p.add_fact_closed(&s, reviews, Value::entity(1), Value::entity(10));
        assert!(!is_model(&s, &p));
        p.add_fact_closed(&s, reviews, Value::entity(2), Value::entity(10));
        assert!(is_model(&s, &p), "{:?}", validate(&s, &p));
        // Value constraint.
        let grade = s.object_type_by_name("Grade").unwrap();
        p.add_object(grade, Value::str("Z"));
        assert!(!is_model(&s, &p));
    }

    #[test]
    fn subset_and_equality_sequences() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Person").unwrap();
        b.nolot("Paper").unwrap();
        b.fact("writes", ("author_of", "Person"), ("written_by", "Paper"))
            .unwrap();
        b.fact(
            "presents",
            ("presenter_of", "Person"),
            ("presented_by", "Paper"),
        )
        .unwrap();
        b.unique_pair("writes").unwrap();
        b.unique_pair("presents").unwrap();
        // Presenters must be authors (role subset on the Person side).
        b.subset(&[("presents", Side::Left)], &[("writes", Side::Left)])
            .unwrap();
        let s = b.finish().unwrap();
        let writes = s.fact_type_by_name("writes").unwrap();
        let presents = s.fact_type_by_name("presents").unwrap();
        let mut p = Population::new();
        p.add_fact_closed(&s, writes, Value::entity(1), Value::entity(7));
        p.add_fact_closed(&s, presents, Value::entity(2), Value::entity(7));
        assert!(!is_model(&s, &p));
        p.add_fact_closed(&s, writes, Value::entity(2), Value::entity(7));
        assert!(is_model(&s, &p), "{:?}", validate(&s, &p));
    }

    #[test]
    fn rename_and_compact() {
        let mut p = Population::new();
        p.add_object(ObjectTypeId::from_raw(0), Value::entity(1));
        p.add_fact(FactTypeId::from_raw(0), Value::entity(1), Value::str("x"));
        let mut ren = HashMap::new();
        ren.insert(EntityId(1), EntityId(42));
        let q = p.rename_entities(&ren);
        assert!(q
            .objects_of(ObjectTypeId::from_raw(0))
            .contains(&Value::entity(42)));
        assert!(q
            .facts_of(FactTypeId::from_raw(0))
            .contains(&(Value::entity(42), Value::str("x"))));
        let mut r = Population::new();
        r.objects_of_mut(ObjectTypeId::from_raw(3));
        assert_eq!(r.compacted(), Population::new());
    }
}

//! Newtype identifiers for the arenas of a [`crate::Schema`].
//!
//! All schema elements live in flat arenas inside [`crate::Schema`] and are
//! referred to by small copyable ids. Ids are only meaningful relative to the
//! schema that issued them; the validation pass in [`crate::schema`] checks
//! that ids used in constraints and facts are in range.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw arena index.
            ///
            /// Exposed so sibling crates (transformations, generators) can
            /// construct ids when rebuilding schemas; out-of-range ids are
            /// caught by [`crate::Schema::check_ids`].
            #[inline]
            pub fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw arena index.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as `usize`, for direct arena indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of an [`crate::ObjectType`] in a schema.
    ObjectTypeId,
    "ot"
);
define_id!(
    /// Identifier of a [`crate::FactType`] in a schema.
    FactTypeId,
    "ft"
);
define_id!(
    /// Identifier of a [`crate::Sublink`] in a schema.
    SublinkId,
    "sl"
);

/// A reference to one of the two roles of a fact type.
///
/// The BRM is binary: every fact type has exactly two roles, addressed by
/// [`crate::Side::Left`] and [`crate::Side::Right`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoleRef {
    /// The fact type owning the role.
    pub fact: FactTypeId,
    /// Which of the fact's two roles.
    pub side: crate::fact::Side,
}

impl RoleRef {
    /// Convenience constructor.
    #[inline]
    pub fn new(fact: FactTypeId, side: crate::fact::Side) -> Self {
        Self { fact, side }
    }

    /// The reference to the *other* role of the same fact type.
    #[inline]
    pub fn co_role(self) -> Self {
        Self {
            fact: self.fact,
            side: self.side.other(),
        }
    }
}

impl fmt::Debug for RoleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:?}", self.fact, self.side)
    }
}

impl fmt::Display for RoleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:?}", self.fact, self.side)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Side;

    #[test]
    fn id_round_trips_raw() {
        let id = ObjectTypeId::from_raw(17);
        assert_eq!(id.raw(), 17);
        assert_eq!(id.index(), 17);
        assert_eq!(format!("{id}"), "ot17");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(FactTypeId::from_raw(1) < FactTypeId::from_raw(2));
        assert!(SublinkId::from_raw(0) < SublinkId::from_raw(9));
    }

    #[test]
    fn co_role_flips_side_only() {
        let r = RoleRef::new(FactTypeId::from_raw(3), Side::Left);
        let c = r.co_role();
        assert_eq!(c.fact, r.fact);
        assert_eq!(c.side, Side::Right);
        assert_eq!(c.co_role(), r);
    }
}

//! Lexical representation choice and column naming (§4.2.3).
//!
//! "RIDL-M selects for each NOLOT the 'smallest' lexical representation
//! type … Since this limits the freedom of the database engineer,
//! flexibility needs to be added to allow selection for each NOLOT of the
//! preferred lexical representation."
//!
//! Column names follow the paper's generated schemas: the value player's
//! name suffixed with its role name (`Person_presenting`,
//! `Session_comprising`, `Title_of`), `_Is` columns for sublinks
//! (`Paper_ProgramId_Is`), and `Is_<Subtype>` indicator attributes.

use std::collections::HashMap;

use ridl_analyzer::{LexicalRep, ReferenceAnalysis};
use ridl_brm::{ObjectTypeId, RoleRef, Schema, Side};

use crate::grouping::MapError;
use crate::options::MappingOptions;

/// The chosen representation per object type.
#[derive(Clone, Debug, Default)]
pub struct LexicalChoice {
    chosen: HashMap<u32, LexicalRep>,
}

impl LexicalChoice {
    /// The representation chosen for an object type, if any.
    pub fn rep_of(&self, ot: ObjectTypeId) -> Option<&LexicalRep> {
        self.chosen.get(&ot.raw())
    }

    /// Requires a representation.
    pub fn require(&self, schema: &Schema, ot: ObjectTypeId) -> Result<&LexicalRep, MapError> {
        self.rep_of(ot).ok_or_else(|| MapError {
            message: format!(
                "object type {} has no lexical representation; run RIDL-A",
                schema.ot_name(ot)
            ),
        })
    }
}

/// Resolves the lexical option: the smallest representation by default,
/// honouring per-NOLOT overrides.
pub fn choose_reps(
    schema: &Schema,
    analysis: &ReferenceAnalysis,
    options: &MappingOptions,
) -> Result<LexicalChoice, MapError> {
    let mut chosen = HashMap::new();
    for (oid, ot) in schema.object_types() {
        if ot.kind.is_lot() {
            continue; // LOTs are their own representation, never anchored
        }
        let reps = analysis.reps_of(oid);
        if reps.is_empty() {
            continue; // non-referable: grouping decides whether that matters
        }
        let rep = match options.lexical_overrides.get(&oid) {
            Some(&idx) => reps.get(idx).ok_or_else(|| MapError {
                message: format!(
                    "lexical override {idx} out of range for {} ({} representations)",
                    ot.name,
                    reps.len()
                ),
            })?,
            None => analysis.smallest(schema, oid).expect("non-empty reps"),
        };
        chosen.insert(oid.raw(), rep.clone());
    }
    Ok(LexicalChoice { chosen })
}

/// Column base names for the atoms of a representation: the terminal LOT
/// name, qualified by intermediate fact names when the path is deep.
pub fn rep_column_names(schema: &Schema, rep: &LexicalRep) -> Vec<String> {
    rep.atoms
        .iter()
        .map(|atom| {
            if atom.path.len() <= 1 {
                schema.ot_name(atom.lot).to_owned()
            } else {
                // Deep path: qualify with the first hop's co-player to keep
                // sibling atoms distinguishable.
                let via = schema.role_player(atom.path[0].co_role());
                format!("{}_{}", schema.ot_name(via), schema.ot_name(atom.lot))
            }
        })
        .collect()
}

/// The paper's attribute naming: value player's name plus the value-side
/// role name — `Person_presenting`, `Session_comprising`, `Title_of`.
pub fn attribute_column_name(schema: &Schema, value_role: RoleRef) -> String {
    let ft = schema.fact_type(value_role.fact);
    let role = ft.role(value_role.side);
    let player = schema.ot_name(role.player);
    if role.name.is_empty() {
        player.to_owned()
    } else {
        format!("{player}_{}", role.name)
    }
}

/// The `_Is` column carrying a subtype's own key inside the super-relation
/// (`Paper_ProgramId_Is` in fig. 6, Alternative 3).
pub fn sublink_is_column_name(base: &str) -> String {
    format!("{base}_Is")
}

/// The indicator attribute name for `SUBOT INDICATOR FOR SUPOT`
/// (`Is_Invited_Paper` in fig. 6).
pub fn indicator_column_name(schema: &Schema, sub: ObjectTypeId) -> String {
    format!("Is_{}", schema.ot_name(sub))
}

/// Disambiguates a candidate column name against those already used.
pub fn dedupe_name(used: &[String], candidate: String) -> String {
    if !used.contains(&candidate) {
        return candidate;
    }
    for i in 2.. {
        let next = format!("{candidate}_{i}");
        if !used.contains(&next) {
            return next;
        }
    }
    unreachable!()
}

/// Whether the value side of a fact should be read through a rep (entity
/// co-player) or is directly lexical.
pub fn value_side_is_lexical(schema: &Schema, value_role: RoleRef) -> bool {
    let player = schema.role_player(value_role);
    schema.kind_of(player).data_type().is_some()
}

/// Convenience: the two roles of a fact as (anchor_role, value_role) given
/// the anchor side.
pub fn split_roles(fact: ridl_brm::FactTypeId, anchor_side: Side) -> (RoleRef, RoleRef) {
    (
        RoleRef::new(fact, anchor_side),
        RoleRef::new(fact, anchor_side.other()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_analyzer::reference::infer;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::DataType;

    fn schema_with_two_reps() -> Schema {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Person").unwrap();
        identify(&mut b, "Person", "SSN", DataType::Char(9)).unwrap();
        b.lot("Full_Name", DataType::Char(60)).unwrap();
        b.fact("named", ("has_name", "Person"), ("name_of", "Full_Name"))
            .unwrap();
        b.unique("named", Side::Left).unwrap();
        b.unique("named", Side::Right).unwrap();
        b.total_role("named", Side::Left).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn smallest_rep_is_default() {
        let s = schema_with_two_reps();
        let a = infer(&s);
        let choice = choose_reps(&s, &a, &MappingOptions::new()).unwrap();
        let p = s.object_type_by_name("Person").unwrap();
        assert_eq!(choice.rep_of(p).unwrap().byte_width(), 9);
    }

    #[test]
    fn override_selects_other_rep() {
        let s = schema_with_two_reps();
        let a = infer(&s);
        let p = s.object_type_by_name("Person").unwrap();
        let choice = choose_reps(&s, &a, &MappingOptions::new().with_lexical(p, 1)).unwrap();
        assert_eq!(choice.rep_of(p).unwrap().byte_width(), 60);
        // Out-of-range override errors.
        assert!(choose_reps(&s, &a, &MappingOptions::new().with_lexical(p, 9)).is_err());
    }

    #[test]
    fn attribute_names_follow_paper_style() {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Program_Paper").unwrap();
        b.lot_nolot("Person", DataType::Char(30)).unwrap();
        b.fact(
            "presented",
            ("presented_by", "Program_Paper"),
            ("presenting", "Person"),
        )
        .unwrap();
        let s = b.finish().unwrap();
        let f = s.fact_type_by_name("presented").unwrap();
        assert_eq!(
            attribute_column_name(&s, RoleRef::new(f, Side::Right)),
            "Person_presenting"
        );
        assert_eq!(
            sublink_is_column_name("Paper_ProgramId"),
            "Paper_ProgramId_Is"
        );
        let pp = s.object_type_by_name("Program_Paper").unwrap();
        assert_eq!(indicator_column_name(&s, pp), "Is_Program_Paper");
    }

    #[test]
    fn dedupe_appends_counters() {
        let used = vec!["A".to_owned(), "A_2".to_owned()];
        assert_eq!(dedupe_name(&used, "A".into()), "A_3");
        assert_eq!(dedupe_name(&used, "B".into()), "B");
    }
}

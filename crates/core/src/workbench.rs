//! The RIDL\* workbench facade: analyse, then map under options and rules.
//!
//! Mirrors the paper's workflow (§3): the schema enters through RIDL-G (here
//! the builder or `ridl-lang`), is validated by RIDL-A, and only a mappable
//! schema reaches RIDL-M. SQL generation (`ridl-sqlgen`) and the engine take
//! the [`crate::MappingOutput`] from here.

use std::fmt::Write as _;
use std::time::Instant;

use ridl_analyzer::{analyze, AnalysisReport};
use ridl_brm::Schema;

use crate::grouping::{map_schema, MapError, MappingOutput};
use crate::map_report::MapReport;
use crate::options::MappingOptions;
use crate::rulebase::{QueryInfo, RuleBase};

/// Where a mapping run spent its effort: phase timings, transformation
/// firings (total and per basic transformation), and the size of the
/// generated schema. Produced by [`Workbench::map_profiled`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapProfile {
    /// Nanoseconds RIDL-A spent analysing the schema (measured when the
    /// workbench opened).
    pub analyze_ns: u64,
    /// Nanoseconds RIDL-M spent mapping.
    pub map_ns: u64,
    /// Basic transformations fired during this mapping run.
    pub transform_firings: u64,
    /// Firings per basic transformation name, sorted by name.
    pub per_rule: Vec<(String, u64)>,
    /// Tables in the generated relational schema.
    pub tables: usize,
    /// Constraints generated alongside them.
    pub constraints: usize,
    /// Lossless rules the transformation composition contributed.
    pub lossless_rules: usize,
}

impl MapProfile {
    /// Renders the profile for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "analyze   : {} ns", self.analyze_ns);
        let _ = writeln!(out, "map       : {} ns", self.map_ns);
        let _ = writeln!(
            out,
            "generated : {} tables, {} constraints, {} lossless rules",
            self.tables, self.constraints, self.lossless_rules
        );
        let _ = writeln!(out, "firings   : {}", self.transform_firings);
        for (name, n) in &self.per_rule {
            let _ = writeln!(out, "  {n:>4} x {name}");
        }
        out
    }
}

/// A workbench session around one binary conceptual schema.
///
/// ```
/// use ridl_brm::builder::{identify, SchemaBuilder};
/// use ridl_brm::DataType;
/// use ridl_core::{MappingOptions, Workbench};
///
/// let mut b = SchemaBuilder::new("demo");
/// b.nolot("Paper").unwrap();
/// identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
/// let wb = Workbench::new(b.finish().unwrap());
/// assert!(wb.analysis().is_mappable());
/// let out = wb.map(&MappingOptions::new()).unwrap();
/// assert_eq!(out.table_count(), 1);
/// assert_eq!(out.rel.tables[0].name, "Paper");
/// ```
pub struct Workbench {
    schema: Schema,
    analysis: AnalysisReport,
    analyze_ns: u64,
}

impl Workbench {
    /// Opens a workbench on a schema, running RIDL-A immediately.
    pub fn new(schema: Schema) -> Self {
        let t = Instant::now();
        let analysis = analyze(&schema);
        let analyze_ns = t.elapsed().as_nanos() as u64;
        Self {
            schema,
            analysis,
            analyze_ns,
        }
    }

    /// The schema under engineering.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The RIDL-A report.
    pub fn analysis(&self) -> &AnalysisReport {
        &self.analysis
    }

    /// Runs RIDL-M under the given options. Fails when RIDL-A found errors
    /// ("we presume the binary schema to be correct and complete … as
    /// ascertained by RIDL-A", §4).
    pub fn map(&self, options: &MappingOptions) -> Result<MappingOutput, MapError> {
        if !self.analysis.is_mappable() {
            let first = self
                .analysis
                .findings()
                .find(|f| f.severity == ridl_analyzer::Severity::Error)
                .expect("not mappable implies an error finding");
            return Err(MapError::new(format!(
                "schema is not mappable; RIDL-A reports: {first}"
            )));
        }
        map_schema(&self.schema, &self.analysis.references, options)
    }

    /// Derives the column-level lineage of a mapping run: every table,
    /// column and constraint of the generated schema attributed to its BRM
    /// sources and the trace steps that produced it.
    pub fn lineage(&self, out: &MappingOutput) -> crate::lineage::Lineage {
        crate::lineage::Lineage::derive(out)
    }

    /// Runs RIDL-M under the given options while profiling it: phase
    /// timings, obs-counted transformation firings (total and per basic
    /// transformation), and the generated schema's size. Temporarily
    /// enables the obs detail gate so per-rule labeled counters fill in.
    pub fn map_profiled(
        &self,
        options: &MappingOptions,
    ) -> Result<(MappingOutput, MapProfile), MapError> {
        let detail_was = ridl_obs::detail_enabled();
        ridl_obs::set_detail(true);
        let before = ridl_obs::snapshot();
        let labels_before: std::collections::BTreeMap<String, u64> =
            ridl_obs::labels_snapshot().into_iter().collect();
        let t = Instant::now();
        let result = self.map(options);
        let map_ns = t.elapsed().as_nanos() as u64;
        let diff = ridl_obs::snapshot().since(&before);
        let per_rule = ridl_obs::labels_snapshot()
            .into_iter()
            .filter(|(name, _)| name.starts_with("transform.rule."))
            .filter_map(|(name, n)| {
                let fired = n - labels_before.get(&name).copied().unwrap_or(0);
                (fired > 0).then(|| (name["transform.rule.".len()..].to_owned(), fired))
            })
            .collect();
        ridl_obs::set_detail(detail_was);
        let out = result?;
        let profile = MapProfile {
            analyze_ns: self.analyze_ns,
            map_ns,
            transform_firings: diff.counter("transform.firings"),
            per_rule,
            tables: out.table_count(),
            constraints: out.rel.constraints.len(),
            lossless_rules: out.trace.lossless_rules().count(),
        };
        Ok((out, profile))
    }

    /// Runs RIDL-M with the rule base deriving option adjustments from
    /// query information first. Returns the output and the rule firing log.
    pub fn map_with_rules(
        &self,
        base: MappingOptions,
        rules: &RuleBase,
        query: &QueryInfo,
    ) -> Result<(MappingOutput, Vec<String>), MapError> {
        let (options, log) =
            rules.derive_options(&self.schema, &self.analysis.references, query, base);
        let out = self.map(&options)?;
        Ok((out, log))
    }

    /// Renders the map report for a mapping produced by this workbench.
    pub fn map_report(&self, out: &MappingOutput) -> MapReport {
        MapReport::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::DataType;

    #[test]
    fn unmappable_schema_is_refused() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("Paper").unwrap(); // no reference scheme
        b.nolot("X").unwrap();
        b.fact("f", ("a", "Paper"), ("b", "X")).unwrap();
        b.unique("f", ridl_brm::Side::Left).unwrap();
        let wb = Workbench::new(b.finish().unwrap());
        assert!(!wb.analysis().is_mappable());
        let err = wb.map(&MappingOptions::new()).unwrap_err();
        assert!(err.message.contains("RIDL-A"), "{err}");
    }

    #[test]
    fn map_profiled_counts_firings() {
        let mut b = SchemaBuilder::new("prof");
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.nolot("Person").unwrap();
        identify(&mut b, "Person", "Name", DataType::Char(20)).unwrap();
        b.fact("presents", ("by", "Person"), ("of", "Paper"))
            .unwrap();
        b.unique("presents", ridl_brm::Side::Right).unwrap();
        let wb = Workbench::new(b.finish().unwrap());
        let (out, profile) = wb.map_profiled(&MappingOptions::new()).unwrap();
        assert_eq!(profile.tables, out.table_count());
        assert_eq!(profile.constraints, out.rel.constraints.len());
        // `>=`: the firings counter is process-wide, so concurrent tests
        // mapping at the same time may add to the window.
        let steps = out.trace.steps().len() as u64;
        assert!(
            profile.transform_firings >= steps,
            "one firing per trace step ({} < {steps})",
            profile.transform_firings
        );
        let per_rule_total: u64 = profile.per_rule.iter().map(|(_, n)| n).sum();
        assert!(per_rule_total >= steps);
        let r = profile.render();
        assert!(r.contains("firings"), "{r}");
    }

    #[test]
    fn clean_schema_maps() {
        let mut b = SchemaBuilder::new("ok");
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        let wb = Workbench::new(b.finish().unwrap());
        assert!(wb.analysis().is_mappable());
        let out = wb.map(&MappingOptions::new()).unwrap();
        assert_eq!(out.table_count(), 1);
        let report = wb.map_report(&out);
        assert!(report.forwards.contains("NOLOT Paper"));
        assert!(report.backwards.contains("TABLE Paper"));
    }
}

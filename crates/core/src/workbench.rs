//! The RIDL\* workbench facade: analyse, then map under options and rules.
//!
//! Mirrors the paper's workflow (§3): the schema enters through RIDL-G (here
//! the builder or `ridl-lang`), is validated by RIDL-A, and only a mappable
//! schema reaches RIDL-M. SQL generation (`ridl-sqlgen`) and the engine take
//! the [`crate::MappingOutput`] from here.

use ridl_analyzer::{analyze, AnalysisReport};
use ridl_brm::Schema;

use crate::grouping::{map_schema, MapError, MappingOutput};
use crate::map_report::MapReport;
use crate::options::MappingOptions;
use crate::rulebase::{QueryInfo, RuleBase};

/// A workbench session around one binary conceptual schema.
///
/// ```
/// use ridl_brm::builder::{identify, SchemaBuilder};
/// use ridl_brm::DataType;
/// use ridl_core::{MappingOptions, Workbench};
///
/// let mut b = SchemaBuilder::new("demo");
/// b.nolot("Paper").unwrap();
/// identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
/// let wb = Workbench::new(b.finish().unwrap());
/// assert!(wb.analysis().is_mappable());
/// let out = wb.map(&MappingOptions::new()).unwrap();
/// assert_eq!(out.table_count(), 1);
/// assert_eq!(out.rel.tables[0].name, "Paper");
/// ```
pub struct Workbench {
    schema: Schema,
    analysis: AnalysisReport,
}

impl Workbench {
    /// Opens a workbench on a schema, running RIDL-A immediately.
    pub fn new(schema: Schema) -> Self {
        let analysis = analyze(&schema);
        Self { schema, analysis }
    }

    /// The schema under engineering.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The RIDL-A report.
    pub fn analysis(&self) -> &AnalysisReport {
        &self.analysis
    }

    /// Runs RIDL-M under the given options. Fails when RIDL-A found errors
    /// ("we presume the binary schema to be correct and complete … as
    /// ascertained by RIDL-A", §4).
    pub fn map(&self, options: &MappingOptions) -> Result<MappingOutput, MapError> {
        if !self.analysis.is_mappable() {
            let first = self
                .analysis
                .findings()
                .find(|f| f.severity == ridl_analyzer::Severity::Error)
                .expect("not mappable implies an error finding");
            return Err(MapError::new(format!(
                "schema is not mappable; RIDL-A reports: {first}"
            )));
        }
        map_schema(&self.schema, &self.analysis.references, options)
    }

    /// Runs RIDL-M with the rule base deriving option adjustments from
    /// query information first. Returns the output and the rule firing log.
    pub fn map_with_rules(
        &self,
        base: MappingOptions,
        rules: &RuleBase,
        query: &QueryInfo,
    ) -> Result<(MappingOutput, Vec<String>), MapError> {
        let (options, log) =
            rules.derive_options(&self.schema, &self.analysis.references, query, base);
        let out = self.map(&options)?;
        Ok((out, log))
    }

    /// Renders the map report for a mapping produced by this workbench.
    pub fn map_report(&self, out: &MappingOutput) -> MapReport {
        MapReport::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::DataType;

    #[test]
    fn unmappable_schema_is_refused() {
        let mut b = SchemaBuilder::new("bad");
        b.nolot("Paper").unwrap(); // no reference scheme
        b.nolot("X").unwrap();
        b.fact("f", ("a", "Paper"), ("b", "X")).unwrap();
        b.unique("f", ridl_brm::Side::Left).unwrap();
        let wb = Workbench::new(b.finish().unwrap());
        assert!(!wb.analysis().is_mappable());
        let err = wb.map(&MappingOptions::new()).unwrap_err();
        assert!(err.message.contains("RIDL-A"), "{err}");
    }

    #[test]
    fn clean_schema_maps() {
        let mut b = SchemaBuilder::new("ok");
        b.nolot("Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        let wb = Workbench::new(b.finish().unwrap());
        assert!(wb.analysis().is_mappable());
        let out = wb.map(&MappingOptions::new()).unwrap();
        assert_eq!(out.table_count(), 1);
        let report = wb.map_report(&out);
        assert!(report.forwards.contains("NOLOT Paper"));
        assert!(report.backwards.contains("TABLE Paper"));
    }
}

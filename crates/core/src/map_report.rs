//! The map report (§4.3): "a detailed … report \[that\] describes the
//! complete cross-reference link (in both directions) between the
//! conceptual binary schema and the generated relational schema."
//!
//! * the **forwards map** tells how each binary concept (LOTs, NOLOTs,
//!   facts, roles, sublinks and constraints) is expressed in the relational
//!   schema — each fact's entry is an executable SELECT, as in the paper's
//!   fragment 1;
//! * the **backwards map** tells, for each relational concept (domain,
//!   relation, attribute, constraint), the binary concepts it derives from
//!   (fragment 2).
//!
//! "The map report is essential for application programmers … And this
//! forwards map will also play a key role in ultimately *compiling*
//! high-level process specifications into relational application programs."
//! `ridl-engine` executes the forward SELECTs directly, closing that loop.

use ridl_brm::{ObjectTypeKind, Schema, Side};
use ridl_relational::{ColumnSelection, RelSchema};

use crate::grouping::{ConstraintMapping, FactRealization, MappingOutput, SubMembership};

/// The rendered map report.
#[derive(Clone, Debug)]
pub struct MapReport {
    /// The forwards map text.
    pub forwards: String,
    /// The backwards map text.
    pub backwards: String,
}

const RULE: &str = "--------------------------------------------------------------------------\n";

/// Renders a column selection in the paper's SELECT style.
pub fn render_selection(rel: &RelSchema, sel: &ColumnSelection) -> String {
    let table = rel.table(sel.table);
    let cols: Vec<&str> = sel
        .cols
        .iter()
        .map(|c| table.column(*c).name.as_str())
        .collect();
    let mut s = format!("SELECT {}\n    FROM {}", cols.join(" , "), table.name);
    let mut conds: Vec<String> = sel
        .not_null
        .iter()
        .map(|c| format!("( {} IS NOT NULL )", table.column(*c).name))
        .collect();
    conds.extend(
        sel.eq
            .iter()
            .map(|(c, v)| format!("( {} = {} )", table.column(*c).name, v)),
    );
    if !conds.is_empty() {
        s.push_str(&format!("\n    WHERE {}", conds.join(" AND ")));
    }
    s
}

pub(crate) fn ot_kind_word(kind: ObjectTypeKind) -> &'static str {
    match kind {
        ObjectTypeKind::Lot(_) => "LOT",
        ObjectTypeKind::Nolot => "NOLOT",
        ObjectTypeKind::LotNolot(_) => "LOT-NOLOT",
    }
}

/// The paper's fact description:
/// `FACT WITH ROLE r1 ON NOLOT A AND ROLE r2 ON LOT B`.
pub fn describe_fact(schema: &Schema, fid: ridl_brm::FactTypeId) -> String {
    let ft = schema.fact_type(fid);
    let part = |side: Side| {
        let role = ft.role(side);
        let kind = ot_kind_word(schema.kind_of(role.player));
        if role.name.is_empty() {
            format!("ROLE ON {kind} {}", schema.ot_name(role.player))
        } else {
            format!(
                "ROLE {} ON {kind} {}",
                role.name,
                schema.ot_name(role.player)
            )
        }
    };
    format!("FACT WITH {} AND {}", part(Side::Left), part(Side::Right))
}

pub(crate) fn describe_sublink(schema: &Schema, sid: ridl_brm::SublinkId) -> String {
    let sl = schema.sublink(sid);
    format!(
        "SUBLINK IS FROM NOLOT {} TO NOLOT {}",
        schema.ot_name(sl.sub),
        schema.ot_name(sl.sup)
    )
}

pub(crate) fn describe_constraint(schema: &Schema, cid: ridl_brm::ConstraintId) -> String {
    let c = schema.constraint(cid);
    let roles = c.kind.referenced_roles();
    let role_list: Vec<String> = roles.iter().map(|r| schema.role_display(*r)).collect();
    if role_list.is_empty() {
        format!("{} {cid}", c.kind.keyword())
    } else {
        format!("{} : {}", c.kind.keyword(), role_list.join(" AND "))
    }
}

impl MapReport {
    /// Builds both report directions from a mapping output.
    pub fn new(out: &MappingOutput) -> Self {
        Self {
            forwards: forwards(out),
            backwards: backwards(out),
        }
    }
}

fn forwards(out: &MappingOutput) -> String {
    let schema = &out.schema;
    let rel = &out.rel;
    let mut s = String::from("FORWARDS MAP\n");
    s.push_str(RULE);

    // Object types.
    for (oid, ot) in schema.object_types() {
        s.push_str(&format!(
            "{} {}\n    MAPPED TO\n",
            ot_kind_word(ot.kind),
            ot.name
        ));
        match out.anchor_of(oid) {
            Some(a) => {
                let sel = ColumnSelection::of(a.table, a.key_cols.clone());
                s.push_str(&format!(
                    "    {}\n",
                    render_selection(rel, &sel).replace('\n', "\n    ")
                ));
            }
            None => {
                // Attribute-like or absorbed: population is derived.
                let cols: Vec<String> = out
                    .col_sources
                    .iter()
                    .filter(|(_, lot)| **lot == oid)
                    .map(|((t, c), _)| {
                        format!(
                            "{}.{}",
                            rel.table(ridl_relational::TableId(*t)).name,
                            rel.table(ridl_relational::TableId(*t)).column(*c).name
                        )
                    })
                    .collect();
                if cols.is_empty() {
                    s.push_str("    (population not stored)\n");
                } else {
                    let mut cols = cols;
                    cols.sort();
                    s.push_str(&format!("    VALUES OCCURRING IN {}\n", cols.join(" , ")));
                }
            }
        }
        s.push_str(RULE);
    }

    // Facts.
    for (fid, _) in schema.fact_types() {
        s.push_str(&format!("{}\n    MAPPED TO\n", describe_fact(schema, fid)));
        match out.realization(fid) {
            FactRealization::Omitted => s.push_str("    (omitted by option)\n"),
            FactRealization::KeyOf { table, cols, .. } => {
                let info = &out.anchors[&key_anchor(out, fid)];
                let mut sel_cols = info.key_cols.clone();
                for c in cols {
                    if !sel_cols.contains(c) {
                        sel_cols.push(*c);
                    }
                }
                let sel = ColumnSelection::of(*table, sel_cols);
                s.push_str(&format!(
                    "    {}\n",
                    render_selection(rel, &sel).replace('\n', "\n    ")
                ));
            }
            FactRealization::Attribute {
                table,
                key_cols,
                value_cols,
                optional,
                ..
            } => {
                let mut cols = key_cols.clone();
                cols.extend(value_cols);
                let mut sel = ColumnSelection::of(*table, cols);
                if *optional {
                    sel = sel.where_not_null(value_cols.clone());
                }
                s.push_str(&format!(
                    "    {}\n",
                    render_selection(rel, &sel).replace('\n', "\n    ")
                ));
            }
            FactRealization::OwnTable {
                table,
                left_cols,
                right_cols,
            } => {
                let mut cols = left_cols.clone();
                cols.extend(right_cols);
                let sel = ColumnSelection::of(*table, cols);
                s.push_str(&format!(
                    "    {}\n",
                    render_selection(rel, &sel).replace('\n', "\n    ")
                ));
            }
        }
        s.push_str(RULE);
    }

    // Sublinks.
    for (sid, sl) in schema.sublinks() {
        s.push_str(&format!(
            "{}\n    MAPPED TO\n",
            describe_sublink(schema, sid)
        ));
        match &out.sub_memb[sid.index()] {
            None => s.push_str("    (membership unrepresented)\n"),
            Some(m) => {
                if let Some(sel) = out.membership_selection(schema, sid) {
                    s.push_str(&format!(
                        "    {}\n",
                        render_selection(rel, &sel).replace('\n', "\n    ")
                    ));
                }
                if let SubMembership::OwnKeyLinked {
                    super_table,
                    is_cols,
                    ..
                } = m
                {
                    // The paper shows the `_Is` pairing select.
                    let sup_host = out.host_of(sl.sup);
                    if let Some(a) = out.anchor_of(sup_host) {
                        let mut cols = is_cols.clone();
                        cols.extend(&a.key_cols);
                        let sel =
                            ColumnSelection::of(*super_table, cols).where_not_null(is_cols.clone());
                        s.push_str(&format!(
                            "    PAIRED BY\n    {}\n",
                            render_selection(rel, &sel).replace('\n', "\n    ")
                        ));
                    }
                }
            }
        }
        s.push_str(RULE);
    }

    // Constraints.
    for (cid, _) in schema.constraints() {
        s.push_str(&format!(
            "{}\n    MAPPED TO\n",
            describe_constraint(schema, cid)
        ));
        match &out.constraint_map[cid.index()] {
            ConstraintMapping::Relational(names) => {
                for n in names {
                    s.push_str(&format!("    CONSTRAINT {n}\n"));
                }
            }
            ConstraintMapping::Absorbed(why) => s.push_str(&format!("    (absorbed: {why})\n")),
            ConstraintMapping::Unexpressed(why) => {
                s.push_str(&format!("    (NOT EXPRESSED: {why})\n"))
            }
        }
        s.push_str(RULE);
    }
    s
}

fn key_anchor(out: &MappingOutput, fid: ridl_brm::FactTypeId) -> u32 {
    match out.realization(fid) {
        FactRealization::KeyOf { anchor, .. } => anchor.raw(),
        _ => unreachable!("caller checked realization"),
    }
}

fn backwards(out: &MappingOutput) -> String {
    let schema = &out.schema;
    let rel = &out.rel;
    let mut s = String::from("BACKWARDS MAP\n");
    s.push_str(RULE);

    for (tid, table) in rel.tables() {
        // Table derivation: every fact/sublink realised in it.
        s.push_str(&format!("TABLE {}\n    DERIVED FROM\n", table.name));
        for (oid, _) in schema.object_types() {
            if out.anchor_of(oid).map(|a| a.table) == Some(tid) {
                s.push_str(&format!(
                    "    {} {}\n",
                    ot_kind_word(schema.kind_of(oid)),
                    schema.ot_name(oid)
                ));
            }
        }
        for (fid, _) in schema.fact_types() {
            let touches = match out.realization(fid) {
                FactRealization::KeyOf { table: t, .. }
                | FactRealization::Attribute { table: t, .. }
                | FactRealization::OwnTable { table: t, .. } => *t == tid,
                FactRealization::Omitted => false,
            };
            if touches {
                s.push_str(&format!("    {} ,\n", describe_fact(schema, fid)));
            }
        }
        for (sid, _) in schema.sublinks() {
            let touches = match &out.sub_memb[sid.index()] {
                Some(SubMembership::SubRelation { table, .. }) => *table == tid,
                Some(SubMembership::OwnKeyLinked {
                    table, super_table, ..
                }) => *table == tid || *super_table == tid,
                Some(SubMembership::LinkTable {
                    table, link_table, ..
                }) => *table == tid || *link_table == tid,
                Some(SubMembership::AbsorbedColumns { table, .. }) => *table == tid,
                Some(SubMembership::Indicator { table, .. }) => *table == tid,
                None => false,
            };
            if touches {
                s.push_str(&format!("    {} ,\n", describe_sublink(schema, sid)));
            }
        }
        s.push_str(RULE);

        // Column derivations.
        for (ci, col) in table.columns.iter().enumerate() {
            let ci = ci as u32;
            s.push_str(&format!(
                "COLUMN {} IN TABLE {}\n    DERIVED FROM\n",
                col.name, table.name
            ));
            let mut any = false;
            if let Some(lot) = out.col_sources.get(&(tid.0, ci)) {
                s.push_str(&format!(
                    "    {} {} ,\n",
                    ot_kind_word(schema.kind_of(*lot)),
                    schema.ot_name(*lot)
                ));
                any = true;
            }
            for (fid, _) in schema.fact_types() {
                let uses = match out.realization(fid) {
                    FactRealization::KeyOf { table: t, cols, .. } => {
                        *t == tid && cols.contains(&ci)
                    }
                    FactRealization::Attribute {
                        table: t,
                        value_cols,
                        ..
                    } => *t == tid && value_cols.contains(&ci),
                    FactRealization::OwnTable {
                        table: t,
                        left_cols,
                        right_cols,
                    } => *t == tid && (left_cols.contains(&ci) || right_cols.contains(&ci)),
                    FactRealization::Omitted => false,
                };
                if uses {
                    s.push_str(&format!("    {} ,\n", describe_fact(schema, fid)));
                    any = true;
                }
            }
            for (sid, _) in schema.sublinks() {
                let uses = match &out.sub_memb[sid.index()] {
                    Some(SubMembership::LinkTable { link_table, .. }) => *link_table == tid,
                    Some(SubMembership::OwnKeyLinked {
                        super_table,
                        is_cols,
                        ..
                    }) => *super_table == tid && is_cols.contains(&ci),
                    Some(SubMembership::Indicator { table, col, .. }) => {
                        *table == tid && *col == ci
                    }
                    _ => false,
                };
                if uses {
                    s.push_str(&format!("    {} ,\n", describe_sublink(schema, sid)));
                    any = true;
                }
            }
            if !any {
                s.push_str("    (structural)\n");
            }
            s.push_str(RULE);
        }
    }

    // Relational constraints back to binary concepts.
    for rc in &rel.constraints {
        s.push_str(&format!("CONSTRAINT {}\n    DERIVED FROM\n", rc.name));
        let mut any = false;
        for (cid, _) in schema.constraints() {
            if let ConstraintMapping::Relational(names) = &out.constraint_map[cid.index()] {
                if names.contains(&rc.name) {
                    s.push_str(&format!("    {}\n", describe_constraint(schema, cid)));
                    any = true;
                }
            }
        }
        if !any {
            // Structural constraints: find the trace step that produced it.
            for step in out.trace.steps() {
                if step.lossless_rules.iter().any(|r| r == &rc.name) {
                    s.push_str(&format!("    {} AT {}\n", step.name, step.site));
                    any = true;
                }
            }
        }
        if !any {
            s.push_str("    (structural, from the grouping synthesis)\n");
        }
        s.push_str(RULE);
    }
    s
}

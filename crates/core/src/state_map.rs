//! The executable schema transformation `g : STATES(S1) → STATES(S2)` and
//! its inverse (§4.1, Definitions 1–2).
//!
//! [`map_population`] realises `g`: a population of the binary schema
//! becomes a state of the generated relational schema. [`unmap_state`] is
//! `g⁻¹`. Because entity surrogates "never appear in the generated
//! relational schema" (§4.2.3), the inverse reconstructs entities from
//! their lexical reference values; round trips therefore agree *up to
//! entity renaming*, and [`equivalent`] compares populations modulo that
//! renaming. The property tests over these functions are this
//! reproduction's stand-in for the paper's (promised but unpublished)
//! losslessness proofs.

use std::collections::HashMap;

use ridl_analyzer::LexicalRep;
use ridl_brm::{EntityId, ObjectTypeId, Population, Schema, Side, Value};
use ridl_relational::{RelState, Row};

use crate::grouping::{FactRealization, MapError, MappingOutput, SubMembership};

/// Resolves the lexical reference tuple of a value under a representation.
///
/// For each atom the hops are followed through the population; every hop
/// must be single-valued (guaranteed by the uniqueness constraints when the
/// population is a model of the schema).
pub fn rep_tuple(
    schema: &Schema,
    pop: &Population,
    rep: &LexicalRep,
    start: &Value,
) -> Result<Vec<Value>, MapError> {
    let mut out = Vec::with_capacity(rep.atoms.len());
    for atom in &rep.atoms {
        let mut cur = start.clone();
        for hop in &atom.path {
            let imgs = pop.co_values(*hop, &cur);
            match imgs.len() {
                1 => cur = imgs.into_iter().next().expect("len checked"),
                0 => {
                    return Err(MapError::new(format!(
                        "{cur} has no image through {} while resolving the reference of {}",
                        schema.fact_type(hop.fact).name,
                        schema.ot_name(rep.owner)
                    )))
                }
                _ => {
                    return Err(MapError::new(format!(
                        "{cur} has several images through {}; reference not functional",
                        schema.fact_type(hop.fact).name
                    )))
                }
            }
        }
        if !cur.is_lexical() {
            return Err(MapError::new(format!(
                "reference of {} resolves to non-lexical {cur}",
                schema.ot_name(rep.owner)
            )));
        }
        out.push(cur);
    }
    Ok(out)
}

fn encode_value(
    schema: &Schema,
    out: &MappingOutput,
    pop: &Population,
    player: ObjectTypeId,
    v: &Value,
) -> Result<Vec<Value>, MapError> {
    if v.is_lexical() {
        return Ok(vec![v.clone()]);
    }
    let host = out.host_of(player);
    let rep = out
        .choice
        .rep_of(host)
        .ok_or_else(|| MapError::new(format!("no representation for {}", schema.ot_name(host))))?;
    rep_tuple(schema, pop, rep, v)
}

/// The forward state map `g`.
pub fn map_population(
    schema: &Schema,
    out: &MappingOutput,
    pop: &Population,
) -> Result<RelState, MapError> {
    let mut st = RelState::with_tables(out.rel.tables.len());
    // Row skeletons per anchored entity, keyed by (table raw, entity).
    let mut rows: HashMap<(u32, Value), Row> = HashMap::new();
    for (ot_raw, info) in &out.anchors {
        let ot = ObjectTypeId::from_raw(*ot_raw);
        let arity = out.rel.table(info.table).arity();
        for e in pop.objects_of(ot) {
            let mut row = vec![None; arity];
            if let Some(rep) = out.choice.rep_of(ot) {
                let key = rep_tuple(schema, pop, rep, e)?;
                for (col, val) in info.key_cols.iter().zip(key) {
                    row[*col as usize] = Some(val);
                }
            }
            // Partial-reference anchors (NULL ALLOWED) are keyed through
            // their KeyOf realisations below.
            rows.insert((info.table.0, e.clone()), row);
        }
    }

    // Fill columns from fact realisations.
    for (fid, ft) in schema.fact_types() {
        match out.realization(fid) {
            FactRealization::Omitted => {}
            FactRealization::KeyOf {
                table,
                anchor,
                anchor_side,
                cols,
            } => {
                // Key columns were placed from the rep; partial anchors
                // (rep-less) fill them here from the fact itself.
                if out.choice.rep_of(*anchor).is_some() {
                    continue;
                }
                for (l, r) in pop.facts_of(fid) {
                    let (e, v) = match anchor_side {
                        Side::Left => (l, r),
                        Side::Right => (r, l),
                    };
                    if let Some(row) = rows.get_mut(&(table.0, e.clone())) {
                        row[cols[0] as usize] = Some(v.clone());
                    }
                }
            }
            FactRealization::Attribute {
                table,
                anchor_side,
                value_cols,
                ..
            } => {
                let value_player = ft.player(anchor_side.other());
                for (l, r) in pop.facts_of(fid) {
                    let (e, v) = match anchor_side {
                        Side::Left => (l, r),
                        Side::Right => (r, l),
                    };
                    let encoded = encode_value(schema, out, pop, value_player, v)?;
                    let Some(row) = rows.get_mut(&(table.0, e.clone())) else {
                        return Err(MapError::new(format!(
                            "fact {}: {e} has no anchor row",
                            ft.name
                        )));
                    };
                    for (col, val) in value_cols.iter().zip(encoded) {
                        row[*col as usize] = Some(val);
                    }
                }
            }
            FactRealization::OwnTable {
                table,
                left_cols,
                right_cols,
            } => {
                let arity = out.rel.table(*table).arity();
                for (l, r) in pop.facts_of(fid) {
                    let mut row = vec![None; arity];
                    let le = encode_value(schema, out, pop, ft.player(Side::Left), l)?;
                    let re = encode_value(schema, out, pop, ft.player(Side::Right), r)?;
                    for (col, val) in left_cols.iter().zip(le) {
                        row[*col as usize] = Some(val);
                    }
                    for (col, val) in right_cols.iter().zip(re) {
                        row[*col as usize] = Some(val);
                    }
                    st.insert(*table, row);
                }
            }
        }
    }

    // Sublink memberships.
    for (sid, sl) in schema.sublinks() {
        let Some(memb) = &out.sub_memb[sid.index()] else {
            continue;
        };
        fill_membership(schema, out, pop, sl.sub, memb, &mut rows)?;
    }

    for ((traw, _), row) in rows {
        st.insert(ridl_relational::TableId(traw), row);
    }

    // Fill the denormalised duplicate columns (combine directives): for a
    // row whose determinant is set, copy the target row's source values.
    for rec in &out.combines {
        let target_rows: Vec<Row> = st.rows(rec.target_table).iter().cloned().collect();
        let source_rows: Vec<Row> = st.rows(rec.table).iter().cloned().collect();
        for row in source_rows {
            let det: Option<Vec<Value>> = rec
                .det_cols
                .iter()
                .map(|c| row[*c as usize].clone())
                .collect();
            let Some(det) = det else { continue };
            let target = target_rows.iter().find(|t| {
                rec.target_key_cols
                    .iter()
                    .zip(det.iter())
                    .all(|(c, v)| t[*c as usize].as_ref() == Some(v))
            });
            let Some(target) = target else { continue };
            let mut filled = row.clone();
            for (dup, src) in rec.dup_cols.iter().zip(&rec.target_src_cols) {
                filled[*dup as usize] = target[*src as usize].clone();
            }
            if filled != row {
                st.remove(rec.table, &row);
                st.insert(rec.table, filled);
            }
        }
    }
    Ok(st)
}

fn fill_membership(
    schema: &Schema,
    out: &MappingOutput,
    pop: &Population,
    sub: ObjectTypeId,
    memb: &SubMembership,
    rows: &mut HashMap<(u32, Value), Row>,
) -> Result<(), MapError> {
    match memb {
        SubMembership::SubRelation { .. } | SubMembership::AbsorbedColumns { .. } => {
            // Row presence / absorbed columns already realised.
            Ok(())
        }
        SubMembership::LinkTable {
            link_table,
            link_sub_cols,
            link_sup_cols,
            ..
        } => {
            // One link row per subtype instance, pairing both keys. The
            // link rows live outside the anchor-row map; emit directly is
            // not possible here, so stash them as extra rows keyed by a
            // synthetic entity (the subtype instance itself).
            let sub_rep = out
                .choice
                .rep_of(sub)
                .ok_or_else(|| MapError::new("link-table subtype without representation"))?;
            let sup = schema
                .supertypes_of(sub)
                .into_iter()
                .next()
                .ok_or_else(|| MapError::new("link-table subtype without supertype"))?;
            let sup_rep = out
                .choice
                .rep_of(out.host_of(sup))
                .ok_or_else(|| MapError::new("link-table supertype without representation"))?;
            let arity = out.rel.table(*link_table).arity();
            for e in pop.objects_of(sub) {
                let sub_key = rep_tuple(schema, pop, sub_rep, e)?;
                let sup_key = rep_tuple(schema, pop, sup_rep, e)?;
                let mut row = vec![None; arity];
                for (c, v) in link_sub_cols.iter().zip(sub_key) {
                    row[*c as usize] = Some(v);
                }
                for (c, v) in link_sup_cols.iter().zip(sup_key) {
                    row[*c as usize] = Some(v);
                }
                rows.insert((link_table.0, e.clone()), row);
            }
            Ok(())
        }
        SubMembership::OwnKeyLinked {
            super_table,
            is_cols,
            ..
        } => {
            let rep = out
                .choice
                .rep_of(sub)
                .ok_or_else(|| MapError::new("own-key subtype without representation"))?;
            for e in pop.objects_of(sub) {
                let key = rep_tuple(schema, pop, rep, e)?;
                let Some(row) = rows.get_mut(&(super_table.0, e.clone())) else {
                    return Err(MapError::new(format!(
                        "{e} of {} has no super-relation row",
                        schema.ot_name(sub)
                    )));
                };
                for (col, val) in is_cols.iter().zip(key) {
                    row[*col as usize] = Some(val);
                }
            }
            Ok(())
        }
        SubMembership::Indicator {
            table,
            col,
            sub: inner,
        } => {
            // Every super-relation row gets the flag.
            let members = pop.objects_of(sub);
            for ((traw, e), row) in rows.iter_mut() {
                if *traw == table.0 {
                    row[*col as usize] = Some(Value::Bool(members.contains(e)));
                }
            }
            if let Some(inner) = inner {
                fill_membership(schema, out, pop, sub, inner, rows)?;
            }
            Ok(())
        }
    }
}

/// The inverse state map `g⁻¹`: reconstructs a population, inventing fresh
/// entity surrogates keyed by lexical reference tuples.
pub fn unmap_state(
    schema: &Schema,
    out: &MappingOutput,
    st: &RelState,
) -> Result<Population, MapError> {
    let mut pop = Population::new();
    let mut next: u64 = 1;
    // (host ot raw, key tuple) -> entity value
    let mut registry: HashMap<(u32, Vec<Value>), Value> = HashMap::new();

    // Depth in the sublink graph, for supertype-first ordering.
    let depth = |ot: ObjectTypeId| schema.ancestors_of(ot).len();
    let mut anchor_order: Vec<(u32, &crate::grouping::AnchorInfo)> =
        out.anchors.iter().map(|(k, v)| (*k, v)).collect();
    anchor_order.sort_by_key(|(ot, _)| (depth(ObjectTypeId::from_raw(*ot)), *ot));

    // 1. Entities per anchor row.
    for (ot_raw, info) in &anchor_order {
        let ot = ObjectTypeId::from_raw(*ot_raw);
        let is_subtype = !schema.supertypes_of(ot).is_empty();
        for row in st.rows(info.table) {
            let key: Option<Vec<Value>> = info
                .key_cols
                .iter()
                .map(|c| row[*c as usize].clone())
                .collect();
            let Some(key) = key else {
                // Partial-reference rows (NULL ALLOWED) may be partly null;
                // identify them by the full nullable tuple.
                let raw_key: Vec<Value> = info
                    .key_cols
                    .iter()
                    .map(|c| row[*c as usize].clone().unwrap_or(Value::Bool(false)))
                    .collect();
                let e = registry
                    .entry((*ot_raw, raw_key))
                    .or_insert_with(|| {
                        let e = Value::Entity(EntityId(next));
                        next += 1;
                        e
                    })
                    .clone();
                pop.add_object(ot, e);
                continue;
            };
            let e = if is_subtype {
                // Resolve against the supertype's registered entity.
                resolve_subtype_entity(schema, out, st, ot, &key, row, &registry).unwrap_or_else(
                    || {
                        let e = Value::Entity(EntityId(next));
                        next += 1;
                        e
                    },
                )
            } else {
                let e = Value::Entity(EntityId(next));
                next += 1;
                e
            };
            registry.entry((*ot_raw, key)).or_insert_with(|| e.clone());
            pop.add_object(ot, e.clone());
            // Subtype entities are also supertype instances.
            for anc in schema.ancestors_of(ot) {
                pop.add_object(anc, e.clone());
            }
        }
    }

    // 2. Memberships without their own relation.
    for (sid, sl) in schema.sublinks() {
        let Some(memb) = &out.sub_memb[sid.index()] else {
            continue;
        };
        let sup_host = out.host_of(sl.sup);
        let Some(sup_anchor) = out.anchor_of(sup_host) else {
            continue;
        };
        let collect = |filter: &dyn Fn(&Row) -> bool, pop: &mut Population| {
            for row in st.rows(sup_anchor.table) {
                if !filter(row) {
                    continue;
                }
                let key: Option<Vec<Value>> = sup_anchor
                    .key_cols
                    .iter()
                    .map(|c| row[*c as usize].clone())
                    .collect();
                if let Some(key) = key {
                    if let Some(e) = registry.get(&(sup_host.raw(), key)) {
                        pop.add_object(sl.sub, e.clone());
                    }
                }
            }
        };
        match memb {
            SubMembership::AbsorbedColumns { mandatory_cols, .. } => {
                let mc = mandatory_cols.clone();
                collect(
                    &|row| mc.iter().all(|c| row[*c as usize].is_some()),
                    &mut pop,
                );
            }
            SubMembership::Indicator {
                col, sub: inner, ..
            } if inner.is_none() => {
                let c = *col;
                collect(&|row| row[c as usize] == Some(Value::Bool(true)), &mut pop);
            }
            _ => {}
        }
    }

    // 3. Decode facts.
    for (fid, ft) in schema.fact_types() {
        match out.realization(fid) {
            FactRealization::Omitted => {}
            FactRealization::KeyOf {
                table,
                anchor,
                anchor_side,
                cols,
            } => {
                let info = out.anchor_of(*anchor).expect("key fact implies anchor");
                let hop_co_player = ft.player(anchor_side.other());
                for row in st.rows(*table) {
                    let Some(e) = row_entity(&registry, anchor.raw(), info, row) else {
                        continue;
                    };
                    let vals: Option<Vec<Value>> =
                        cols.iter().map(|c| row[*c as usize].clone()).collect();
                    let Some(vals) = vals else { continue };
                    let v = if schema.kind_of(hop_co_player).data_type().is_some() {
                        vals[0].clone()
                    } else {
                        // Multi-hop reference: the columns are the
                        // intermediate entity's own reference tuple.
                        lookup_or_fresh(
                            &mut registry,
                            &mut next,
                            registry_anchor(schema, out, hop_co_player),
                            vals,
                            &mut pop,
                            hop_co_player,
                            schema,
                        )
                    };
                    add_fact_oriented(&mut pop, schema, fid, *anchor_side, e, v);
                }
            }
            FactRealization::Attribute {
                table,
                anchor,
                anchor_side,
                value_cols,
                ..
            } => {
                let info = out.anchor_of(*anchor).expect("attribute implies anchor");
                let value_player = ft.player(anchor_side.other());
                for row in st.rows(*table) {
                    let Some(e) = row_entity(&registry, anchor.raw(), info, row) else {
                        continue;
                    };
                    let vals: Option<Vec<Value>> = value_cols
                        .iter()
                        .map(|c| row[*c as usize].clone())
                        .collect();
                    let Some(vals) = vals else { continue };
                    let v = decode_value(
                        schema,
                        out,
                        &mut registry,
                        &mut next,
                        &mut pop,
                        value_player,
                        vals,
                    );
                    add_fact_oriented(&mut pop, schema, fid, *anchor_side, e, v);
                }
            }
            FactRealization::OwnTable {
                table,
                left_cols,
                right_cols,
            } => {
                for row in st.rows(*table) {
                    let lv: Option<Vec<Value>> =
                        left_cols.iter().map(|c| row[*c as usize].clone()).collect();
                    let rv: Option<Vec<Value>> = right_cols
                        .iter()
                        .map(|c| row[*c as usize].clone())
                        .collect();
                    let (Some(lv), Some(rv)) = (lv, rv) else {
                        continue;
                    };
                    let l = decode_value(
                        schema,
                        out,
                        &mut registry,
                        &mut next,
                        &mut pop,
                        ft.player(Side::Left),
                        lv,
                    );
                    let r = decode_value(
                        schema,
                        out,
                        &mut registry,
                        &mut next,
                        &mut pop,
                        ft.player(Side::Right),
                        rv,
                    );
                    pop.add_fact_closed(schema, fid, l, r);
                }
            }
        }
    }
    Ok(pop)
}

/// Finds the supertype entity corresponding to a subtype-relation row.
///
/// Same reference scheme: the sub's key equals the super's key. Own scheme
/// (`OwnKeyLinked`): locate the super row whose `_Is` columns equal the
/// sub's key and take its key.
fn resolve_subtype_entity(
    schema: &Schema,
    out: &MappingOutput,
    st: &RelState,
    sub: ObjectTypeId,
    key: &[Value],
    _row: &Row,
    registry: &HashMap<(u32, Vec<Value>), Value>,
) -> Option<Value> {
    for (sid, sl) in schema.sublinks() {
        if sl.sub != sub {
            continue;
        }
        let sup_host = out.host_of(sl.sup);
        let sup_anchor = out.anchor_of(sup_host)?;
        let memb = out.sub_memb[sid.index()].as_ref()?;
        let memb = match memb {
            SubMembership::Indicator {
                sub: Some(inner), ..
            } => inner.as_ref(),
            other => other,
        };
        match memb {
            SubMembership::SubRelation { .. } => {
                if let Some(e) = registry.get(&(sup_host.raw(), key.to_vec())) {
                    return Some(e.clone());
                }
            }
            SubMembership::LinkTable {
                link_table,
                link_sub_cols,
                link_sup_cols,
                ..
            } => {
                for lrow in st.rows(*link_table) {
                    let sub_vals: Option<Vec<Value>> = link_sub_cols
                        .iter()
                        .map(|c| lrow[*c as usize].clone())
                        .collect();
                    if sub_vals.as_deref() == Some(key) {
                        let sup_key: Option<Vec<Value>> = link_sup_cols
                            .iter()
                            .map(|c| lrow[*c as usize].clone())
                            .collect();
                        if let Some(sup_key) = sup_key {
                            if let Some(e) = registry.get(&(sup_host.raw(), sup_key)) {
                                return Some(e.clone());
                            }
                        }
                    }
                }
            }
            SubMembership::OwnKeyLinked { is_cols, .. } => {
                for srow in st.rows(sup_anchor.table) {
                    let is_vals: Option<Vec<Value>> =
                        is_cols.iter().map(|c| srow[*c as usize].clone()).collect();
                    if is_vals.as_deref() == Some(key) {
                        let sup_key: Option<Vec<Value>> = sup_anchor
                            .key_cols
                            .iter()
                            .map(|c| srow[*c as usize].clone())
                            .collect();
                        if let Some(sup_key) = sup_key {
                            if let Some(e) = registry.get(&(sup_host.raw(), sup_key)) {
                                return Some(e.clone());
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    None
}

fn row_entity(
    registry: &HashMap<(u32, Vec<Value>), Value>,
    ot_raw: u32,
    info: &crate::grouping::AnchorInfo,
    row: &Row,
) -> Option<Value> {
    let key: Option<Vec<Value>> = info
        .key_cols
        .iter()
        .map(|c| row[*c as usize].clone())
        .collect();
    match key {
        Some(key) => registry.get(&(ot_raw, key)).cloned(),
        None => {
            let raw_key: Vec<Value> = info
                .key_cols
                .iter()
                .map(|c| row[*c as usize].clone().unwrap_or(Value::Bool(false)))
                .collect();
            registry.get(&(ot_raw, raw_key)).cloned()
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lookup_or_fresh(
    registry: &mut HashMap<(u32, Vec<Value>), Value>,
    next: &mut u64,
    host_raw: u32,
    key: Vec<Value>,
    pop: &mut Population,
    player: ObjectTypeId,
    schema: &Schema,
) -> Value {
    let e = registry
        .entry((host_raw, key))
        .or_insert_with(|| {
            let e = Value::Entity(EntityId(*next));
            *next += 1;
            e
        })
        .clone();
    pop.add_object(player, e.clone());
    let _ = schema;
    e
}

/// The object type under which an entity was registered during row
/// decoding: the nearest *anchored* type among the player's host and its
/// ancestors. Fact-less subtypes (indicator- or membership-only) share the
/// registry entries of their anchored supertype, whose reference scheme
/// they inherit.
fn registry_anchor(schema: &Schema, out: &MappingOutput, player: ObjectTypeId) -> u32 {
    let host = out.host_of(player);
    for anc in schema.ancestors_of(host) {
        if out.anchor_of(anc).is_some() {
            return anc.raw();
        }
    }
    host.raw()
}

fn decode_value(
    schema: &Schema,
    out: &MappingOutput,
    registry: &mut HashMap<(u32, Vec<Value>), Value>,
    next: &mut u64,
    pop: &mut Population,
    player: ObjectTypeId,
    vals: Vec<Value>,
) -> Value {
    if schema.kind_of(player).data_type().is_some() {
        return vals
            .into_iter()
            .next()
            .expect("lexical value has one column");
    }
    let owner = registry_anchor(schema, out, player);
    lookup_or_fresh(registry, next, owner, vals, pop, player, schema)
}

fn add_fact_oriented(
    pop: &mut Population,
    schema: &Schema,
    fid: ridl_brm::FactTypeId,
    anchor_side: Side,
    e: Value,
    v: Value,
) {
    match anchor_side {
        Side::Left => pop.add_fact_closed(schema, fid, e, v),
        Side::Right => pop.add_fact_closed(schema, fid, v, e),
    }
}

/// Renames every entity to a canonical id derived from its lexical
/// reference tuple, making populations comparable after a round trip.
pub fn canonicalize(
    schema: &Schema,
    out: &MappingOutput,
    pop: &Population,
) -> Result<Population, MapError> {
    // Identity anchor of an entity: the anchored object type with the
    // smallest id whose population contains it and whose rep resolves.
    let mut keys: Vec<((u32, Vec<Value>), EntityId)> = Vec::new();
    let mut seen: HashMap<EntityId, ()> = HashMap::new();
    for ot_raw in out.anchors.keys() {
        let ot = ObjectTypeId::from_raw(*ot_raw);
        let Some(rep) = out.choice.rep_of(ot) else {
            continue;
        };
        for v in pop.objects_of(ot) {
            let Some(e) = v.as_entity() else { continue };
            if seen.contains_key(&e) {
                continue;
            }
            if let Ok(tuple) = rep_tuple(schema, pop, rep, v) {
                seen.insert(e, ());
                keys.push((((*ot_raw), tuple), e));
            }
        }
    }
    keys.sort();
    let mut renaming: HashMap<EntityId, EntityId> = HashMap::new();
    for (i, (_, e)) in keys.iter().enumerate() {
        renaming.insert(*e, EntityId(i as u64 + 1));
    }
    Ok(pop.rename_entities(&renaming))
}

/// Compares two populations modulo entity renaming.
pub fn equivalent(
    schema: &Schema,
    out: &MappingOutput,
    a: &Population,
    b: &Population,
) -> Result<bool, MapError> {
    let ca = canonicalize(schema, out, a)?.compacted();
    let cb = canonicalize(schema, out, b)?.compacted();
    Ok(ca == cb)
}

//! The mapping options (§4.2): the levers the database engineer pulls to
//! steer the rule-driven transformation process.

use std::collections::{HashMap, HashSet};

use ridl_brm::{FactTypeId, ObjectTypeId, SublinkId};

/// Control on the admissibility of null values in attributes (§4.2.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NullOption {
    /// The default: nulls inadmissible in primary-key attributes (Entity
    /// Integrity Rule); elsewhere admissible as the binary constraints
    /// allow.
    #[default]
    Default,
    /// "A very restrictive one; none of the attributes should allow null
    /// values. … As a consequence, a large number of small tables will in
    /// general be generated."
    NullNotAllowed,
    /// Nulls restricted to attributes not part of a primary or candidate
    /// key.
    NullNotInKeys,
    /// Permits violating the Entity Integrity Rule, so non-homogeneously
    /// referencible NOLOTs (two or more partial candidate keys, no overall
    /// primary key) can live in one relation — "some relational database
    /// systems allow null values also in primary key attributes (ORACLE is
    /// an example)".
    NullAllowed,
}

/// Control on the transformation of sublink types (§4.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SublinkOption {
    /// "SUBOT & SUPOT SEPARATE" (default, strong typing): sub-relation and
    /// super-relation, linked by a foreign key.
    #[default]
    Separate,
    /// "SUBOT & SUPOT TOGETHER": subtype and supertype fact types grouped
    /// into one relation, trading typing strength for fewer dynamic joins.
    Together,
    /// "SUBOT INDICATOR FOR SUPOT": like the default plus an indicator
    /// attribute in the super-relation — procedural redundancy "presumably
    /// for the benefit of query efficiency", controlled by a generated
    /// conditional equality constraint.
    IndicatorForSupot,
}

/// A denormalisation directive (the paper's "decision whether to combine
/// tables", §4.2, and the query-information-driven mapping of §5): absorb
/// the attributes of the co-player of a functional fact into the anchor's
/// relation, duplicating them deliberately.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CombineDirective {
    /// The functional fact along which to denormalise.
    pub via: FactTypeId,
    /// Estimated relative query frequency of the join this removes; rule
    /// packs use it to decide automatically (see `rulebase::denormalise`).
    pub weight: u32,
}

/// The full option set for one mapping run.
#[derive(Clone, Debug, Default)]
pub struct MappingOptions {
    /// Null-value admissibility.
    pub nulls: NullOption,
    /// Global sublink mapping option.
    pub sublinks: SublinkOption,
    /// "The sublink mapping option is a global option with exceptions; …
    /// may be overridden for chosen individual sublink types."
    pub sublink_overrides: HashMap<SublinkId, SublinkOption>,
    /// Per-NOLOT choice of lexical representation, as an index into the
    /// analyzer's representation list (which is ordered smallest-first, so
    /// `0` is the default choice).
    pub lexical_overrides: HashMap<ObjectTypeId, usize>,
    /// Fact types to leave out of the generated schema ("when and how to
    /// omit certain tables") — their absence is reported in the map report.
    pub omit_facts: HashSet<FactTypeId>,
    /// Denormalisation directives (extension; empty by default).
    pub combine: Vec<CombineDirective>,
}

impl MappingOptions {
    /// Options with everything at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: sets the null option.
    pub fn with_nulls(mut self, nulls: NullOption) -> Self {
        self.nulls = nulls;
        self
    }

    /// Builder-style: sets the global sublink option.
    pub fn with_sublinks(mut self, sublinks: SublinkOption) -> Self {
        self.sublinks = sublinks;
        self
    }

    /// Builder-style: overrides the option for one sublink.
    pub fn override_sublink(mut self, sublink: SublinkId, option: SublinkOption) -> Self {
        self.sublink_overrides.insert(sublink, option);
        self
    }

    /// Builder-style: picks a lexical representation for a NOLOT.
    pub fn with_lexical(mut self, ot: ObjectTypeId, rep_index: usize) -> Self {
        self.lexical_overrides.insert(ot, rep_index);
        self
    }

    /// Builder-style: omits a fact type from the generated schema.
    pub fn omit(mut self, fact: FactTypeId) -> Self {
        self.omit_facts.insert(fact);
        self
    }

    /// The effective sublink option for one sublink.
    pub fn sublink_option(&self, sublink: SublinkId) -> SublinkOption {
        self.sublink_overrides
            .get(&sublink)
            .copied()
            .unwrap_or(self.sublinks)
    }

    /// The paper announces options by name in the RIDL-M interface; this is
    /// the announcement string.
    pub fn announce(&self) -> String {
        let nulls = match self.nulls {
            NullOption::Default => "NULL BY CONSTRAINTS (DEFAULT)",
            NullOption::NullNotAllowed => "NULL NOT ALLOWED",
            NullOption::NullNotInKeys => "NULL NOT ALLOWED IN KEYS",
            NullOption::NullAllowed => "NULL ALLOWED",
        };
        let subs = match self.sublinks {
            SublinkOption::Separate => "SUBOT & SUPOT SEPARATE",
            SublinkOption::Together => "SUBOT & SUPOT TOGETHER",
            SublinkOption::IndicatorForSupot => "SUBOT INDICATOR FOR SUPOT",
        };
        format!("{nulls}; {subs}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = MappingOptions::new();
        assert_eq!(o.nulls, NullOption::Default);
        assert_eq!(o.sublinks, SublinkOption::Separate);
        assert!(o.announce().contains("SUBOT & SUPOT SEPARATE"));
    }

    #[test]
    fn sublink_override_wins() {
        let sl = SublinkId::from_raw(3);
        let o = MappingOptions::new()
            .with_sublinks(SublinkOption::Together)
            .override_sublink(sl, SublinkOption::IndicatorForSupot);
        assert_eq!(o.sublink_option(sl), SublinkOption::IndicatorForSupot);
        assert_eq!(
            o.sublink_option(SublinkId::from_raw(0)),
            SublinkOption::Together
        );
    }

    #[test]
    fn builder_accumulates() {
        let o = MappingOptions::new()
            .with_nulls(NullOption::NullNotAllowed)
            .with_lexical(ObjectTypeId::from_raw(1), 2)
            .omit(FactTypeId::from_raw(5));
        assert_eq!(o.nulls, NullOption::NullNotAllowed);
        assert_eq!(o.lexical_overrides[&ObjectTypeId::from_raw(1)], 2);
        assert!(o.omit_facts.contains(&FactTypeId::from_raw(5)));
        assert!(o.announce().contains("NULL NOT ALLOWED"));
    }
}

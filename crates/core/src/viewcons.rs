//! Carrying the binary constraints into the relational schema (naive
//! algorithm step 5 — "this is not as easy as it sounds", §4).
//!
//! Constraints "often considered as first class citizens in the conceptual
//! modelling seem to become pariahs during the transformation process.
//! Only constraint types with a corresponding constraint type in the
//! relational model (e.g. functional dependency, foreign keys) are
//! conserved" (§4) — RIDL-M's answer is to emit the rest as extended view
//! constraints. This module decides, per binary constraint, whether it is
//! *absorbed* by the structure (NOT NULL, keys, foreign keys), *expressible*
//! as a view constraint over the realised columns, or must be *noted* as
//! unexpressed for the application designer; the verdict is recorded in the
//! [`ConstraintMapping`] table that feeds the map report.

use ridl_brm::{ConstraintKind, ObjectTypeId, RoleOrSublink, RoleRef, Schema, Side};
use ridl_relational::{ColumnSelection, RelConstraintKind, RelSchema, TableId};

use crate::grouping::{ConstraintMapping, FactRealization, MappingOutput};

/// The population selection of an object type: its anchor's keys, or the
/// membership selection when it is a subtype without its own relation.
fn population_selection(
    schema: &Schema,
    out: &MappingOutput,
    ot: ObjectTypeId,
) -> Option<ColumnSelection> {
    if let Some(a) = out.anchor_of(ot) {
        return Some(ColumnSelection::of(a.table, a.key_cols.clone()));
    }
    // A subtype hosted elsewhere: its population is its membership.
    for (sid, sl) in schema.sublinks() {
        if sl.sub == ot {
            if let Some(sel) = out.membership_selection(schema, sid) {
                return Some(sel);
            }
        }
    }
    None
}

fn item_selection(
    schema: &Schema,
    out: &MappingOutput,
    item: &RoleOrSublink,
) -> Option<ColumnSelection> {
    match item {
        RoleOrSublink::Role(r) => out.role_selection(*r),
        RoleOrSublink::Sublink(s) => out.membership_selection(schema, *s),
    }
}

/// Whether a total-role constraint over `role` is already structural:
/// the fact is a key of its anchor, or a NOT NULL attribute group.
fn totality_absorbed(out: &MappingOutput, role: RoleRef) -> bool {
    match out.realization(role.fact) {
        // A key fact's anchor side is total by construction (every anchor
        // row carries its key); its value side projects the same columns,
        // and the LOT population is by construction the values in use.
        FactRealization::KeyOf { .. } => true,
        FactRealization::Attribute {
            anchor_side,
            optional,
            ..
        } => *anchor_side == role.side && !optional,
        _ => false,
    }
}

/// Finds the name of a key constraint over exactly these columns.
fn find_key_name(rel: &RelSchema, table: TableId, cols: &[u32]) -> Option<String> {
    rel.constraints.iter().find_map(|c| match &c.kind {
        RelConstraintKind::PrimaryKey { table: t, cols: k }
        | RelConstraintKind::CandidateKey { table: t, cols: k }
            if *t == table && k == cols =>
        {
            Some(c.name.clone())
        }
        _ => None,
    })
}

/// Emits view constraints for every binary constraint not already realised
/// structurally; records every constraint's fate in `out.constraint_map`
/// and appends human-readable notes.
pub(crate) fn emit(schema: &Schema, out: &mut MappingOutput) {
    let mut cmap: Vec<ConstraintMapping> = Vec::with_capacity(schema.num_constraints());
    let mut notes: Vec<String> = Vec::new();

    for (cid, c) in schema.constraints() {
        let mapping = match &c.kind {
            ConstraintKind::Uniqueness { roles } => map_uniqueness(schema, out, roles),
            ConstraintKind::Total { over, items } => map_total(schema, out, *over, items),
            ConstraintKind::Exclusion { items } => map_exclusion(schema, out, items),
            ConstraintKind::Subset { sub, sup } => map_seq(schema, out, sub, sup, false),
            ConstraintKind::Equality { a, b } => map_seq(schema, out, a, b, true),
            ConstraintKind::Cardinality { role, min, max } => {
                map_cardinality(out, *role, *min, *max)
            }
            ConstraintKind::Value { over, values } => map_value(schema, out, *over, values),
        };
        match &mapping {
            ConstraintMapping::Absorbed(reason) => {
                notes.push(format!("constraint {cid} absorbed: {reason}"))
            }
            ConstraintMapping::Unexpressed(reason) => {
                notes.push(format!("constraint {cid} NOT expressed: {reason}"))
            }
            ConstraintMapping::Relational(names) => {
                out.trace.push(
                    ridl_transform::trace::TransformKind::RelationalToRelational,
                    "CARRY CONSTRAINT",
                    format!("{} {cid}", c.kind.keyword()),
                    names.clone(),
                );
            }
        }
        cmap.push(mapping);
    }

    out.constraint_map = cmap;
    out.notes.extend(notes);
}

fn map_uniqueness(
    schema: &Schema,
    out: &mut MappingOutput,
    roles: &[RoleRef],
) -> ConstraintMapping {
    // External uniqueness spanning several facts.
    if roles.len() >= 2 && !roles.iter().all(|r| r.fact == roles[0].fact) {
        // Consumed as a compound reference scheme?
        let consumed_as_key = roles
            .iter()
            .all(|r| matches!(out.realization(r.fact), FactRealization::KeyOf { .. }));
        if consumed_as_key {
            if let FactRealization::KeyOf { table, .. } = out.realization(roles[0].fact) {
                if let Some(pk) = out.rel.primary_key_of(*table).map(|k| k.to_vec()) {
                    if let Some(name) = find_key_name(&out.rel, *table, &pk) {
                        return ConstraintMapping::Relational(vec![name]);
                    }
                }
            }
            return ConstraintMapping::Absorbed(
                "compound reference scheme consumed as primary key".into(),
            );
        }
        if let Some((table, cols)) = external_uniqueness_cols(out, roles) {
            let name = out
                .rel
                .add_named(RelConstraintKind::CandidateKey { table, cols });
            return ConstraintMapping::Relational(vec![name]);
        }
        return ConstraintMapping::Unexpressed(
            "external uniqueness spans several relations".into(),
        );
    }
    // Intra-fact uniqueness.
    let role = roles[0];
    match out.realization(role.fact) {
        FactRealization::KeyOf { table, .. } => {
            let pk = out.rel.primary_key_of(*table).map(|k| k.to_vec());
            match pk.and_then(|k| find_key_name(&out.rel, *table, &k)) {
                Some(name) => ConstraintMapping::Relational(vec![name]),
                None => ConstraintMapping::Absorbed("reference scheme key".into()),
            }
        }
        FactRealization::Attribute {
            table,
            anchor_side,
            value_cols,
            ..
        } => {
            if roles.len() >= 2 {
                return ConstraintMapping::Absorbed(
                    "pair uniqueness implied by functional grouping".into(),
                );
            }
            if role.side == *anchor_side {
                ConstraintMapping::Absorbed(
                    "functional grouping: one row per anchor instance".into(),
                )
            } else {
                match find_key_name(&out.rel, *table, value_cols) {
                    Some(name) => ConstraintMapping::Relational(vec![name]),
                    None => ConstraintMapping::Absorbed("candidate key on value columns".into()),
                }
            }
        }
        FactRealization::OwnTable {
            table,
            left_cols,
            right_cols,
        } => {
            let cols: Vec<u32> = if roles.len() >= 2 {
                let mut all = left_cols.clone();
                all.extend(right_cols);
                all
            } else {
                match role.side {
                    Side::Left => left_cols.clone(),
                    Side::Right => right_cols.clone(),
                }
            };
            match find_key_name(&out.rel, *table, &cols) {
                Some(name) => ConstraintMapping::Relational(vec![name]),
                None => ConstraintMapping::Absorbed("key of the fact relation".into()),
            }
        }
        FactRealization::Omitted => {
            let _ = schema;
            ConstraintMapping::Unexpressed("fact omitted".into())
        }
    }
}

fn map_total(
    schema: &Schema,
    out: &mut MappingOutput,
    over: ObjectTypeId,
    items: &[RoleOrSublink],
) -> ConstraintMapping {
    if let [RoleOrSublink::Role(r)] = items {
        if totality_absorbed(out, *r) {
            return ConstraintMapping::Absorbed(format!(
                "total role on {} realised as key / NOT NULL column",
                schema.role_display(*r)
            ));
        }
    }
    let Some(over_sel) = population_selection(schema, out, over) else {
        return ConstraintMapping::Unexpressed(format!(
            "{} has no population selection",
            schema.ot_name(over)
        ));
    };
    let sels: Vec<_> = items
        .iter()
        .filter_map(|i| item_selection(schema, out, i))
        .collect();
    if sels.len() != items.len() {
        return ConstraintMapping::Unexpressed("some items unrepresented".into());
    }
    if sels.iter().any(|s| s.cols.len() != over_sel.cols.len()) {
        return ConstraintMapping::Unexpressed("representation widths differ".into());
    }
    let name = out.rel.add_named(RelConstraintKind::TotalUnionView {
        over: over_sel,
        items: sels,
    });
    ConstraintMapping::Relational(vec![name])
}

fn map_exclusion(
    schema: &Schema,
    out: &mut MappingOutput,
    items: &[RoleOrSublink],
) -> ConstraintMapping {
    let sels: Vec<_> = items
        .iter()
        .filter_map(|i| item_selection(schema, out, i))
        .collect();
    if sels.len() != items.len() || sels.len() < 2 {
        return ConstraintMapping::Unexpressed("some items unrepresented".into());
    }
    let w = sels[0].cols.len();
    if sels.iter().any(|s| s.cols.len() != w) {
        return ConstraintMapping::Unexpressed("representation widths differ".into());
    }
    let name = out
        .rel
        .add_named(RelConstraintKind::ExclusionView { items: sels });
    ConstraintMapping::Relational(vec![name])
}

fn map_seq(
    _schema: &Schema,
    out: &mut MappingOutput,
    a: &[RoleRef],
    b: &[RoleRef],
    equality: bool,
) -> ConstraintMapping {
    if a.len() != 1 || b.len() != 1 {
        return ConstraintMapping::Unexpressed(
            "compound role sequences need joins; see the map report".into(),
        );
    }
    match (out.role_selection(a[0]), out.role_selection(b[0])) {
        (Some(x), Some(y)) if x.cols.len() == y.cols.len() => {
            let kind = if equality {
                RelConstraintKind::EqualityView { left: x, right: y }
            } else {
                RelConstraintKind::SubsetView { sub: x, sup: y }
            };
            let name = out.rel.add_named(kind);
            ConstraintMapping::Relational(vec![name])
        }
        _ => ConstraintMapping::Unexpressed("role selections unavailable".into()),
    }
}

fn map_cardinality(
    out: &mut MappingOutput,
    role: RoleRef,
    min: u32,
    max: Option<u32>,
) -> ConstraintMapping {
    match out.realization(role.fact).clone() {
        FactRealization::OwnTable {
            table,
            left_cols,
            right_cols,
        } => {
            let cols = match role.side {
                Side::Left => left_cols,
                Side::Right => right_cols,
            };
            let name = out.rel.add_named(RelConstraintKind::Frequency {
                table,
                cols,
                min,
                max,
            });
            ConstraintMapping::Relational(vec![name])
        }
        FactRealization::Attribute {
            table,
            anchor_side,
            value_cols,
            ..
        } => {
            if role.side == anchor_side {
                if min <= 1 {
                    ConstraintMapping::Absorbed("anchor occurs at most once per row".into())
                } else {
                    ConstraintMapping::Unexpressed(format!(
                        "min {min} > 1 on a functional role is unsatisfiable"
                    ))
                }
            } else {
                let name = out.rel.add_named(RelConstraintKind::Frequency {
                    table,
                    cols: value_cols,
                    min,
                    max,
                });
                ConstraintMapping::Relational(vec![name])
            }
        }
        _ => ConstraintMapping::Unexpressed("fact unrepresented".into()),
    }
}

fn map_value(
    schema: &Schema,
    out: &mut MappingOutput,
    over: ObjectTypeId,
    values: &[ridl_brm::Value],
) -> ConstraintMapping {
    let mut targets: Vec<(u32, u32)> = out
        .col_sources
        .iter()
        .filter(|(_, lot)| **lot == over)
        .map(|(k, _)| *k)
        .collect();
    targets.sort_unstable();
    if targets.is_empty() {
        return ConstraintMapping::Unexpressed(format!(
            "no realised column for {}",
            schema.ot_name(over)
        ));
    }
    let mut names = Vec::new();
    for (traw, col) in targets {
        names.push(out.rel.add_named(RelConstraintKind::CheckValue {
            table: TableId(traw),
            col,
            values: values.to_vec(),
        }));
    }
    ConstraintMapping::Relational(names)
}

/// If every role of an external uniqueness constraint is realised as an
/// attribute group in the *same* table, the combined value columns form a
/// candidate key there.
fn external_uniqueness_cols(out: &MappingOutput, roles: &[RoleRef]) -> Option<(TableId, Vec<u32>)> {
    let mut table = None;
    let mut cols = Vec::new();
    for r in roles {
        match out.realization(r.fact) {
            FactRealization::Attribute {
                table: t,
                anchor_side,
                value_cols,
                ..
            } if *anchor_side == r.side.other() => {
                match table {
                    None => table = Some(*t),
                    Some(prev) if prev == *t => {}
                    _ => return None,
                }
                cols.extend(value_cols.iter().copied());
            }
            _ => return None,
        }
    }
    table.map(|t| (t, cols))
}

//! The externalised rule base driving the transformation engine.
//!
//! "Currently a limited number of these rules are built in and externalized
//! as options or choices available to the database engineer. … In a later
//! implementation these rule specifications may in part be extracted from
//! functional requirements and process specifications … For example, query
//! information can be used to steer the mapping towards limited
//! de-normalization whereas right now the database engineer has to infer the
//! correct RIDL-M controls from his own knowledge" (§4.1), and §5: "we are
//! currently defining such a set of 'expert' rules to drive the
//! transformation process."
//!
//! This module implements that projected design: [`ExpertRule`]s inspect the
//! schema, the reference analysis and supplied [`QueryInfo`], and emit
//! [`RuleAction`]s that adjust the [`MappingOptions`] before the synthesis
//! runs. The built-in pack covers the denormalisation and sublink heuristics
//! the paper motivates; users register their own rules alongside.

use std::collections::HashMap;

use ridl_analyzer::ReferenceAnalysis;
use ridl_brm::{FactTypeId, Schema, Side, SublinkId};

use crate::options::{CombineDirective, MappingOptions, SublinkOption};

/// Query information extracted from "functional requirements and process
/// specifications": relative access frequencies.
#[derive(Clone, Debug, Default)]
pub struct QueryInfo {
    /// Relative frequency with which each fact type is traversed by queries.
    pub fact_access: HashMap<FactTypeId, u32>,
    /// Relative frequency with which each subtype's facts are queried
    /// together with supertype facts.
    pub sublink_joint_access: HashMap<SublinkId, u32>,
}

impl QueryInfo {
    /// No information: rules that need it stay silent.
    pub fn none() -> Self {
        Self::default()
    }

    /// Records fact traversal frequency.
    pub fn with_fact_access(mut self, fact: FactTypeId, weight: u32) -> Self {
        self.fact_access.insert(fact, weight);
        self
    }

    /// Records sub/supertype joint access frequency.
    pub fn with_joint_access(mut self, sublink: SublinkId, weight: u32) -> Self {
        self.sublink_joint_access.insert(sublink, weight);
        self
    }
}

/// An action an expert rule proposes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuleAction {
    /// Override the mapping option of one sublink.
    SetSublinkOption(SublinkId, SublinkOption),
    /// Denormalise along a functional fact.
    Combine(FactTypeId, u32),
    /// Omit a fact type from the generated schema.
    OmitFact(FactTypeId),
}

/// The context expert rules see.
pub struct RuleContext<'a> {
    /// The binary schema.
    pub schema: &'a Schema,
    /// The reference analysis.
    pub analysis: &'a ReferenceAnalysis,
    /// Query information, possibly empty.
    pub query: &'a QueryInfo,
}

/// A rule: a name, a rationale, and a derivation function.
pub struct ExpertRule {
    /// Rule name, shown in the firing log.
    pub name: &'static str,
    /// Why the rule exists (documentation).
    pub rationale: &'static str,
    /// The derivation.
    pub derive: RuleFn,
}

/// The derivation function of an expert rule.
pub type RuleFn = Box<dyn Fn(&RuleContext<'_>) -> Vec<RuleAction> + Send + Sync>;

/// An ordered collection of expert rules.
pub struct RuleBase {
    rules: Vec<ExpertRule>,
}

impl Default for RuleBase {
    fn default() -> Self {
        Self::builtin()
    }
}

impl RuleBase {
    /// An empty rule base.
    pub fn empty() -> Self {
        Self { rules: Vec::new() }
    }

    /// The built-in expert rule pack.
    pub fn builtin() -> Self {
        let mut rb = Self::empty();
        rb.add(ExpertRule {
            name: "together-for-hot-subtypes",
            rationale: "frequent joint sub/supertype access makes the dynamic \
                        join of SEPARATE expensive (Inmon's I/O argument, §4); \
                        group them TOGETHER",
            derive: Box::new(|ctx| {
                let mut out = Vec::new();
                for (sid, _) in ctx.schema.sublinks() {
                    if ctx
                        .query
                        .sublink_joint_access
                        .get(&sid)
                        .copied()
                        .unwrap_or(0)
                        >= 10
                    {
                        out.push(RuleAction::SetSublinkOption(sid, SublinkOption::Together));
                    }
                }
                out
            }),
        });
        rb.add(ExpertRule {
            name: "indicator-for-membership-tests",
            rationale: "moderate joint access justifies only the indicator \
                        redundancy, controlled by a conditional equality \
                        constraint (§4.2.2)",
            derive: Box::new(|ctx| {
                let mut out = Vec::new();
                for (sid, _) in ctx.schema.sublinks() {
                    let w = ctx
                        .query
                        .sublink_joint_access
                        .get(&sid)
                        .copied()
                        .unwrap_or(0);
                    if (3..10).contains(&w) {
                        out.push(RuleAction::SetSublinkOption(
                            sid,
                            SublinkOption::IndicatorForSupot,
                        ));
                    }
                }
                out
            }),
        });
        rb.add(ExpertRule {
            name: "denormalise-hot-functional-joins",
            rationale: "a functional fact traversed very frequently is a \
                        candidate for limited de-normalization steered by \
                        query information (§4.1)",
            derive: Box::new(|ctx| {
                let mut out = Vec::new();
                for (fid, _) in ctx.schema.fact_types() {
                    let w = ctx.query.fact_access.get(&fid).copied().unwrap_or(0);
                    if w < 10 {
                        continue;
                    }
                    // Only functional facts toward an entity co-player are
                    // join-removing candidates.
                    let (lu, ru) = ctx.schema.fact_multiplicity(fid);
                    let side = match (lu, ru) {
                        (true, false) => Side::Left,
                        (false, true) => Side::Right,
                        _ => continue,
                    };
                    let co = ctx
                        .schema
                        .role_player(ridl_brm::RoleRef::new(fid, side.other()));
                    if ctx.schema.kind_of(co).is_entity_like() && ctx.analysis.is_referable(co) {
                        out.push(RuleAction::Combine(fid, w));
                    }
                }
                out
            }),
        });
        rb
    }

    /// Adds a rule.
    pub fn add(&mut self, rule: ExpertRule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Runs every rule and folds the actions into the base options.
    /// Explicit engineer choices win: a rule never overrides an explicit
    /// per-sublink override or an existing combine directive.
    /// Returns the adjusted options and a firing log.
    pub fn derive_options(
        &self,
        schema: &Schema,
        analysis: &ReferenceAnalysis,
        query: &QueryInfo,
        base: MappingOptions,
    ) -> (MappingOptions, Vec<String>) {
        let ctx = RuleContext {
            schema,
            analysis,
            query,
        };
        let mut options = base;
        let mut log = Vec::new();
        for rule in &self.rules {
            for action in (rule.derive)(&ctx) {
                match action {
                    RuleAction::SetSublinkOption(sid, opt) => {
                        if options.sublink_overrides.contains_key(&sid) {
                            log.push(format!(
                                "{}: skipped (engineer override on {sid})",
                                rule.name
                            ));
                            continue;
                        }
                        options.sublink_overrides.insert(sid, opt);
                        log.push(format!("{}: {sid} -> {opt:?}", rule.name));
                    }
                    RuleAction::Combine(fid, weight) => {
                        if options.combine.iter().any(|c| c.via == fid) {
                            continue;
                        }
                        options.combine.push(CombineDirective { via: fid, weight });
                        log.push(format!(
                            "{}: denormalise along {}",
                            rule.name,
                            schema.fact_type(fid).name
                        ));
                    }
                    RuleAction::OmitFact(fid) => {
                        options.omit_facts.insert(fid);
                        log.push(format!(
                            "{}: omit {}",
                            rule.name,
                            schema.fact_type(fid).name
                        ));
                    }
                }
            }
        }
        (options, log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_analyzer::reference::infer;
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::DataType;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new("s");
        b.nolot("Paper").unwrap();
        b.nolot("Program_Paper").unwrap();
        b.sublink("Program_Paper", "Paper").unwrap();
        identify(&mut b, "Paper", "Paper_Id", DataType::Char(6)).unwrap();
        b.nolot("Person").unwrap();
        identify(&mut b, "Person", "Name", DataType::Char(30)).unwrap();
        b.fact(
            "presented",
            ("presented_by", "Program_Paper"),
            ("presents", "Person"),
        )
        .unwrap();
        b.unique("presented", Side::Left).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn hot_sublink_goes_together() {
        let s = schema();
        let a = infer(&s);
        let q = QueryInfo::none().with_joint_access(SublinkId::from_raw(0), 20);
        let (opts, log) = RuleBase::builtin().derive_options(&s, &a, &q, MappingOptions::new());
        assert_eq!(
            opts.sublink_option(SublinkId::from_raw(0)),
            SublinkOption::Together
        );
        assert!(!log.is_empty());
    }

    #[test]
    fn moderate_sublink_gets_indicator() {
        let s = schema();
        let a = infer(&s);
        let q = QueryInfo::none().with_joint_access(SublinkId::from_raw(0), 5);
        let (opts, _) = RuleBase::builtin().derive_options(&s, &a, &q, MappingOptions::new());
        assert_eq!(
            opts.sublink_option(SublinkId::from_raw(0)),
            SublinkOption::IndicatorForSupot
        );
    }

    #[test]
    fn engineer_override_wins_over_rules() {
        let s = schema();
        let a = infer(&s);
        let q = QueryInfo::none().with_joint_access(SublinkId::from_raw(0), 20);
        let base =
            MappingOptions::new().override_sublink(SublinkId::from_raw(0), SublinkOption::Separate);
        let (opts, log) = RuleBase::builtin().derive_options(&s, &a, &q, base);
        assert_eq!(
            opts.sublink_option(SublinkId::from_raw(0)),
            SublinkOption::Separate
        );
        assert!(log.iter().any(|l| l.contains("skipped")));
    }

    #[test]
    fn hot_functional_fact_denormalised() {
        let s = schema();
        let a = infer(&s);
        let presented = s.fact_type_by_name("presented").unwrap();
        let q = QueryInfo::none().with_fact_access(presented, 50);
        let (opts, _) = RuleBase::builtin().derive_options(&s, &a, &q, MappingOptions::new());
        assert!(opts.combine.iter().any(|c| c.via == presented));
    }

    #[test]
    fn silent_without_query_info() {
        let s = schema();
        let a = infer(&s);
        let (opts, log) =
            RuleBase::builtin().derive_options(&s, &a, &QueryInfo::none(), MappingOptions::new());
        assert!(opts.sublink_overrides.is_empty());
        assert!(opts.combine.is_empty());
        assert!(log.is_empty());
    }

    #[test]
    fn custom_rule_participates() {
        let s = schema();
        let a = infer(&s);
        let mut rb = RuleBase::empty();
        assert!(rb.is_empty());
        rb.add(ExpertRule {
            name: "omit-everything-named-presented",
            rationale: "test",
            derive: Box::new(|ctx| {
                ctx.schema
                    .fact_types()
                    .filter(|(_, f)| f.name == "presented")
                    .map(|(fid, _)| RuleAction::OmitFact(fid))
                    .collect()
            }),
        });
        assert_eq!(rb.len(), 1);
        let (opts, _) = rb.derive_options(&s, &a, &QueryInfo::none(), MappingOptions::new());
        assert_eq!(opts.omit_facts.len(), 1);
    }
}

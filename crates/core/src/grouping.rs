//! The stepwise grouping synthesis — RIDL-M's core (§4).
//!
//! The naive algorithm of §4 (relation per NOLOT, grouped functional roles,
//! separate tables for m:n facts, lexicalisation, constraint carry-over) is
//! implemented here as the *composition of basic transformations*, each
//! recorded in the trace, and parameterised by the mapping options of §4.2:
//!
//! * object types are partitioned into **anchors** (own relation), subtypes
//!   absorbed per the sublink options, and attribute-like lexical types;
//! * every fact type receives a [`FactRealization`] — consumed as a key,
//!   grouped as an attribute group, or given a table of its own — chosen by
//!   the null-value option's grouping discipline;
//! * sublinks receive a [`SubMembership`] realisation: sub-relation +
//!   foreign key, `_Is` columns + equality view, absorbed columns + equal
//!   existence, or indicator attribute + conditional equality;
//! * everything non-lexical is replaced by the chosen lexical
//!   representation (the REPLACE-BY-LEXICAL steps).
//!
//! The resulting [`MappingOutput`] is the machine-readable form of the map
//! report: `state_map` executes it as the schema transformation `g`, and
//! `map_report` renders it for application programmers.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use ridl_analyzer::{LexicalRep, ReferenceAnalysis};
use ridl_brm::{DataType, FactTypeId, ObjectTypeId, RoleRef, Schema, Side, SublinkId, Value};
use ridl_relational::{Column, ColumnSelection, RelConstraintKind, RelSchema, Table, TableId};
use ridl_transform::trace::{TransformKind, TransformTrace};

use crate::lexical::{
    attribute_column_name, choose_reps, dedupe_name, indicator_column_name, rep_column_names,
    sublink_is_column_name, LexicalChoice,
};
use crate::options::{MappingOptions, NullOption, SublinkOption};

/// An error aborting the mapping.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MapError {
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mapping error: {}", self.message)
    }
}

impl std::error::Error for MapError {}

impl MapError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

/// How one fact type is realised in the relational schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FactRealization {
    /// Consumed as (part of) the key of an anchor's relation: the fact is a
    /// hop of the anchor's chosen reference scheme.
    KeyOf {
        /// The anchor's table.
        table: TableId,
        /// The anchored object type.
        anchor: ObjectTypeId,
        /// Which side of the fact the anchor plays.
        anchor_side: Side,
        /// The key columns realising this hop.
        cols: Vec<u32>,
    },
    /// Grouped as an attribute group in an anchor's relation (functional
    /// fact, naive-algorithm step 1).
    Attribute {
        /// The hosting table.
        table: TableId,
        /// The anchored object type (or its host under `TOGETHER`).
        anchor: ObjectTypeId,
        /// Which side of the fact the anchor plays.
        anchor_side: Side,
        /// The table's key columns.
        key_cols: Vec<u32>,
        /// The columns holding the co-player's representation.
        value_cols: Vec<u32>,
        /// Whether the value columns are nullable.
        optional: bool,
    },
    /// A relation of its own: m:n facts (naive-algorithm step 3) and
    /// functional facts exiled by a restrictive null option.
    OwnTable {
        /// The fact's table.
        table: TableId,
        /// Columns of the left role's representation.
        left_cols: Vec<u32>,
        /// Columns of the right role's representation.
        right_cols: Vec<u32>,
    },
    /// Left out by the table-omission option; recorded for the map report.
    Omitted,
}

impl FactRealization {
    /// The selection realising one role of the fact, if expressible.
    pub fn role_selection(&self, side: Side) -> Option<ColumnSelection> {
        match self {
            FactRealization::KeyOf { table, cols, .. } => {
                Some(ColumnSelection::of(*table, cols.clone()))
            }
            FactRealization::Attribute {
                table,
                anchor_side,
                key_cols,
                value_cols,
                optional,
                ..
            } => {
                let cols = if side == *anchor_side {
                    key_cols.clone()
                } else {
                    value_cols.clone()
                };
                let sel = ColumnSelection::of(*table, cols);
                Some(if *optional {
                    sel.where_not_null(value_cols.clone())
                } else {
                    sel
                })
            }
            FactRealization::OwnTable {
                table,
                left_cols,
                right_cols,
            } => Some(ColumnSelection::of(
                *table,
                match side {
                    Side::Left => left_cols.clone(),
                    Side::Right => right_cols.clone(),
                },
            )),
            FactRealization::Omitted => None,
        }
    }
}

/// How a sublink's subtype membership is realised.
#[derive(Clone, PartialEq, Debug)]
pub enum SubMembership {
    /// Membership = row presence in the sub-relation, whose key is the
    /// inherited reference scheme; expressed by a foreign key.
    SubRelation {
        /// The sub-relation.
        table: TableId,
        /// Its key columns.
        key_cols: Vec<u32>,
    },
    /// The subtype has its own reference scheme: the super-relation carries
    /// nullable `_Is` columns with the sub's key (fig. 6, Alternative 3),
    /// tied to the sub-relation by an equality view (the lossless rule).
    OwnKeyLinked {
        /// The sub-relation.
        table: TableId,
        /// Its key columns.
        key_cols: Vec<u32>,
        /// The super-relation.
        super_table: TableId,
        /// The `_Is` columns in the super-relation.
        is_cols: Vec<u32>,
    },
    /// The subtype has its own reference scheme but nullable `_Is` columns
    /// are forbidden (`NULL NOT ALLOWED` / `NULL NOT IN KEYS`): a dedicated
    /// link table pairs the two keys.
    LinkTable {
        /// The sub-relation.
        table: TableId,
        /// Its key columns.
        key_cols: Vec<u32>,
        /// The link table.
        link_table: TableId,
        /// The sub-key columns in the link table.
        link_sub_cols: Vec<u32>,
        /// The super-key columns in the link table.
        link_sup_cols: Vec<u32>,
    },
    /// `SUBOT & SUPOT TOGETHER`: membership = the mandatory absorbed columns
    /// are non-null (equal existence controls the pattern).
    AbsorbedColumns {
        /// The host (super) relation.
        table: TableId,
        /// The mandatory columns whose non-nullity means membership.
        mandatory_cols: Vec<u32>,
    },
    /// `SUBOT INDICATOR FOR SUPOT`: a boolean indicator attribute in the
    /// super-relation, possibly alongside a sub-relation.
    Indicator {
        /// The super-relation carrying the indicator.
        table: TableId,
        /// The indicator column.
        col: u32,
        /// The sub-relation, when the subtype has facts of its own.
        sub: Option<Box<SubMembership>>,
    },
}

/// An anchored object type's relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnchorInfo {
    /// The relation.
    pub table: TableId,
    /// Its primary-key columns (the chosen lexical representation).
    pub key_cols: Vec<u32>,
}

/// How one binary constraint fared during the transformation (the paper
/// notes constraints risk becoming "pariahs"; this record keeps them
/// first-class in the map report).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConstraintMapping {
    /// Realised as the named relational constraints.
    Relational(Vec<String>),
    /// Absorbed structurally (keys, NOT NULL, foreign keys); the note says
    /// by what.
    Absorbed(String),
    /// Not expressible over the generated schema; the note says why — "a
    /// formal specification for a program segment" is all that remains.
    Unexpressed(String),
}

/// The complete result of a mapping run.
#[derive(Clone, Debug)]
pub struct MappingOutput {
    /// The canonical binary schema the mapping worked from (the original
    /// after the binary-to-binary canonicalisation steps; object-type and
    /// fact-type ids are unchanged, constraints may be fewer).
    pub schema: Schema,
    /// The generic relational schema (§4.3).
    pub rel: RelSchema,
    /// Anchor relations per object type (raw id).
    pub anchors: BTreeMap<u32, AnchorInfo>,
    /// Realisation per fact type (indexed by fact id).
    pub fact_real: Vec<FactRealization>,
    /// Membership realisation per sublink (indexed by sublink id).
    pub sub_memb: Vec<Option<SubMembership>>,
    /// The chosen lexical representations.
    pub choice: LexicalChoice,
    /// Which anchor hosts each object type's facts (`TOGETHER` redirects
    /// subtypes to their supertype's host).
    pub host: Vec<ObjectTypeId>,
    /// The options the run used.
    pub options: MappingOptions,
    /// The applied basic transformations, in order.
    pub trace: TransformTrace,
    /// Binary constraints absorbed structurally (NOT NULL, keys) or not
    /// expressible, with an explanation — part of the map report.
    pub notes: Vec<String>,
    /// Per column: the source LOT it lexicalises, if any (drives value
    /// constraints and the backwards map).
    pub col_sources: HashMap<(u32, u32), ObjectTypeId>,
    /// Fate of every binary constraint (indexed by constraint id of the
    /// canonical schema).
    pub constraint_map: Vec<ConstraintMapping>,
    /// Denormalisation records (the combine directives, §4.2): each is a
    /// functional dependency whose determinant is not a key, deliberately
    /// leaving BCNF, with enough structure for the state map to fill the
    /// duplicated values.
    pub combines: Vec<CombineRecord>,
}

/// One applied combine directive.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CombineRecord {
    /// The functional fact the directive denormalised along.
    pub via: FactTypeId,
    /// The table that received the duplicated columns.
    pub table: TableId,
    /// The determinant: the columns holding the target's key (the combined
    /// fact's value columns).
    pub det_cols: Vec<u32>,
    /// The duplicated (dependent) columns.
    pub dup_cols: Vec<u32>,
    /// The source table the duplicates mirror.
    pub target_table: TableId,
    /// Its key columns (matched against `det_cols`).
    pub target_key_cols: Vec<u32>,
    /// Its copied source columns, aligned with `dup_cols`.
    pub target_src_cols: Vec<u32>,
}

impl MappingOutput {
    /// The anchor info of an object type, if anchored.
    pub fn anchor_of(&self, ot: ObjectTypeId) -> Option<&AnchorInfo> {
        self.anchors.get(&ot.raw())
    }

    /// The realisation of a fact type.
    pub fn realization(&self, fact: FactTypeId) -> &FactRealization {
        &self.fact_real[fact.index()]
    }

    /// The selection realising a role, if expressible.
    pub fn role_selection(&self, role: RoleRef) -> Option<ColumnSelection> {
        self.fact_real[role.fact.index()].role_selection(role.side)
    }

    /// The selection of a subtype's membership *in the super key space*.
    pub fn membership_selection(
        &self,
        schema: &Schema,
        sublink: SublinkId,
    ) -> Option<ColumnSelection> {
        let sl = schema.sublink(sublink);
        let memb = self.sub_memb[sublink.index()].as_ref()?;
        self.membership_selection_inner(schema, sl.sup, memb)
    }

    fn membership_selection_inner(
        &self,
        _schema: &Schema,
        sup: ObjectTypeId,
        memb: &SubMembership,
    ) -> Option<ColumnSelection> {
        match memb {
            SubMembership::SubRelation { table, key_cols } => {
                Some(ColumnSelection::of(*table, key_cols.clone()))
            }
            SubMembership::OwnKeyLinked {
                super_table,
                is_cols,
                ..
            } => {
                let sup_anchor = self.anchor_of(self.host_of(sup))?;
                Some(
                    ColumnSelection::of(*super_table, sup_anchor.key_cols.clone())
                        .where_not_null(is_cols.clone()),
                )
            }
            SubMembership::LinkTable {
                link_table,
                link_sup_cols,
                ..
            } => Some(ColumnSelection::of(*link_table, link_sup_cols.clone())),
            SubMembership::AbsorbedColumns {
                table,
                mandatory_cols,
            } => {
                let sup_anchor = self.anchor_of(self.host_of(sup))?;
                Some(
                    ColumnSelection::of(*table, sup_anchor.key_cols.clone())
                        .where_not_null(mandatory_cols.clone()),
                )
            }
            SubMembership::Indicator { table, col, .. } => {
                let sup_anchor = self.anchor_of(self.host_of(sup))?;
                Some(
                    ColumnSelection::of(*table, sup_anchor.key_cols.clone())
                        .where_eq(*col, Value::Bool(true)),
                )
            }
        }
    }

    /// The host anchor of an object type.
    pub fn host_of(&self, ot: ObjectTypeId) -> ObjectTypeId {
        self.host[ot.index()]
    }

    /// Total number of generated tables.
    pub fn table_count(&self) -> usize {
        self.rel.tables.len()
    }

    /// Derives the functional and multivalued dependencies known to hold on
    /// every generated table: key dependencies from the declared keys and
    /// the non-key dependencies the denormalisation directives introduced.
    /// Feed the result to [`ridl_relational::normal_form_of`] to reproduce
    /// the paper's §4 claim that the default synthesis yields fully
    /// normalized ("5NF") relations.
    pub fn table_dependencies(&self) -> Vec<(TableId, ridl_relational::TableDependencies)> {
        let mut out = Vec::new();
        for (tid, table) in self.rel.tables() {
            let mut deps = ridl_relational::TableDependencies::with_arity(table.arity());
            let all: Vec<u32> = (0..table.arity() as u32).collect();
            for key in self.rel.keys_of(tid) {
                deps.fds.push(ridl_relational::Fd::new(key, &all));
            }
            for rec in &self.combines {
                if rec.table == tid {
                    deps.fds
                        .push(ridl_relational::Fd::new(&rec.det_cols, &rec.dup_cols));
                }
            }
            out.push((tid, deps));
        }
        out
    }

    /// Number of nullable columns across the schema.
    pub fn nullable_column_count(&self) -> usize {
        self.rel
            .tables
            .iter()
            .flat_map(|t| &t.columns)
            .filter(|c| c.nullable)
            .count()
    }
}

// ---------------------------------------------------------------------------
// Planning structures
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct ColSpec {
    name: String,
    data_type: DataType,
    nullable: bool,
    source_lot: Option<ObjectTypeId>,
}

#[derive(Clone, Debug, Default)]
struct TablePlan {
    name: String,
    cols: Vec<ColSpec>,
    pk: Vec<u32>,
    candidate_keys: Vec<Vec<u32>>,
}

impl TablePlan {
    fn push_col(&mut self, spec: ColSpec) -> u32 {
        let used: Vec<String> = self.cols.iter().map(|c| c.name.clone()).collect();
        let mut spec = spec;
        spec.name = dedupe_name(&used, spec.name);
        self.cols.push(spec);
        self.cols.len() as u32 - 1
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FactClass {
    /// Consumed by the chosen rep of this anchor.
    Key(ObjectTypeId),
    /// Functional, grouped under this anchor (anchor side given).
    Functional(ObjectTypeId, Side),
    /// Own table (m:n, LOT-keyed, or exiled by null option).
    Own,
    Omitted,
}

/// Runs the grouping synthesis.
pub fn map_schema(
    schema: &Schema,
    analysis: &ReferenceAnalysis,
    options: &MappingOptions,
) -> Result<MappingOutput, MapError> {
    let mut span = ridl_obs::span::enter("ridlm.map");
    if span.is_recording() {
        span.attr("nulls", format!("{:?}", options.nulls));
        span.attr("sublinks", format!("{:?}", options.sublinks));
    }
    let mut trace = TransformTrace::new();
    let notes: Vec<String> = Vec::new();

    // -- Binary-to-binary: canonicalize constraints.
    let (schema_canon, removed) = ridl_transform::canonicalize_constraints(schema);
    let schema = &schema_canon;
    if removed > 0 {
        trace.push(
            TransformKind::BinaryToBinary,
            "CANONICALIZE CONSTRAINTS",
            format!("{removed} superfluous constraints removed"),
            vec![],
        );
    }

    let choice = choose_reps(schema, analysis, options)?;

    // -- Host resolution: TOGETHER redirects subtypes to their supertype.
    let mut host: Vec<ObjectTypeId> = (0..schema.num_object_types() as u32)
        .map(ObjectTypeId::from_raw)
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (sid, sl) in schema.sublinks() {
            if options.sublink_option(sid) == SublinkOption::Together
                && options.nulls != NullOption::NullNotAllowed
            {
                let sup_host = host[sl.sup.index()];
                if host[sl.sub.index()] != sup_host {
                    host[sl.sub.index()] = sup_host;
                    changed = true;
                }
            }
        }
    }

    // -- Determine which facts are consumed by chosen reference schemes.
    // consumed[fact] = (owner anchor, list of atom indices realised by it)
    let mut consumed: HashMap<u32, (ObjectTypeId, Vec<usize>)> = HashMap::new();
    let is_self_host = |ot: ObjectTypeId| host[ot.index()] == ot;
    for (oid, ot) in schema.object_types() {
        if !ot.kind.is_entity_like() || !is_self_host(oid) {
            continue;
        }
        let Some(rep) = choice.rep_of(oid) else {
            continue;
        };
        for (ai, atom) in rep.atoms.iter().enumerate() {
            let Some(first) = atom.path.first() else {
                continue; // self-lexical atom consumes no fact
            };
            let entry = consumed
                .entry(first.fact.raw())
                .or_insert((oid, Vec::new()));
            if entry.0 == oid {
                entry.1.push(ai);
            }
        }
    }

    // -- Classify facts.
    let mut class: Vec<FactClass> = Vec::with_capacity(schema.num_fact_types());
    for (fid, ft) in schema.fact_types() {
        if options.omit_facts.contains(&fid) {
            class.push(FactClass::Omitted);
            continue;
        }
        if let Some((owner, _)) = consumed.get(&fid.raw()) {
            // Only a key when the anchor actually plays a side of it.
            if let Some(side) = ft.side_of(*owner) {
                // Verify this hop starts at the owner (path[0] role is the
                // owner's role).
                let rep = choice.rep_of(*owner).expect("consumed implies rep");
                let is_first_hop = rep
                    .atoms
                    .iter()
                    .any(|a| a.path.first() == Some(&RoleRef::new(fid, side)));
                if is_first_hop {
                    class.push(FactClass::Key(*owner));
                    continue;
                }
            }
        }
        let (lu, ru) = schema.fact_multiplicity(fid);
        let assignable = |side: Side| -> Option<ObjectTypeId> {
            let player = ft.player(side);
            let h = host[player.index()];
            let anchorable = choice.rep_of(h).is_some()
                || (options.nulls == NullOption::NullAllowed
                    && !partial_reps(schema, h).is_empty());
            if schema.kind_of(player).is_entity_like() && anchorable {
                Some(player)
            } else {
                None
            }
        };
        let total = |side: Side| -> bool { schema.is_role_total(RoleRef::new(fid, side)) };
        let chosen = match (lu, ru) {
            (true, true) => {
                // 1:1: prefer the total side, then left.
                if total(Side::Left) {
                    assignable(Side::Left)
                        .map(|a| (a, Side::Left))
                        .or_else(|| assignable(Side::Right).map(|a| (a, Side::Right)))
                } else if total(Side::Right) {
                    assignable(Side::Right)
                        .map(|a| (a, Side::Right))
                        .or_else(|| assignable(Side::Left).map(|a| (a, Side::Left)))
                } else {
                    assignable(Side::Left)
                        .map(|a| (a, Side::Left))
                        .or_else(|| assignable(Side::Right).map(|a| (a, Side::Right)))
                }
            }
            (true, false) => assignable(Side::Left).map(|a| (a, Side::Left)),
            (false, true) => assignable(Side::Right).map(|a| (a, Side::Right)),
            (false, false) => None,
        };
        match chosen {
            Some((anchor, side)) => {
                // The null option may exile the fact to its own table.
                let is_total = total(side);
                let co_unique = schema.is_role_unique(RoleRef::new(fid, side.other()));
                let exile = match options.nulls {
                    NullOption::NullNotAllowed => !is_total,
                    NullOption::NullNotInKeys => !is_total && co_unique,
                    _ => false,
                };
                if exile {
                    class.push(FactClass::Own);
                } else {
                    class.push(FactClass::Functional(anchor, side));
                }
            }
            None => class.push(FactClass::Own),
        }
    }

    // -- Anchor set: entity-like self-hosts with a rep that either are pure
    // NOLOTs, have grouped facts, or participate in a surviving sublink.
    let mut anchored: HashSet<u32> = HashSet::new();
    for (oid, ot) in schema.object_types() {
        if !ot.kind.is_entity_like() || !is_self_host(oid) {
            continue;
        }
        if choice.rep_of(oid).is_none() {
            if options.nulls == NullOption::NullAllowed && !partial_reps(schema, oid).is_empty() {
                // Non-homogeneously referencible NOLOT: anchor with nullable
                // reference groups below.
                anchored.insert(oid.raw());
            }
            continue;
        }
        let has_grouped = class.iter().enumerate().any(|(fi, c)| {
            matches!(c, FactClass::Functional(a, _) | FactClass::Key(a) if *a == oid)
                && !matches!(class[fi], FactClass::Omitted)
        });
        let in_sublink = schema
            .sublinks()
            .any(|(_, sl)| host[sl.sub.index()] == oid || sl.sup == oid || sl.sub == oid);
        if ot.kind.is_nolot() || has_grouped || in_sublink {
            anchored.insert(oid.raw());
        }
    }
    // Subtypes hosted elsewhere are never anchored themselves.
    for (_, sl) in schema.sublinks() {
        if host[sl.sub.index()] != sl.sub {
            anchored.remove(&sl.sub.raw());
        }
    }
    // A fact-less subtype under the indicator option needs no sub-relation:
    // the indicator attribute stores its whole extension (fig. 6, the
    // `Is_Invited_Paper` treatment).
    for (sid, sl) in schema.sublinks() {
        if options.sublink_option(sid) != SublinkOption::IndicatorForSupot {
            continue;
        }
        let has_grouped = class
            .iter()
            .any(|c| matches!(c, FactClass::Functional(a, _) | FactClass::Key(a) if *a == sl.sub));
        let is_supertype_itself = schema.sublinks().any(|(_, other)| other.sup == sl.sub);
        if !has_grouped && !is_supertype_itself {
            anchored.remove(&sl.sub.raw());
        }
    }

    // -- Build the planner and lay out tables.
    let mut planner = Planner {
        schema,
        choice: &choice,
        options,
        plans: Vec::new(),
        anchor_plan: BTreeMap::new(),
        fact_real_plan: vec![PlanRealization::Pending; schema.num_fact_types()],
        sub_memb_plan: vec![None; schema.num_sublinks()],
        col_sources: HashMap::new(),
        trace,
        notes,
        host: host.clone(),
        fks: Vec::new(),
        extra: Vec::new(),
        combines: Vec::new(),
    };
    planner.layout_anchors(&anchored, &class)?;
    planner.layout_facts(&class)?;
    planner.layout_sublinks(&anchored)?;
    planner.apply_combines(&class)?;

    let Planner {
        plans,
        anchor_plan,
        fact_real_plan,
        sub_memb_plan,
        col_sources,
        mut trace,
        notes,
        fks,
        extra,
        combines: planner_combines,
        ..
    } = planner;

    // -- Instantiate the relational schema.
    let mut rel = RelSchema::new(schema.name.clone());
    let mut table_ids = Vec::with_capacity(plans.len());
    for plan in &plans {
        let mut cols = Vec::new();
        for c in &plan.cols {
            let dom_name = match c.source_lot {
                Some(lot) => format!("D_{}", schema.ot_name(lot)),
                None => format!("D_{}", c.name),
            };
            let dom = rel.domain(&dom_name, c.data_type);
            cols.push(Column {
                name: c.name.clone(),
                domain: dom,
                nullable: c.nullable,
            });
        }
        let tid = rel.add_table(Table::new(plan.name.clone(), cols));
        table_ids.push(tid);
        if !plan.pk.is_empty() {
            rel.add_named(RelConstraintKind::PrimaryKey {
                table: tid,
                cols: plan.pk.clone(),
            });
        }
        for ck in &plan.candidate_keys {
            rel.add_named(RelConstraintKind::CandidateKey {
                table: tid,
                cols: ck.clone(),
            });
        }
    }
    let t = |p: usize| table_ids[p];

    // Foreign keys collected during planning.
    for fk in &fks {
        let name = rel.add_named(RelConstraintKind::ForeignKey {
            table: t(fk.table),
            cols: fk.cols.clone(),
            ref_table: t(fk.ref_table),
            ref_cols: fk.ref_cols.clone(),
        });
        trace.push(
            TransformKind::RelationalToRelational,
            "REPLACE BY LEXICAL / FOREIGN KEY",
            fk.site.clone(),
            vec![name],
        );
    }
    // Extra constraints (equality views, existence rules, …) from planning.
    for e in extra {
        let (kind_trace, ename, site) = (e.kind_trace, e.name.clone(), e.site.clone());
        let kind = e.instantiate(&table_ids);
        let name = rel.add_named(kind);
        trace.push(kind_trace, ename, site, vec![name]);
    }

    // -- Finalise realisations with real table ids.
    let fact_real: Vec<FactRealization> = fact_real_plan
        .into_iter()
        .map(|p| p.finalize(&table_ids))
        .collect();
    let sub_memb: Vec<Option<SubMembership>> = sub_memb_plan
        .into_iter()
        .map(|p| p.map(|m| m.finalize(&table_ids)))
        .collect();
    let anchors: BTreeMap<u32, AnchorInfo> = anchor_plan
        .into_iter()
        .map(|(ot, (plan_idx, key_cols))| {
            (
                ot,
                AnchorInfo {
                    table: table_ids[plan_idx],
                    key_cols,
                },
            )
        })
        .collect();
    let col_sources = col_sources
        .into_iter()
        .map(|((p, c), lot)| ((table_ids[p].0, c), lot))
        .collect();

    let mut out = MappingOutput {
        schema: schema.clone(),
        rel,
        anchors,
        fact_real,
        sub_memb,
        choice,
        host,
        options: options.clone(),
        trace,
        notes,
        col_sources,
        constraint_map: Vec::new(),
        combines: planner_combines
            .into_iter()
            .map(|pc| CombineRecord {
                via: pc.via,
                table: table_ids[pc.plan],
                det_cols: pc.det_cols,
                dup_cols: pc.dup_cols,
                target_table: table_ids[pc.target_plan],
                target_key_cols: pc.target_key_cols,
                target_src_cols: pc.target_src_cols,
            })
            .collect(),
    };

    // -- Carry the remaining binary constraints as view constraints.
    crate::viewcons::emit(schema, &mut out);

    Ok(out)
}

/// Partial reference groups for the `NULL ALLOWED` option: 1:1 facts to a
/// lexical co-player that lack totality.
pub(crate) fn partial_reps(schema: &Schema, ot: ObjectTypeId) -> Vec<RoleRef> {
    let mut out = Vec::new();
    for role in schema.roles_of(ot) {
        let co = role.co_role();
        let co_player = schema.role_player(co);
        if schema.is_role_unique(role)
            && schema.is_role_unique(co)
            && !schema.is_role_total(role)
            && schema.kind_of(co_player).data_type().is_some()
        {
            out.push(role);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Planner internals
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum PlanRealization {
    Pending,
    KeyOf {
        plan: usize,
        anchor: ObjectTypeId,
        anchor_side: Side,
        cols: Vec<u32>,
    },
    Attribute {
        plan: usize,
        anchor: ObjectTypeId,
        anchor_side: Side,
        key_cols: Vec<u32>,
        value_cols: Vec<u32>,
        optional: bool,
    },
    OwnTable {
        plan: usize,
        left_cols: Vec<u32>,
        right_cols: Vec<u32>,
    },
    Omitted,
}

impl PlanRealization {
    fn finalize(self, tids: &[TableId]) -> FactRealization {
        match self {
            PlanRealization::Pending | PlanRealization::Omitted => FactRealization::Omitted,
            PlanRealization::KeyOf {
                plan,
                anchor,
                anchor_side,
                cols,
            } => FactRealization::KeyOf {
                table: tids[plan],
                anchor,
                anchor_side,
                cols,
            },
            PlanRealization::Attribute {
                plan,
                anchor,
                anchor_side,
                key_cols,
                value_cols,
                optional,
            } => FactRealization::Attribute {
                table: tids[plan],
                anchor,
                anchor_side,
                key_cols,
                value_cols,
                optional,
            },
            PlanRealization::OwnTable {
                plan,
                left_cols,
                right_cols,
            } => FactRealization::OwnTable {
                table: tids[plan],
                left_cols,
                right_cols,
            },
        }
    }
}

#[derive(Clone, Debug)]
enum PlanMembership {
    SubRelation {
        plan: usize,
        key_cols: Vec<u32>,
    },
    OwnKeyLinked {
        plan: usize,
        key_cols: Vec<u32>,
        super_plan: usize,
        is_cols: Vec<u32>,
    },
    LinkTable {
        plan: usize,
        key_cols: Vec<u32>,
        link_plan: usize,
        link_sub_cols: Vec<u32>,
        link_sup_cols: Vec<u32>,
    },
    AbsorbedColumns {
        plan: usize,
        mandatory_cols: Vec<u32>,
    },
    Indicator {
        plan: usize,
        col: u32,
        sub: Option<Box<PlanMembership>>,
    },
}

impl PlanMembership {
    fn finalize(self, tids: &[TableId]) -> SubMembership {
        match self {
            PlanMembership::SubRelation { plan, key_cols } => SubMembership::SubRelation {
                table: tids[plan],
                key_cols,
            },
            PlanMembership::OwnKeyLinked {
                plan,
                key_cols,
                super_plan,
                is_cols,
            } => SubMembership::OwnKeyLinked {
                table: tids[plan],
                key_cols,
                super_table: tids[super_plan],
                is_cols,
            },
            PlanMembership::LinkTable {
                plan,
                key_cols,
                link_plan,
                link_sub_cols,
                link_sup_cols,
            } => SubMembership::LinkTable {
                table: tids[plan],
                key_cols,
                link_table: tids[link_plan],
                link_sub_cols,
                link_sup_cols,
            },
            PlanMembership::AbsorbedColumns {
                plan,
                mandatory_cols,
            } => SubMembership::AbsorbedColumns {
                table: tids[plan],
                mandatory_cols,
            },
            PlanMembership::Indicator { plan, col, sub } => SubMembership::Indicator {
                table: tids[plan],
                col,
                sub: sub.map(|s| Box::new(s.finalize(tids))),
            },
        }
    }
}

struct PlannedFk {
    table: usize,
    cols: Vec<u32>,
    ref_table: usize,
    ref_cols: Vec<u32>,
    site: String,
}

/// Deferred constructor for a constraint whose table ids are not known yet.
type ConstraintBuilder = Box<dyn FnOnce(&[TableId]) -> RelConstraintKind>;

/// A constraint planned before table ids exist.
struct PlannedConstraint {
    kind_trace: TransformKind,
    name: String,
    site: String,
    build: ConstraintBuilder,
}

impl PlannedConstraint {
    fn instantiate(self, tids: &[TableId]) -> RelConstraintKind {
        (self.build)(tids)
    }
}

struct Planner<'a> {
    schema: &'a Schema,
    choice: &'a LexicalChoice,
    options: &'a MappingOptions,
    plans: Vec<TablePlan>,
    /// ot raw -> (plan index, key cols)
    anchor_plan: BTreeMap<u32, (usize, Vec<u32>)>,
    fact_real_plan: Vec<PlanRealization>,
    sub_memb_plan: Vec<Option<PlanMembership>>,
    col_sources: HashMap<(usize, u32), ObjectTypeId>,
    trace: TransformTrace,
    notes: Vec<String>,
    host: Vec<ObjectTypeId>,
    fks: Vec<PlannedFk>,
    extra: Vec<PlannedConstraint>,
    combines: Vec<PlannedCombine>,
}

struct PlannedCombine {
    via: FactTypeId,
    plan: usize,
    det_cols: Vec<u32>,
    dup_cols: Vec<u32>,
    target_plan: usize,
    target_key_cols: Vec<u32>,
    target_src_cols: Vec<u32>,
}

impl<'a> Planner<'a> {
    fn rep_cols_for(
        &mut self,
        plan_idx: usize,
        rep: &LexicalRep,
        name_suffix: Option<&str>,
        nullable: bool,
    ) -> Vec<u32> {
        let names = rep_column_names(self.schema, rep);
        let mut cols = Vec::new();
        for (atom, base) in rep.atoms.iter().zip(names) {
            let name = match name_suffix {
                Some("") | None => base,
                Some(s) => format!("{base}_{s}"),
            };
            let ord = self.plans[plan_idx].push_col(ColSpec {
                name,
                data_type: atom.data_type,
                nullable,
                source_lot: Some(atom.lot),
            });
            self.col_sources.insert((plan_idx, ord), atom.lot);
            cols.push(ord);
        }
        cols
    }

    fn layout_anchors(
        &mut self,
        anchored: &HashSet<u32>,
        _class: &[FactClass],
    ) -> Result<(), MapError> {
        for (oid, ot) in self.schema.object_types() {
            if !anchored.contains(&oid.raw()) {
                continue;
            }
            let plan_idx = self.plans.len();
            self.plans.push(TablePlan {
                name: ot.name.clone(),
                ..TablePlan::default()
            });
            match self.choice.rep_of(oid) {
                Some(rep) => {
                    let rep = rep.clone();
                    let key_cols = self.rep_cols_for(plan_idx, &rep, None, false);
                    self.plans[plan_idx].pk = key_cols.clone();
                    self.anchor_plan.insert(oid.raw(), (plan_idx, key_cols));
                    self.trace.push(
                        TransformKind::RelationalToRelational,
                        "CONSTRUCT ANCHOR RELATION",
                        format!("{} keyed by {}", ot.name, rep.describe(self.schema)),
                        vec![],
                    );
                }
                None => {
                    // NULL ALLOWED: non-homogeneous reference — each partial
                    // scheme becomes a nullable candidate-key group; the
                    // "primary key" spans all of them (nullable, as ORACLE
                    // permits) and a cover-existence rule keeps rows
                    // identifiable.
                    let partials = partial_reps(self.schema, oid);
                    let mut all_cols = Vec::new();
                    let mut groups = Vec::new();
                    for role in &partials {
                        let co = role.co_role();
                        let lot = self.schema.role_player(co);
                        let dt = self
                            .schema
                            .kind_of(lot)
                            .data_type()
                            .expect("partial rep co-player is lexical");
                        let name = attribute_column_name(self.schema, co);
                        let ord = self.plans[plan_idx].push_col(ColSpec {
                            name,
                            data_type: dt,
                            nullable: true,
                            source_lot: Some(lot),
                        });
                        self.col_sources.insert((plan_idx, ord), lot);
                        self.plans[plan_idx].candidate_keys.push(vec![ord]);
                        groups.push(vec![ord]);
                        all_cols.push(ord);
                        // These facts are consumed as (partial) keys.
                        self.fact_real_plan[role.fact.index()] = PlanRealization::KeyOf {
                            plan: plan_idx,
                            anchor: oid,
                            anchor_side: role.side,
                            cols: vec![ord],
                        };
                    }
                    self.plans[plan_idx].pk = all_cols.clone();
                    self.extra.push(PlannedConstraint {
                        kind_trace: TransformKind::RelationalToRelational,
                        name: "NULL ALLOWED REFERENCE COVER".into(),
                        site: ot.name.clone(),
                        build: Box::new({
                            let groups = groups.clone();
                            move |tids| RelConstraintKind::CoverExistence {
                                table: tids[plan_idx],
                                groups,
                            }
                        }),
                    });
                    self.anchor_plan.insert(oid.raw(), (plan_idx, all_cols));
                    self.trace.push(
                        TransformKind::RelationalToRelational,
                        "CONSTRUCT ANCHOR RELATION (NULL ALLOWED)",
                        format!(
                            "{} with {} partial reference groups",
                            ot.name,
                            partials.len()
                        ),
                        vec![],
                    );
                }
            }
        }
        Ok(())
    }

    fn layout_facts(&mut self, class: &[FactClass]) -> Result<(), MapError> {
        // First pass: key facts (fill in KeyOf realisations for total reps).
        for (fid, ft) in self.schema.fact_types() {
            match class[fid.index()] {
                FactClass::Key(anchor) => {
                    let (plan_idx, _) = self.anchor_plan[&anchor.raw()];
                    let side = ft.side_of(anchor).ok_or_else(|| {
                        MapError::new(format!(
                            "key fact {} does not involve its anchor {}",
                            ft.name,
                            self.schema.ot_name(anchor)
                        ))
                    })?;
                    let rep = self
                        .choice
                        .rep_of(anchor)
                        .expect("key class implies rep")
                        .clone();
                    let hop = RoleRef::new(fid, side);
                    let mut cols = Vec::new();
                    for (ai, atom) in rep.atoms.iter().enumerate() {
                        if atom.path.first() == Some(&hop) {
                            // Atom `ai` corresponds to key column `ai`
                            // (rep columns are laid out in atom order).
                            let (_, key_cols) = &self.anchor_plan[&anchor.raw()];
                            cols.push(key_cols[ai]);
                        }
                    }
                    self.fact_real_plan[fid.index()] = PlanRealization::KeyOf {
                        plan: plan_idx,
                        anchor,
                        anchor_side: side,
                        cols,
                    };
                }
                FactClass::Omitted => {
                    self.fact_real_plan[fid.index()] = PlanRealization::Omitted;
                    self.notes.push(format!(
                        "fact type {} omitted from the generated schema by option",
                        ft.name
                    ));
                    self.trace.push(
                        TransformKind::RelationalToRelational,
                        "OMIT TABLE",
                        ft.name.clone(),
                        vec![],
                    );
                }
                _ => {}
            }
        }
        // Second pass: functional attribute groups. Facts already realised
        // by the anchor layout (partial reference keys under NULL ALLOWED)
        // are left alone.
        for (fid, ft) in self.schema.fact_types() {
            if !matches!(self.fact_real_plan[fid.index()], PlanRealization::Pending) {
                continue;
            }
            let FactClass::Functional(anchor, side) = class[fid.index()] else {
                continue;
            };
            let hostot = self.host[anchor.index()];
            let Some(&(plan_idx, ref key_cols)) = self.anchor_plan.get(&hostot.raw()) else {
                // No anchor relation (shouldn't happen): fall back to own table.
                self.layout_own_table(fid)?;
                continue;
            };
            let key_cols = key_cols.clone();
            let value_role = RoleRef::new(fid, side.other());
            let value_player = self.schema.role_player(value_role);
            let total_here = self.schema.is_role_total(RoleRef::new(fid, side));
            // Under TOGETHER, subtype facts land in the host but are always
            // optional there (membership is partial).
            let absorbed = hostot != anchor;
            let optional = match self.options.nulls {
                NullOption::NullNotAllowed => false,
                _ => !total_here || absorbed,
            };
            let value_cols = match self.schema.kind_of(value_player).data_type() {
                Some(dt) => {
                    let name = attribute_column_name(self.schema, value_role);
                    let ord = self.plans[plan_idx].push_col(ColSpec {
                        name,
                        data_type: dt,
                        nullable: optional,
                        source_lot: Some(value_player),
                    });
                    self.col_sources.insert((plan_idx, ord), value_player);
                    vec![ord]
                }
                None => {
                    // Entity-valued: lexicalise through the co-player's rep.
                    let vhost = self.host[value_player.index()];
                    let rep = self
                        .choice
                        .rep_of(vhost)
                        .ok_or_else(|| {
                            MapError::new(format!(
                                "{} is not lexically referable; cannot realise fact {}",
                                self.schema.ot_name(value_player),
                                ft.name
                            ))
                        })?
                        .clone();
                    let role_name = &ft.role(side.other()).name;
                    let cols =
                        self.rep_cols_for(plan_idx, &rep, Some(role_name.as_str()), optional);
                    // FK to the co-player's anchor when it has one.
                    if let Some(&(ref_plan, ref ref_cols)) = self.anchor_plan.get(&vhost.raw()) {
                        self.fks.push(PlannedFk {
                            table: plan_idx,
                            cols: cols.clone(),
                            ref_table: ref_plan,
                            ref_cols: ref_cols.clone(),
                            site: format!(
                                "fact {} references {}",
                                ft.name,
                                self.schema.ot_name(value_player)
                            ),
                        });
                    }
                    cols
                }
            };
            // A 1:1 fact's value columns form a candidate key.
            if self.schema.is_role_unique(value_role) {
                self.plans[plan_idx].candidate_keys.push(value_cols.clone());
            }
            self.trace.push(
                TransformKind::RelationalToRelational,
                "GROUP FUNCTIONAL FACT",
                format!(
                    "fact {} into relation {}",
                    ft.name, self.plans[plan_idx].name
                ),
                vec![],
            );
            self.fact_real_plan[fid.index()] = PlanRealization::Attribute {
                plan: plan_idx,
                anchor: hostot,
                anchor_side: side,
                key_cols,
                value_cols,
                optional,
            };
        }
        // Third pass: own tables.
        for (fid, _) in self.schema.fact_types() {
            if matches!(class[fid.index()], FactClass::Own)
                && matches!(self.fact_real_plan[fid.index()], PlanRealization::Pending)
            {
                self.layout_own_table(fid)?;
            }
        }
        Ok(())
    }

    fn side_cols_for_own(
        &mut self,
        plan_idx: usize,
        fid: FactTypeId,
        side: Side,
    ) -> Result<Vec<u32>, MapError> {
        let ft = self.schema.fact_type(fid);
        let player = ft.player(side);
        match self.schema.kind_of(player).data_type() {
            Some(dt) => {
                let name = attribute_column_name(self.schema, RoleRef::new(fid, side));
                let ord = self.plans[plan_idx].push_col(ColSpec {
                    name,
                    data_type: dt,
                    nullable: false,
                    source_lot: Some(player),
                });
                self.col_sources.insert((plan_idx, ord), player);
                Ok(vec![ord])
            }
            None => {
                let h = self.host[player.index()];
                let rep = self
                    .choice
                    .rep_of(h)
                    .ok_or_else(|| {
                        MapError::new(format!(
                            "{} is not lexically referable; cannot realise fact {}",
                            self.schema.ot_name(player),
                            ft.name
                        ))
                    })?
                    .clone();
                let role_name = ft.role(side).name.clone();
                let suffix = if ft.is_homogeneous() || !role_name.is_empty() {
                    Some(role_name)
                } else {
                    None
                };
                let cols = self.rep_cols_for(plan_idx, &rep, suffix.as_deref(), false);
                if let Some(&(ref_plan, ref ref_cols)) = self.anchor_plan.get(&h.raw()) {
                    self.fks.push(PlannedFk {
                        table: plan_idx,
                        cols: cols.clone(),
                        ref_table: ref_plan,
                        ref_cols: ref_cols.clone(),
                        site: format!(
                            "fact {} references {}",
                            ft.name,
                            self.schema.ot_name(player)
                        ),
                    });
                }
                Ok(cols)
            }
        }
    }

    fn layout_own_table(&mut self, fid: FactTypeId) -> Result<(), MapError> {
        let ft = self.schema.fact_type(fid).clone();
        let plan_idx = self.plans.len();
        self.plans.push(TablePlan {
            name: ft.name.clone(),
            ..TablePlan::default()
        });
        let left_cols = self.side_cols_for_own(plan_idx, fid, Side::Left)?;
        let right_cols = self.side_cols_for_own(plan_idx, fid, Side::Right)?;
        let (lu, ru) = self.schema.fact_multiplicity(fid);
        match (lu, ru) {
            (true, true) => {
                self.plans[plan_idx].pk = left_cols.clone();
                self.plans[plan_idx].candidate_keys.push(right_cols.clone());
            }
            (true, false) => self.plans[plan_idx].pk = left_cols.clone(),
            (false, true) => self.plans[plan_idx].pk = right_cols.clone(),
            (false, false) => {
                let mut pk = left_cols.clone();
                pk.extend(&right_cols);
                self.plans[plan_idx].pk = pk;
            }
        }
        self.trace.push(
            TransformKind::RelationalToRelational,
            "CONSTRUCT FACT RELATION",
            format!("fact {} as its own relation", ft.name),
            vec![],
        );
        self.fact_real_plan[fid.index()] = PlanRealization::OwnTable {
            plan: plan_idx,
            left_cols,
            right_cols,
        };
        Ok(())
    }

    fn layout_sublinks(&mut self, _anchored: &HashSet<u32>) -> Result<(), MapError> {
        for (sid, sl) in self.schema.sublinks() {
            let mut option = self.options.sublink_option(sid);
            // NULL NOT ALLOWED forbids the nullable absorbed columns of
            // TOGETHER; fall back to SEPARATE (documented in DESIGN.md).
            if option == SublinkOption::Together && self.options.nulls == NullOption::NullNotAllowed
            {
                self.notes.push(format!(
                    "sublink {} IS-A {}: TOGETHER incompatible with NULL NOT ALLOWED; using SEPARATE",
                    self.schema.ot_name(sl.sub),
                    self.schema.ot_name(sl.sup)
                ));
                option = SublinkOption::Separate;
            }
            let sup_host = self.host[sl.sup.index()];
            let Some(&(sup_plan, ref sup_keys)) = self.anchor_plan.get(&sup_host.raw()) else {
                self.notes.push(format!(
                    "sublink {} IS-A {} has no super-relation; membership unrepresented",
                    self.schema.ot_name(sl.sub),
                    self.schema.ot_name(sl.sup)
                ));
                continue;
            };
            let sup_keys = sup_keys.clone();
            let site = format!(
                "{} IS-A {}",
                self.schema.ot_name(sl.sub),
                self.schema.ot_name(sl.sup)
            );
            match option {
                SublinkOption::Together => {
                    // Facts were already redirected via host; membership is
                    // the non-nullity of the mandatory absorbed columns.
                    let mandatory = self.absorbed_mandatory_cols(sl.sub, sup_plan);
                    if mandatory.is_empty() {
                        // Nothing mandatory to hang membership on: indicator.
                        let col = self.add_indicator(sup_plan, sl.sub);
                        self.sub_memb_plan[sid.index()] = Some(PlanMembership::Indicator {
                            plan: sup_plan,
                            col,
                            sub: None,
                        });
                        self.notes.push(format!(
                            "sublink {site}: no mandatory subtype facts; indicator attribute added"
                        ));
                        self.trace.push(
                            TransformKind::RelationalToRelational,
                            "SUBOT & SUPOT TOGETHER (INDICATOR FALLBACK)",
                            site,
                            vec![],
                        );
                    } else {
                        if mandatory.len() > 1 {
                            let m = mandatory.clone();
                            self.extra.push(PlannedConstraint {
                                kind_trace: TransformKind::RelationalToRelational,
                                name: "SUBOT & SUPOT TOGETHER".into(),
                                site: site.clone(),
                                build: Box::new(move |tids| RelConstraintKind::EqualExistence {
                                    table: tids[sup_plan],
                                    cols: m,
                                }),
                            });
                        }
                        // Optional subtype facts depend on membership.
                        let dependents = self.absorbed_optional_cols(sl.sub, sup_plan);
                        let on = mandatory[0];
                        for dep in dependents {
                            self.extra.push(PlannedConstraint {
                                kind_trace: TransformKind::RelationalToRelational,
                                name: "SUBOT & SUPOT TOGETHER (DEPENDENT EXISTENCE)".into(),
                                site: site.clone(),
                                build: Box::new(move |tids| {
                                    RelConstraintKind::DependentExistence {
                                        table: tids[sup_plan],
                                        dependent: dep,
                                        on,
                                    }
                                }),
                            });
                        }
                        self.sub_memb_plan[sid.index()] = Some(PlanMembership::AbsorbedColumns {
                            plan: sup_plan,
                            mandatory_cols: mandatory,
                        });
                        self.trace.push(
                            TransformKind::RelationalToRelational,
                            "SUBOT & SUPOT TOGETHER",
                            site,
                            vec![],
                        );
                    }
                }
                SublinkOption::Separate | SublinkOption::IndicatorForSupot => {
                    let Some(&(sub_plan, ref sub_keys)) = self.anchor_plan.get(&sl.sub.raw())
                    else {
                        // Subtype without facts of its own.
                        if option == SublinkOption::IndicatorForSupot {
                            // fig. 6: Is_Invited_Paper — indicator only.
                            let col = self.add_indicator(sup_plan, sl.sub);
                            self.sub_memb_plan[sid.index()] = Some(PlanMembership::Indicator {
                                plan: sup_plan,
                                col,
                                sub: None,
                            });
                            self.trace.push(
                                TransformKind::RelationalToRelational,
                                "SUBOT INDICATOR FOR SUPOT",
                                site,
                                vec![],
                            );
                            continue;
                        }
                        self.notes.push(format!(
                            "sublink {site}: subtype not anchored; membership unrepresented"
                        ));
                        continue;
                    };
                    let sub_keys = sub_keys.clone();
                    let sub_rep = self.choice.rep_of(sl.sub);
                    let sup_rep = self.choice.rep_of(sup_host);
                    let same_scheme = match (sub_rep, sup_rep) {
                        (Some(a), Some(b)) => a.atoms == b.atoms,
                        _ => false,
                    };
                    let base = if same_scheme {
                        // FK sub.key -> super.key.
                        self.fks.push(PlannedFk {
                            table: sub_plan,
                            cols: sub_keys.clone(),
                            ref_table: sup_plan,
                            ref_cols: sup_keys.clone(),
                            site: site.clone(),
                        });
                        PlanMembership::SubRelation {
                            plan: sub_plan,
                            key_cols: sub_keys.clone(),
                        }
                    } else if matches!(
                        self.options.nulls,
                        NullOption::NullNotAllowed | NullOption::NullNotInKeys
                    ) {
                        // Nullable `_Is` columns (or nullable candidate
                        // keys) are forbidden: pair the keys in a dedicated
                        // link table instead.
                        let sub_rep = self
                            .choice
                            .rep_of(sl.sub)
                            .expect("anchored subtype has rep")
                            .clone();
                        let sup_rep = self
                            .choice
                            .rep_of(sup_host)
                            .expect("anchored supertype has rep")
                            .clone();
                        let link_plan = self.plans.len();
                        self.plans.push(TablePlan {
                            name: format!(
                                "{}_is_{}",
                                self.schema.ot_name(sl.sub),
                                self.schema.ot_name(sup_host)
                            ),
                            ..TablePlan::default()
                        });
                        let link_sub_cols = self.rep_cols_for(link_plan, &sub_rep, None, false);
                        let sup_suffix = self.schema.ot_name(sup_host).to_owned();
                        let link_sup_cols = self.rep_cols_for(
                            link_plan,
                            &sup_rep,
                            Some(sup_suffix.as_str()),
                            false,
                        );
                        self.plans[link_plan].pk = link_sub_cols.clone();
                        self.plans[link_plan]
                            .candidate_keys
                            .push(link_sup_cols.clone());
                        self.fks.push(PlannedFk {
                            table: link_plan,
                            cols: link_sub_cols.clone(),
                            ref_table: sub_plan,
                            ref_cols: sub_keys.clone(),
                            site: site.clone(),
                        });
                        self.fks.push(PlannedFk {
                            table: link_plan,
                            cols: link_sup_cols.clone(),
                            ref_table: sup_plan,
                            ref_cols: sup_keys.clone(),
                            site: site.clone(),
                        });
                        // Lossless rule: every sub-relation key is paired.
                        let (kc, lc) = (sub_keys.clone(), link_sub_cols.clone());
                        self.extra.push(PlannedConstraint {
                            kind_trace: TransformKind::RelationalToRelational,
                            name: "SEPARATE SUB/SUPER RELATION (LINK TABLE)".into(),
                            site: site.clone(),
                            build: Box::new(move |tids| RelConstraintKind::EqualityView {
                                left: ColumnSelection::of(tids[sub_plan], kc),
                                right: ColumnSelection::of(tids[link_plan], lc),
                            }),
                        });
                        PlanMembership::LinkTable {
                            plan: sub_plan,
                            key_cols: sub_keys.clone(),
                            link_plan,
                            link_sub_cols,
                            link_sup_cols,
                        }
                    } else {
                        // Own reference scheme: `_Is` columns in the super
                        // relation + FK + equality view (fig. 6, Alt. 3).
                        let rep = self
                            .choice
                            .rep_of(sl.sub)
                            .expect("anchored subtype has rep")
                            .clone();
                        let names = rep_column_names(self.schema, &rep);
                        let mut is_cols = Vec::new();
                        for (atom, base_name) in rep.atoms.iter().zip(names) {
                            let ord = self.plans[sup_plan].push_col(ColSpec {
                                name: sublink_is_column_name(&base_name),
                                data_type: atom.data_type,
                                nullable: true,
                                source_lot: Some(atom.lot),
                            });
                            self.col_sources.insert((sup_plan, ord), atom.lot);
                            is_cols.push(ord);
                        }
                        self.plans[sup_plan].candidate_keys.push(is_cols.clone());
                        self.fks.push(PlannedFk {
                            table: sub_plan,
                            cols: sub_keys.clone(),
                            ref_table: sup_plan,
                            ref_cols: is_cols.clone(),
                            site: site.clone(),
                        });
                        let (kc, ic) = (sub_keys.clone(), is_cols.clone());
                        self.extra.push(PlannedConstraint {
                            kind_trace: TransformKind::RelationalToRelational,
                            name: "SEPARATE SUB/SUPER RELATION".into(),
                            site: site.clone(),
                            build: Box::new(move |tids| RelConstraintKind::EqualityView {
                                left: ColumnSelection::of(tids[sub_plan], kc),
                                right: ColumnSelection::of(tids[sup_plan], ic.clone())
                                    .where_not_null(ic),
                            }),
                        });
                        PlanMembership::OwnKeyLinked {
                            plan: sub_plan,
                            key_cols: sub_keys.clone(),
                            super_plan: sup_plan,
                            is_cols,
                        }
                    };
                    if option == SublinkOption::IndicatorForSupot {
                        let col = self.add_indicator(sup_plan, sl.sub);
                        // Conditional equality: indicator mirrors membership.
                        let key_cols = sup_keys.clone();
                        let memb = base.clone();
                        let schema = self.schema;
                        let sub_sel_builder: ConstraintBuilder = match &memb {
                            PlanMembership::SubRelation { plan, key_cols: kc } => {
                                let (p, kc) = (*plan, kc.clone());
                                let _ = schema;
                                Box::new(move |tids: &[TableId]| {
                                    RelConstraintKind::ConditionalEquality {
                                        table: tids[sup_plan],
                                        indicator: col,
                                        when_value: Value::Bool(true),
                                        key_cols,
                                        sub: ColumnSelection::of(tids[p], kc),
                                    }
                                })
                            }
                            PlanMembership::OwnKeyLinked { is_cols, .. } => {
                                let ic = is_cols.clone();
                                let kc2 = sup_keys.clone();
                                Box::new(move |tids: &[TableId]| {
                                    RelConstraintKind::ConditionalEquality {
                                        table: tids[sup_plan],
                                        indicator: col,
                                        when_value: Value::Bool(true),
                                        key_cols,
                                        sub: ColumnSelection::of(tids[sup_plan], kc2)
                                            .where_not_null(ic),
                                    }
                                })
                            }
                            PlanMembership::LinkTable {
                                link_plan,
                                link_sup_cols,
                                ..
                            } => {
                                let (lp, lc) = (*link_plan, link_sup_cols.clone());
                                Box::new(move |tids: &[TableId]| {
                                    RelConstraintKind::ConditionalEquality {
                                        table: tids[sup_plan],
                                        indicator: col,
                                        when_value: Value::Bool(true),
                                        key_cols,
                                        sub: ColumnSelection::of(tids[lp], lc),
                                    }
                                })
                            }
                            _ => unreachable!("base cannot be absorbed/indicator"),
                        };
                        self.extra.push(PlannedConstraint {
                            kind_trace: TransformKind::RelationalToRelational,
                            name: "SUBOT INDICATOR FOR SUPOT".into(),
                            site: site.clone(),
                            build: sub_sel_builder,
                        });
                        self.sub_memb_plan[sid.index()] = Some(PlanMembership::Indicator {
                            plan: sup_plan,
                            col,
                            sub: Some(Box::new(base)),
                        });
                        self.trace.push(
                            TransformKind::RelationalToRelational,
                            "SUBOT INDICATOR FOR SUPOT",
                            site,
                            vec![],
                        );
                    } else {
                        self.sub_memb_plan[sid.index()] = Some(base);
                        self.trace.push(
                            TransformKind::RelationalToRelational,
                            "SUBOT & SUPOT SEPARATE",
                            site,
                            vec![],
                        );
                    }
                }
            }
        }
        Ok(())
    }

    fn add_indicator(&mut self, plan: usize, sub: ObjectTypeId) -> u32 {
        let name = indicator_column_name(self.schema, sub);

        self.plans[plan].push_col(ColSpec {
            name,
            data_type: DataType::Boolean,
            nullable: false,
            source_lot: None,
        })
    }

    /// Columns in the host plan realising the subtype's mandatory content:
    /// its total facts and (if distinct) its own reference columns.
    fn absorbed_mandatory_cols(&self, sub: ObjectTypeId, host_plan: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for (fid, _) in self.schema.fact_types() {
            if let PlanRealization::Attribute {
                plan,
                anchor_side,
                value_cols,
                ..
            } = &self.fact_real_plan[fid.index()]
            {
                if *plan != host_plan {
                    continue;
                }
                let anchor_role = RoleRef::new(fid, *anchor_side);
                if self.schema.role_player(anchor_role) == sub
                    && self.schema.is_role_total(anchor_role)
                {
                    out.extend(value_cols.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Columns in the host plan realising the subtype's optional facts.
    fn absorbed_optional_cols(&self, sub: ObjectTypeId, host_plan: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for (fid, _) in self.schema.fact_types() {
            if let PlanRealization::Attribute {
                plan,
                anchor_side,
                value_cols,
                ..
            } = &self.fact_real_plan[fid.index()]
            {
                if *plan != host_plan {
                    continue;
                }
                let anchor_role = RoleRef::new(fid, *anchor_side);
                if self.schema.role_player(anchor_role) == sub
                    && !self.schema.is_role_total(anchor_role)
                {
                    out.extend(value_cols.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Applies the denormalisation directives: absorb the attribute columns
    /// of the target of a functional fact into the source anchor's relation
    /// (deliberate redundancy, controlled by an equality lossless rule).
    fn apply_combines(&mut self, _class: &[FactClass]) -> Result<(), MapError> {
        for directive in &self.options.combine {
            let fid = directive.via;
            let PlanRealization::Attribute {
                plan,
                anchor_side,
                value_cols,
                optional,
                ..
            } = self.fact_real_plan[fid.index()].clone()
            else {
                self.notes.push(format!(
                    "combine directive on fact {} ignored: not an attribute fact",
                    self.schema.fact_type(fid).name
                ));
                continue;
            };
            let value_role = RoleRef::new(fid, anchor_side.other());
            let target = self.schema.role_player(value_role);
            let th = self.host[target.index()];
            let Some(&(target_plan, ref target_keys)) = self.anchor_plan.get(&th.raw()) else {
                self.notes.push(format!(
                    "combine directive on fact {} ignored: {} has no relation",
                    self.schema.fact_type(fid).name,
                    self.schema.ot_name(target)
                ));
                continue;
            };
            let target_keys = target_keys.clone();
            // Copy the target's non-key attribute columns into the source
            // plan, nullable (the source row may lack a target).
            let mut copied = Vec::new();
            let target_cols: Vec<(u32, ColSpec)> = self.plans[target_plan]
                .cols
                .iter()
                .enumerate()
                .map(|(i, c)| (i as u32, c.clone()))
                .filter(|(i, _)| !target_keys.contains(i))
                .collect();
            for (tcol, spec) in target_cols {
                let mut spec = spec;
                spec.name = format!("{}_{}", self.plans[target_plan].name, spec.name);
                spec.nullable = true;
                let src_lot = spec.source_lot;
                let ord = self.plans[plan].push_col(spec);
                if let Some(lot) = src_lot {
                    self.col_sources.insert((plan, ord), lot);
                }
                copied.push((tcol, ord));
            }
            if copied.is_empty() {
                continue;
            }
            self.combines.push(PlannedCombine {
                via: fid,
                plan,
                det_cols: value_cols.clone(),
                dup_cols: copied.iter().map(|(_, o)| *o).collect(),
                target_plan,
                target_key_cols: target_keys.clone(),
                target_src_cols: copied.iter().map(|(tc, _)| *tc).collect(),
            });
            // Lossless rule: the duplicated columns agree with the target
            // relation (equality between the joined projections).
            let vc = value_cols.clone();
            let dup_cols: Vec<u32> = copied.iter().map(|(_, o)| *o).collect();
            let mut tsel_cols = target_keys.clone();
            tsel_cols.extend(copied.iter().map(|(t, _)| *t));
            let mut ssel_cols = vc.clone();
            ssel_cols.extend(dup_cols.clone());
            let mut filter = vc.clone();
            filter.extend(dup_cols.clone());
            let opt = optional;
            self.extra.push(PlannedConstraint {
                kind_trace: TransformKind::RelationalToRelational,
                name: "COMBINE TABLES (DENORMALISE)".into(),
                site: self.schema.fact_type(fid).name.clone(),
                build: Box::new(move |tids| RelConstraintKind::SubsetView {
                    sub: if opt {
                        ColumnSelection::of(tids[plan], ssel_cols).where_not_null(filter)
                    } else {
                        ColumnSelection::of(tids[plan], ssel_cols).where_not_null(dup_cols)
                    },
                    sup: ColumnSelection::of(tids[target_plan], tsel_cols),
                }),
            });
            self.trace.push(
                TransformKind::RelationalToRelational,
                "COMBINE TABLES (DENORMALISE)",
                format!(
                    "fact {} duplicates {} attributes into {}",
                    self.schema.fact_type(fid).name,
                    self.plans[target_plan].name.clone(),
                    self.plans[plan].name.clone()
                ),
                vec![],
            );
        }
        Ok(())
    }
}

//! # ridl-core — RIDL-M, the rule-driven mapper
//!
//! The kernel of RIDL\* (§3.3, §4): takes a binary conceptual schema and
//! generates a relational data schema "with additional constraint
//! specifications for the semantics given in the binary conceptual schema",
//! under the control of **mapping options** exercised by the database
//! engineer, and driven by a rule base composing basic schema
//! transformations:
//!
//! * [`options`] — the null-value options (§4.2.1), sublink mapping options
//!   (§4.2.2, global with per-sublink overrides), lexical representation
//!   options (§4.2.3), table omission and denormalisation directives;
//! * [`lexical`] — choice of naming conventions and the paper's column
//!   naming style (`Person_presenting`, `Paper_ProgramId_Is`, …);
//! * [`grouping`] — the stepwise synthesis proper, recording every basic
//!   transformation in a trace;
//! * [`viewcons`] — carrying the binary constraints that have no classical
//!   relational counterpart into extended view constraints (`C_EQ$`,
//!   `C_DE$`, `C_EE$`, `C_CEQ$`, …), including the **lossless rules**;
//! * [`state_map`] — the executable schema transformation `g` and its
//!   inverse: populations map to relational states and back, which is how
//!   the test-suite demonstrates state equivalence (Definitions 1–2, §4.1);
//! * [`map_report`] — the forwards and backwards map report "essential for
//!   application programmers" (§4.3);
//! * [`rulebase`] — the externalised rules driving the engine, including the
//!   query-information-driven denormalisation pack the paper lists as
//!   current research (§5);
//! * [`workbench`] — the RIDL\* facade tying analyzer, mapper and SQL
//!   generation together.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod grouping;
pub mod lexical;
pub mod lineage;
pub mod map_report;
pub mod options;
pub mod rulebase;
pub mod state_map;
pub mod viewcons;
pub mod workbench;

pub use grouping::{map_schema, FactRealization, MapError, MappingOutput, SubMembership};
pub use lineage::{BrmSource, Lineage, LineageEntry};
pub use map_report::MapReport;
pub use options::{MappingOptions, NullOption, SublinkOption};
pub use workbench::{MapProfile, Workbench};

//! Column-level mapping lineage: from relational objects back to BRM sources.
//!
//! RIDL-M composes basic lossless transformations; the [`TransformTrace`]
//! records *what happened*, but a designer debugging a generated schema asks
//! the inverse question: *where did this table / column / constraint come
//! from?* [`Lineage::derive`] answers it post-hoc from a [`MappingOutput`],
//! attributing every relational object to one or more BRM sources — the
//! anchored object type, the fact-type role a column realises, the sublink
//! behind an `_Is` or indicator column, the binary constraint a view
//! constraint carries — together with the trace steps that produced it.
//!
//! The derivation is a pure function of the mapping output: it reads the
//! structures the mapper already records for the map report (`anchors`,
//! `fact_real`, `sub_memb`, `col_sources`, `constraint_map`, `combines`)
//! and the transform trace, so it stays correct under every null-value and
//! sublink option without the mapper carrying extra bookkeeping.
//!
//! Surfaced through [`crate::Workbench::lineage`] and the `ridl lineage`
//! CLI subcommand.

use std::collections::BTreeMap;
use std::fmt;

use ridl_brm::{ConstraintId, FactTypeId, ObjectTypeId, Schema, Side, SublinkId};
use ridl_transform::trace::TransformTrace;

use crate::grouping::{ConstraintMapping, FactRealization, MappingOutput, SubMembership};
use crate::map_report::{describe_constraint, describe_fact, describe_sublink, ot_kind_word};

/// A BRM-level origin of a relational object.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BrmSource {
    /// An object type (the anchor behind a relation or key column).
    ObjectType {
        /// `LOT` / `NOLOT` / `LOT-NOLOT`.
        kind: &'static str,
        /// The object type's name.
        name: String,
    },
    /// One role of a fact type (the role a column's values realise).
    FactRole {
        /// The paper-style fact description.
        fact: String,
        /// The played role's name (may be empty for unnamed roles).
        role: String,
        /// The role player's name.
        player: String,
    },
    /// A whole fact type (own-table facts, combine directives).
    Fact {
        /// The paper-style fact description.
        fact: String,
    },
    /// A sublink (behind `_Is` columns, link tables and indicators).
    Sublink {
        /// The paper-style sublink description.
        text: String,
    },
    /// A binary constraint carried into the relational schema.
    Constraint {
        /// The paper-style constraint description.
        text: String,
    },
}

impl fmt::Display for BrmSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrmSource::ObjectType { kind, name } => write!(f, "{kind} {name}"),
            BrmSource::FactRole { fact, role, player } => {
                if role.is_empty() {
                    write!(f, "ROLE ON {player} OF {fact}")
                } else {
                    write!(f, "ROLE {role} ON {player} OF {fact}")
                }
            }
            BrmSource::Fact { fact } => write!(f, "{fact}"),
            BrmSource::Sublink { text } => write!(f, "{text}"),
            BrmSource::Constraint { text } => write!(f, "{text}"),
        }
    }
}

/// The lineage of one relational object.
#[derive(Clone, Debug)]
pub struct LineageEntry {
    /// The relational object: `Table`, `Table.Column` or a constraint name.
    pub target: String,
    /// Its BRM sources (deduplicated, in discovery order).
    pub sources: Vec<BrmSource>,
    /// Indices into [`TransformTrace::steps`] of the applied transformations
    /// that produced it (ascending).
    pub steps: Vec<usize>,
}

impl LineageEntry {
    fn new(target: String) -> Self {
        Self {
            target,
            sources: Vec::new(),
            steps: Vec::new(),
        }
    }

    fn add_source(&mut self, s: BrmSource) {
        if !self.sources.contains(&s) {
            self.sources.push(s);
        }
    }

    fn add_step(&mut self, i: usize) {
        if let Err(pos) = self.steps.binary_search(&i) {
            self.steps.insert(pos, i);
        }
    }
}

/// Column-level lineage of a mapped schema: every table, column and
/// relational constraint attributed to its BRM sources and trace steps.
#[derive(Clone, Debug)]
pub struct Lineage {
    /// Per-table lineage, in table order.
    pub tables: Vec<LineageEntry>,
    /// Per-column lineage (`Table.Column` targets), in table/column order.
    pub columns: Vec<LineageEntry>,
    /// Per-constraint lineage, in constraint order.
    pub constraints: Vec<LineageEntry>,
}

fn ot_source(schema: &Schema, ot: ObjectTypeId) -> BrmSource {
    BrmSource::ObjectType {
        kind: ot_kind_word(schema.kind_of(ot)),
        name: schema.ot_name(ot).to_owned(),
    }
}

fn fact_role_source(schema: &Schema, fid: FactTypeId, side: Side) -> BrmSource {
    let ft = schema.fact_type(fid);
    let role = ft.role(side);
    BrmSource::FactRole {
        fact: describe_fact(schema, fid),
        role: role.name.clone(),
        player: schema.ot_name(role.player).to_owned(),
    }
}

fn fact_source(schema: &Schema, fid: FactTypeId) -> BrmSource {
    BrmSource::Fact {
        fact: describe_fact(schema, fid),
    }
}

fn sublink_source(schema: &Schema, sid: SublinkId) -> BrmSource {
    BrmSource::Sublink {
        text: describe_sublink(schema, sid),
    }
}

impl Lineage {
    /// Derives the full lineage from a mapping output.
    pub fn derive(out: &MappingOutput) -> Lineage {
        let schema = &out.schema;
        let rel = &out.rel;
        // Accumulators keyed by raw table id / (table, column).
        let mut tables: BTreeMap<u32, LineageEntry> = rel
            .tables()
            .map(|(tid, t)| (tid.0, LineageEntry::new(t.name.clone())))
            .collect();
        let mut columns: BTreeMap<(u32, u32), LineageEntry> = rel
            .tables()
            .flat_map(|(tid, t)| {
                t.columns.iter().enumerate().map(move |(c, col)| {
                    (
                        (tid.0, c as u32),
                        LineageEntry::new(format!("{}.{}", t.name, col.name)),
                    )
                })
            })
            .collect();

        // 1. Anchor relations: table and key columns come from the anchored
        //    object type.
        for (&raw, info) in &out.anchors {
            let ot = ObjectTypeId::from_raw(raw);
            let src = ot_source(schema, ot);
            if let Some(e) = tables.get_mut(&info.table.0) {
                e.add_source(src.clone());
            }
            for &c in &info.key_cols {
                if let Some(e) = columns.get_mut(&(info.table.0, c)) {
                    e.add_source(src.clone());
                }
            }
        }

        // 2. Lexicalised columns: each records the LOT it holds.
        for (&(traw, c), &lot) in &out.col_sources {
            if let Some(e) = columns.get_mut(&(traw, c)) {
                e.add_source(ot_source(schema, lot));
            }
        }

        // 3. Fact realisations: value/key columns realise a role; own-table
        //    facts source their whole table.
        for (i, fr) in out.fact_real.iter().enumerate() {
            let fid = FactTypeId::from_raw(i as u32);
            match fr {
                FactRealization::KeyOf {
                    table,
                    anchor_side,
                    cols,
                    ..
                } => {
                    let src = fact_role_source(schema, fid, anchor_side.other());
                    for &c in cols {
                        if let Some(e) = columns.get_mut(&(table.0, c)) {
                            e.add_source(src.clone());
                        }
                    }
                }
                FactRealization::Attribute {
                    table,
                    anchor_side,
                    value_cols,
                    ..
                } => {
                    let src = fact_role_source(schema, fid, anchor_side.other());
                    for &c in value_cols {
                        if let Some(e) = columns.get_mut(&(table.0, c)) {
                            e.add_source(src.clone());
                        }
                    }
                }
                FactRealization::OwnTable {
                    table,
                    left_cols,
                    right_cols,
                } => {
                    if let Some(e) = tables.get_mut(&table.0) {
                        e.add_source(fact_source(schema, fid));
                    }
                    for (side, cols) in [(Side::Left, left_cols), (Side::Right, right_cols)] {
                        let src = fact_role_source(schema, fid, side);
                        for &c in cols {
                            if let Some(e) = columns.get_mut(&(table.0, c)) {
                                e.add_source(src.clone());
                            }
                        }
                    }
                }
                FactRealization::Omitted => {}
            }
        }

        // 4. Sublink memberships: `_Is` columns, link tables and indicator
        //    columns owe their existence to the sublink.
        for (i, sm) in out.sub_memb.iter().enumerate() {
            let Some(m) = sm else { continue };
            let sid = SublinkId::from_raw(i as u32);
            let src = sublink_source(schema, sid);
            let mut cur = Some(m);
            while let Some(m) = cur {
                cur = None;
                match m {
                    SubMembership::SubRelation { table, .. } => {
                        if let Some(e) = tables.get_mut(&table.0) {
                            e.add_source(src.clone());
                        }
                    }
                    SubMembership::OwnKeyLinked {
                        super_table,
                        is_cols,
                        ..
                    } => {
                        for &c in is_cols {
                            if let Some(e) = columns.get_mut(&(super_table.0, c)) {
                                e.add_source(src.clone());
                            }
                        }
                    }
                    SubMembership::LinkTable {
                        link_table,
                        link_sub_cols,
                        link_sup_cols,
                        ..
                    } => {
                        if let Some(e) = tables.get_mut(&link_table.0) {
                            e.add_source(src.clone());
                        }
                        for &c in link_sub_cols.iter().chain(link_sup_cols) {
                            if let Some(e) = columns.get_mut(&(link_table.0, c)) {
                                e.add_source(src.clone());
                            }
                        }
                    }
                    SubMembership::AbsorbedColumns {
                        table,
                        mandatory_cols,
                    } => {
                        for &c in mandatory_cols {
                            if let Some(e) = columns.get_mut(&(table.0, c)) {
                                e.add_source(src.clone());
                            }
                        }
                    }
                    SubMembership::Indicator { table, col, sub } => {
                        if let Some(e) = columns.get_mut(&(table.0, *col)) {
                            e.add_source(src.clone());
                        }
                        cur = sub.as_deref();
                    }
                }
            }
        }

        // 5. Combine directives: duplicated columns additionally trace to
        //    the functional fact they denormalise along.
        for rec in &out.combines {
            let src = fact_source(schema, rec.via);
            for &c in rec.det_cols.iter().chain(&rec.dup_cols) {
                if let Some(e) = columns.get_mut(&(rec.table.0, c)) {
                    e.add_source(src.clone());
                }
            }
            // Duplicated columns mirror the target's source columns: copy
            // their object-type sources too (apply_combines records LOT
            // sources only when the target column had one).
            for (&d, &s) in rec.dup_cols.iter().zip(&rec.target_src_cols) {
                let copied: Vec<BrmSource> = columns
                    .get(&(rec.target_table.0, s))
                    .map(|e| e.sources.clone())
                    .unwrap_or_default();
                if let Some(e) = columns.get_mut(&(rec.table.0, d)) {
                    for src in copied {
                        e.add_source(src);
                    }
                }
            }
        }

        // 6. Trace steps: attach each applied transformation to the tables
        //    (and their columns) whose name or source names its site
        //    mentions.
        for (i, step) in out.trace.steps().iter().enumerate() {
            for (raw, e) in tables.iter_mut() {
                let hit = site_mentions(&step.site, &e.target)
                    || e.sources.iter().any(|s| match s {
                        BrmSource::ObjectType { name, .. } => site_mentions(&step.site, name),
                        _ => false,
                    });
                if hit {
                    e.add_step(i);
                    for (&(traw, _), ce) in columns.iter_mut() {
                        if traw == *raw {
                            ce.add_step(i);
                        }
                    }
                }
            }
        }

        // 7. Relational constraints: exact step via the lossless-rule name;
        //    binary-constraint sources via the constraint map; object-type
        //    sources from the tables the constraint spans.
        let mut constraints: Vec<LineageEntry> = rel
            .constraints
            .iter()
            .map(|c| {
                let mut e = LineageEntry::new(c.name.clone());
                if let Some(i) = out.trace.step_for_rule(&c.name) {
                    e.add_step(i);
                }
                for t in c.kind.tables() {
                    if let Some(te) = tables.get(&t.0) {
                        for src in &te.sources {
                            e.add_source(src.clone());
                        }
                    }
                }
                e
            })
            .collect();
        for (ci, m) in out.constraint_map.iter().enumerate() {
            if let ConstraintMapping::Relational(names) = m {
                let cid = ConstraintId::from_raw(ci as u32);
                let src = BrmSource::Constraint {
                    text: describe_constraint(schema, cid),
                };
                for n in names {
                    if let Some(e) = constraints.iter_mut().find(|e| &e.target == n) {
                        e.add_source(src.clone());
                    }
                }
            }
        }

        Lineage {
            tables: tables.into_values().collect(),
            columns: columns.into_values().collect(),
            constraints,
        }
    }

    /// The lineage of a table, by name.
    pub fn table(&self, name: &str) -> Option<&LineageEntry> {
        self.tables.iter().find(|e| e.target == name)
    }

    /// The lineage of a column, by `Table`/`Column` names.
    pub fn column(&self, table: &str, column: &str) -> Option<&LineageEntry> {
        let target = format!("{table}.{column}");
        self.columns.iter().find(|e| e.target == target)
    }

    /// The lineage of a relational constraint, by name.
    pub fn constraint(&self, name: &str) -> Option<&LineageEntry> {
        self.constraints.iter().find(|e| e.target == name)
    }

    /// Targets with no BRM source at all — empty on a complete derivation
    /// (asserted by `tests/lineage.rs` across the mapping options).
    pub fn unresolved(&self) -> Vec<&str> {
        self.tables
            .iter()
            .chain(&self.columns)
            .chain(&self.constraints)
            .filter(|e| e.sources.is_empty())
            .map(|e| e.target.as_str())
            .collect()
    }

    /// Renders the full lineage report.
    pub fn render(&self, trace: &TransformTrace) -> String {
        self.render_filtered(trace, None, None)
    }

    /// Renders the lineage of one table (and optionally one column), or
    /// everything when `table` is `None`.
    pub fn render_filtered(
        &self,
        trace: &TransformTrace,
        table: Option<&str>,
        column: Option<&str>,
    ) -> String {
        let mut s = String::from("-- LINEAGE (BRM provenance of the mapped schema)\n");
        let mut shown = false;
        for te in &self.tables {
            if let Some(t) = table {
                if te.target != t {
                    continue;
                }
            }
            if column.is_none() {
                shown = true;
                render_entry(&mut s, "TABLE", te, 3, trace);
            }
            let prefix = format!("{}.", te.target);
            for ce in &self.columns {
                if !ce.target.starts_with(&prefix) {
                    continue;
                }
                if let Some(c) = column {
                    if ce.target[prefix.len()..] != *c {
                        continue;
                    }
                }
                shown = true;
                render_entry(&mut s, "COLUMN", ce, 6, trace);
            }
        }
        if table.is_none() && column.is_none() {
            s.push_str("-- CONSTRAINT LINEAGE\n");
            for e in &self.constraints {
                shown = true;
                render_entry(&mut s, "CONSTRAINT", e, 3, trace);
            }
        }
        if !shown {
            s.push_str("   (no matching table or column)\n");
        }
        s
    }
}

/// Whether `site` mentions `name` as a whole word (names contain `_` and
/// alphanumerics; neighbours must not extend the identifier).
fn site_mentions(site: &str, name: &str) -> bool {
    if name.is_empty() {
        return false;
    }
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = site[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let left_ok = start == 0 || !site[..start].chars().next_back().is_some_and(ident);
        let right_ok = end == site.len() || !site[end..].chars().next().is_some_and(ident);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

fn render_entry(
    s: &mut String,
    kind: &str,
    e: &LineageEntry,
    indent: usize,
    trace: &TransformTrace,
) {
    let pad = " ".repeat(indent);
    s.push_str(&format!("{pad}{kind} {}\n", e.target));
    if e.sources.is_empty() {
        s.push_str(&format!("{pad}   <= (unresolved: no BRM source)\n"));
    }
    for src in &e.sources {
        s.push_str(&format!("{pad}   <= {src}\n"));
    }
    for &i in &e.steps {
        if let Some(step) = trace.steps().get(i) {
            s.push_str(&format!(
                "{pad}   via step {i}: {} AT {}\n",
                step.name, step.site
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_mention_is_word_bounded() {
        assert!(site_mentions("Paper keyed by Paper_Id", "Paper"));
        assert!(site_mentions("Paper keyed by Paper_Id", "Paper_Id"));
        assert!(!site_mentions("Paper_Id only", "Paper"));
        assert!(!site_mentions("", "Paper"));
        assert!(!site_mentions("Paper", ""));
        assert!(site_mentions("Invited_Paper IS-A Paper", "Invited_Paper"));
        assert!(site_mentions("Invited_Paper IS-A Paper", "Paper"));
    }
}

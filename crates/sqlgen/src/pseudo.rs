//! Pseudo-SQL rendering of the extended constraints, in the paper's style
//! (§4.2.2, §4.3): equality view constraints, dependent/equal existence
//! CHECKs, conditional equality, and the rest. The renderer produces bare
//! text; [`crate::render`] decides whether it becomes a live clause or a
//! comment block per dialect.

use ridl_brm::Value;
use ridl_relational::{ColumnSelection, RelConstraintKind, RelSchema};

fn col(rel: &RelSchema, table: ridl_relational::TableId, c: u32) -> &str {
    rel.table(table).column(c).name.as_str()
}

/// Renders a selection as the paper's parenthesised SELECT block.
pub fn selection_block(rel: &RelSchema, sel: &ColumnSelection, indent: &str) -> String {
    let names: Vec<&str> = sel.cols.iter().map(|c| col(rel, sel.table, *c)).collect();
    let mut s = format!(
        "{indent}( SELECT {}\n{indent}  FROM {}",
        names.join(" , "),
        rel.table(sel.table).name
    );
    let mut conds: Vec<String> = sel
        .not_null
        .iter()
        .map(|c| format!("( {} IS NOT NULL )", col(rel, sel.table, *c)))
        .collect();
    conds.extend(
        sel.eq
            .iter()
            .map(|(c, v)| format!("( {} = {} )", col(rel, sel.table, *c), render_value(v))),
    );
    if !conds.is_empty() {
        s.push_str(&format!("\n{indent}  WHERE {}", conds.join(" AND ")));
    }
    s.push_str(&format!("\n{indent})"));
    s
}

/// Renders a literal value in SQL syntax.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Int(i) => i.to_string(),
        Value::Num(d) => d.to_string(),
        Value::Date(d) => format!("DATE '{d}'"),
        Value::Bool(b) => {
            if *b {
                "'Y'".into()
            } else {
                "'N'".into()
            }
        }
        Value::Entity(e) => format!("/* surrogate {e} */"),
    }
}

/// Renders one extended constraint as pseudo-SQL (no comment prefixes).
/// Keys and foreign keys are rendered inline by the DDL generator and are
/// not handled here.
pub fn render_constraint(rel: &RelSchema, name: &str, kind: &RelConstraintKind) -> String {
    match kind {
        RelConstraintKind::EqualityView { left, right } => format!(
            "EQUALITY VIEW CONSTRAINT :\n{}\nIS EQUAL TO\n{}\nCONSTRAINT {name}",
            selection_block(rel, left, "   "),
            selection_block(rel, right, "   ")
        ),
        RelConstraintKind::SubsetView { sub, sup } => format!(
            "SUBSET VIEW CONSTRAINT :\n{}\nIS CONTAINED IN\n{}\nCONSTRAINT {name}",
            selection_block(rel, sub, "   "),
            selection_block(rel, sup, "   ")
        ),
        RelConstraintKind::ExclusionView { items } => {
            let blocks: Vec<String> = items
                .iter()
                .map(|s| selection_block(rel, s, "   "))
                .collect();
            format!(
                "MUTUAL EXCLUSION CONSTRAINT :\n{}\nCONSTRAINT {name}",
                blocks.join("\nIS DISJOINT FROM\n")
            )
        }
        RelConstraintKind::TotalUnionView { over, items } => {
            let blocks: Vec<String> = items
                .iter()
                .map(|s| selection_block(rel, s, "   "))
                .collect();
            format!(
                "TOTAL UNION CONSTRAINT :\n{}\nIS CONTAINED IN THE UNION OF\n{}\nCONSTRAINT {name}",
                selection_block(rel, over, "   "),
                blocks.join("\nAND\n")
            )
        }
        RelConstraintKind::DependentExistence {
            table,
            dependent,
            on,
        } => {
            let d = col(rel, *table, *dependent);
            let o = col(rel, *table, *on);
            format!(
                "CHECK( -- Dependent Existence\n   ( ( {d} IS NOT NULL )\n     AND ( {o} IS NOT NULL )\n   )\n   OR ( {d} IS NULL )\n)\nCONSTRAINT {name}"
            )
        }
        RelConstraintKind::EqualExistence { table, cols } => {
            let nn: Vec<String> = cols
                .iter()
                .map(|c| format!("( {} IS NOT NULL )", col(rel, *table, *c)))
                .collect();
            let nl: Vec<String> = cols
                .iter()
                .map(|c| format!("( {} IS NULL )", col(rel, *table, *c)))
                .collect();
            format!(
                "CHECK( -- Equal Existence\n   ( {} )\n   OR ( {} )\n)\nCONSTRAINT {name}",
                nl.join("\n     AND "),
                nn.join("\n     AND ")
            )
        }
        RelConstraintKind::ConditionalEquality {
            table,
            indicator,
            when_value,
            key_cols,
            sub,
        } => {
            let keys: Vec<&str> = key_cols.iter().map(|c| col(rel, *table, *c)).collect();
            format!(
                "CONDITIONAL EQUALITY CONSTRAINT : -- indicator redundancy control\n   ( SELECT {}\n     FROM {}\n     WHERE ( {} = {} )\n   )\nIS EQUAL TO\n{}\nCONSTRAINT {name}",
                keys.join(" , "),
                rel.table(*table).name,
                col(rel, *table, *indicator),
                render_value(when_value),
                selection_block(rel, sub, "   ")
            )
        }
        RelConstraintKind::CoverExistence { table, groups } => {
            let alts: Vec<String> = groups
                .iter()
                .map(|g| {
                    let nn: Vec<String> = g
                        .iter()
                        .map(|c| format!("( {} IS NOT NULL )", col(rel, *table, *c)))
                        .collect();
                    format!("( {} )", nn.join(" AND "))
                })
                .collect();
            format!(
                "CHECK( -- Reference Cover (NULL ALLOWED)\n   {}\n)\nCONSTRAINT {name}",
                alts.join("\n   OR ")
            )
        }
        RelConstraintKind::CheckValue {
            table,
            col: c,
            values,
        } => {
            let vals: Vec<String> = values.iter().map(render_value).collect();
            format!(
                "CHECK( {} IN ( {} ) )\nCONSTRAINT {name}",
                col(rel, *table, *c),
                vals.join(" , ")
            )
        }
        RelConstraintKind::Frequency {
            table,
            cols,
            min,
            max,
        } => {
            let names: Vec<&str> = cols.iter().map(|c| col(rel, *table, *c)).collect();
            format!(
                "OCCURRENCE FREQUENCY CONSTRAINT :\n   EACH ( {} ) OCCURS BETWEEN {min} AND {} TIMES IN {}\nCONSTRAINT {name}",
                names.join(" , "),
                max.map(|m| m.to_string()).unwrap_or_else(|| "N".into()),
                rel.table(*table).name
            )
        }
        RelConstraintKind::PrimaryKey { .. }
        | RelConstraintKind::CandidateKey { .. }
        | RelConstraintKind::ForeignKey { .. } => {
            unreachable!("keys are rendered inline by the DDL generator")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridl_brm::DataType;
    use ridl_relational::{Column, Table, TableId};

    fn sample() -> RelSchema {
        let mut s = RelSchema::new("x");
        let d = s.domain("D", DataType::Char(2));
        s.add_table(Table::new(
            "Paper",
            vec![
                Column::not_null("Paper_Id", d),
                Column::nullable("Paper_ProgramId_Is", d),
            ],
        ));
        s.add_table(Table::new(
            "Program_Paper",
            vec![Column::not_null("Paper_ProgramId", d)],
        ));
        s
    }

    #[test]
    fn equality_view_matches_paper_style() {
        let rel = sample();
        let kind = RelConstraintKind::EqualityView {
            left: ColumnSelection::of(TableId(1), vec![0]),
            right: ColumnSelection::of(TableId(0), vec![1]).where_not_null(vec![1]),
        };
        let text = render_constraint(&rel, "C_EQ$_3", &kind);
        assert!(text.contains("EQUALITY VIEW CONSTRAINT :"));
        assert!(
            text.contains("( SELECT Paper_ProgramId\n     FROM Program_Paper"),
            "{text}"
        );
        assert!(text.contains("IS EQUAL TO"));
        assert!(text.contains("WHERE ( Paper_ProgramId_Is IS NOT NULL )"));
        assert!(text.trim_end().ends_with("CONSTRAINT C_EQ$_3"));
    }

    #[test]
    fn dependent_and_equal_existence_match_paper_style() {
        let rel = sample();
        let de = render_constraint(
            &rel,
            "C_DE$_8",
            &RelConstraintKind::DependentExistence {
                table: TableId(0),
                dependent: 1,
                on: 0,
            },
        );
        assert!(de.contains("-- Dependent Existence"));
        assert!(de.contains("OR ( Paper_ProgramId_Is IS NULL )"));
        let ee = render_constraint(
            &rel,
            "C_EE$_6",
            &RelConstraintKind::EqualExistence {
                table: TableId(0),
                cols: vec![0, 1],
            },
        );
        assert!(ee.contains("-- Equal Existence"));
        assert!(ee.contains("( Paper_Id IS NULL )"));
        assert!(ee.contains("( Paper_Id IS NOT NULL )"));
    }

    #[test]
    fn values_render_as_sql_literals() {
        assert_eq!(render_value(&Value::str("a'b")), "'a''b'");
        assert_eq!(render_value(&Value::Int(42)), "42");
        assert_eq!(render_value(&Value::Bool(true)), "'Y'");
    }

    #[test]
    fn check_value_and_frequency() {
        let rel = sample();
        let cv = render_constraint(
            &rel,
            "C_VAL$_1",
            &RelConstraintKind::CheckValue {
                table: TableId(0),
                col: 0,
                values: vec![Value::str("A"), Value::str("B")],
            },
        );
        assert!(cv.contains("CHECK( Paper_Id IN ( 'A' , 'B' ) )"));
        let fr = render_constraint(
            &rel,
            "C_FREQ$_1",
            &RelConstraintKind::Frequency {
                table: TableId(0),
                cols: vec![0],
                min: 2,
                max: Some(4),
            },
        );
        assert!(fr.contains("BETWEEN 2 AND 4"));
    }
}

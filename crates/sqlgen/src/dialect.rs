//! Target-DBMS dialects.

use ridl_brm::DataType;
use ridl_relational::RelConstraintKind;

/// The supported target DBMSs (§4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DialectKind {
    /// The "neutral" SQL2 (draft standard) definition.
    Sql2,
    /// ORACLE V5: no declarative foreign keys; null values tolerated even
    /// in primary-key attributes (§4.2.1).
    Oracle,
    /// INGRES (QUEL-era SQL front end): no declarative keys at all — keys
    /// become unique indexes, emitted as `CREATE UNIQUE INDEX`.
    Ingres,
    /// DB2: declarative PK/FK, 18-character identifier limit.
    Db2,
}

/// A dialect: everything the renderer needs to know about a target.
#[derive(Clone, Debug)]
pub struct Dialect {
    /// Which target this is.
    pub kind: DialectKind,
    /// Display name used in the generated header.
    pub name: &'static str,
    /// Maximum identifier length (identifiers are folded and uniquified
    /// beyond it).
    pub max_identifier: usize,
    /// Whether `CREATE DOMAIN` exists (SQL2 only).
    pub supports_domains: bool,
    /// Whether declarative PRIMARY KEY / UNIQUE clauses exist.
    pub supports_key_clauses: bool,
    /// Whether declarative FOREIGN KEY / REFERENCES clauses exist.
    pub supports_foreign_keys: bool,
    /// Whether CHECK clauses exist.
    pub supports_check: bool,
    /// Whether a BOOLEAN type exists (otherwise CHAR(1) with a check).
    pub supports_boolean: bool,
}

impl Dialect {
    /// The dialect description for a target kind.
    pub fn of(kind: DialectKind) -> Self {
        match kind {
            DialectKind::Sql2 => Dialect {
                kind,
                name: "SQL2 (draft standard)",
                max_identifier: 128,
                supports_domains: true,
                supports_key_clauses: true,
                supports_foreign_keys: true,
                supports_check: true,
                supports_boolean: false,
            },
            DialectKind::Oracle => Dialect {
                kind,
                name: "ORACLE",
                max_identifier: 30,
                supports_domains: false,
                supports_key_clauses: true,
                supports_foreign_keys: false,
                supports_check: false,
                supports_boolean: false,
            },
            DialectKind::Ingres => Dialect {
                kind,
                name: "INGRES",
                max_identifier: 24,
                supports_domains: false,
                supports_key_clauses: false,
                supports_foreign_keys: false,
                supports_check: false,
                supports_boolean: false,
            },
            DialectKind::Db2 => Dialect {
                kind,
                name: "DB2",
                max_identifier: 18,
                supports_domains: false,
                supports_key_clauses: true,
                supports_foreign_keys: true,
                supports_check: false,
                supports_boolean: false,
            },
        }
    }

    /// All four dialects.
    pub fn all() -> [Dialect; 4] {
        [
            Dialect::of(DialectKind::Sql2),
            Dialect::of(DialectKind::Oracle),
            Dialect::of(DialectKind::Ingres),
            Dialect::of(DialectKind::Db2),
        ]
    }

    /// Renders a data type in the dialect's vocabulary.
    pub fn render_type(&self, dt: DataType) -> String {
        match (self.kind, dt) {
            (_, DataType::Char(n)) => format!("CHAR({n})"),
            (DialectKind::Oracle, DataType::VarChar(n)) => format!("VARCHAR2({n})"),
            (_, DataType::VarChar(n)) => format!("VARCHAR({n})"),
            (DialectKind::Oracle, DataType::Numeric(p, 0)) => format!("NUMBER({p})"),
            (DialectKind::Oracle, DataType::Numeric(p, s)) => format!("NUMBER({p},{s})"),
            (DialectKind::Db2, DataType::Numeric(p, 0)) => format!("DECIMAL({p})"),
            (DialectKind::Db2, DataType::Numeric(p, s)) => format!("DECIMAL({p},{s})"),
            (_, DataType::Numeric(p, 0)) => format!("NUMERIC({p})"),
            (_, DataType::Numeric(p, s)) => format!("NUMERIC({p},{s})"),
            (_, DataType::Integer) => "INTEGER".into(),
            (DialectKind::Oracle, DataType::Real) => "NUMBER".into(),
            (_, DataType::Real) => "FLOAT".into(),
            (_, DataType::Date) => "DATE".into(),
            (_, DataType::Boolean) => {
                if self.supports_boolean {
                    "BOOLEAN".into()
                } else {
                    "CHAR(1)".into()
                }
            }
            (_, DataType::Surrogate) => "/* SURROGATE */ CHAR(16)".into(),
        }
    }

    /// Whether this dialect enforces the constraint natively; otherwise it
    /// goes out as commented pseudo-SQL.
    pub fn enforces(&self, kind: &RelConstraintKind) -> bool {
        match kind {
            RelConstraintKind::PrimaryKey { .. } | RelConstraintKind::CandidateKey { .. } => {
                // INGRES keys become unique indexes (handled separately),
                // which still counts as native enforcement.
                true
            }
            RelConstraintKind::ForeignKey { .. } => self.supports_foreign_keys,
            RelConstraintKind::CheckValue { .. }
            | RelConstraintKind::DependentExistence { .. }
            | RelConstraintKind::EqualExistence { .. }
            | RelConstraintKind::CoverExistence { .. } => self.supports_check,
            _ => false,
        }
    }

    /// Folds an identifier to the dialect's length limit, keeping it
    /// readable; the renderer uniquifies collisions.
    pub fn fold_identifier(&self, ident: &str) -> String {
        if ident.len() <= self.max_identifier {
            return ident.to_owned();
        }
        // Keep head and tail, which carry the discriminating parts of
        // RIDL-M's generated names.
        let keep = self.max_identifier;
        let head = keep * 2 / 3;
        let tail = keep - head - 1;
        format!("{}_{}", &ident[..head], &ident[ident.len() - tail..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_vocabulary_per_dialect() {
        let sql2 = Dialect::of(DialectKind::Sql2);
        let ora = Dialect::of(DialectKind::Oracle);
        let db2 = Dialect::of(DialectKind::Db2);
        assert_eq!(sql2.render_type(DataType::VarChar(30)), "VARCHAR(30)");
        assert_eq!(ora.render_type(DataType::VarChar(30)), "VARCHAR2(30)");
        assert_eq!(ora.render_type(DataType::Numeric(3, 0)), "NUMBER(3)");
        assert_eq!(db2.render_type(DataType::Numeric(7, 2)), "DECIMAL(7,2)");
        assert_eq!(sql2.render_type(DataType::Boolean), "CHAR(1)");
    }

    #[test]
    fn enforcement_matrix() {
        let fk = RelConstraintKind::ForeignKey {
            table: ridl_relational::TableId(0),
            cols: vec![0],
            ref_table: ridl_relational::TableId(1),
            ref_cols: vec![0],
        };
        assert!(Dialect::of(DialectKind::Sql2).enforces(&fk));
        assert!(!Dialect::of(DialectKind::Oracle).enforces(&fk));
        assert!(Dialect::of(DialectKind::Db2).enforces(&fk));
        let eq = RelConstraintKind::EqualityView {
            left: ridl_relational::ColumnSelection::of(ridl_relational::TableId(0), vec![0]),
            right: ridl_relational::ColumnSelection::of(ridl_relational::TableId(1), vec![0]),
        };
        for d in Dialect::all() {
            assert!(!d.enforces(&eq), "{}", d.name);
        }
    }

    #[test]
    fn identifier_folding() {
        let db2 = Dialect::of(DialectKind::Db2);
        let long = "A_Very_Long_Generated_Identifier_Name";
        let folded = db2.fold_identifier(long);
        assert!(folded.len() <= 18, "{folded}");
        assert_eq!(db2.fold_identifier("Short"), "Short");
    }
}

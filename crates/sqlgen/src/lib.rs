//! # ridl-sqlgen — DDL generation for the generic relational schema
//!
//! "The relational schema built by RIDL-M is independent of any target
//! DBMS … From this generic relational schema a schema definition for any
//! relational (or relation-like) DBMS can be derived using the specific
//! database definition language of such a DBMS. At the time of writing,
//! RIDL-M generates fully operational ORACLE, INGRES and DB2 schema
//! definitions, and a 'neutral' schema definition in the SQL2 (draft)
//! standard" (§4.3).
//!
//! Each [`Dialect`] controls type names, identifier limits, which
//! constraint kinds the target enforces natively, and the comment style
//! used to carry the remaining constraints as commented pseudo-SQL —
//! "added as comment lines because (even) the SQL2 standard does not
//! currently support these type of constraints".

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dialect;
pub mod pseudo;
pub mod render;

pub use dialect::{Dialect, DialectKind};
pub use render::{generate_ddl, generate_for, GeneratedDdl};

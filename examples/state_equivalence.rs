//! State equivalence live (§4.1): populate the conceptual schema, run the
//! schema transformation `g` into a relational state, load it into the
//! constraint-enforcing engine, exercise updates — legal and illegal — and
//! map the final state back to a conceptual population.
//!
//! ```sh
//! cargo run --example state_equivalence
//! ```

use ridl_brm::Value;
use ridl_core::state_map::{equivalent, map_population, unmap_state};
use ridl_core::{MappingOptions, Workbench};
use ridl_engine::{Database, Pred};
use ridl_workloads::fig6;

fn main() {
    let wb = Workbench::new(fig6::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();

    // g: population -> relational state.
    let pop = fig6::population(&out.schema);
    println!(
        "conceptual population: {} object instances, {} fact instances",
        pop.num_object_instances(),
        pop.num_fact_instances()
    );
    let st = map_population(&out.schema, &out, &pop).unwrap();
    println!(
        "g(pop): {} rows across {} tables",
        st.num_rows(),
        out.table_count()
    );

    // The engine accepts it (the state satisfies every generated rule).
    let mut db = Database::create(out.rel.clone()).unwrap();
    db.load_state(st).unwrap();

    // An illegal update: claiming a program id in Paper without the
    // Program_Paper row violates the generated C_EQ$ lossless rule.
    let err = db
        .update_where(
            "Paper",
            &[Pred::Eq("Paper_Id".into(), Value::str("P3"))],
            &[("Paper_ProgramId_Is", Some(Value::str("A9")))],
        )
        .unwrap_err();
    println!("\nillegal update rejected:\n  {err}");

    // A legal update pair, transactionally: put paper P3 on the program.
    db.begin();
    db.insert_unchecked(
        "Program_Paper",
        vec![
            Some(Value::str("A9")),
            Some(Value::Int(3)),
            Some(Value::str("Meersman")),
        ],
    )
    .unwrap();
    db.update_where(
        "Paper",
        &[Pred::Eq("Paper_Id".into(), Value::str("P3"))],
        &[("Paper_ProgramId_Is", Some(Value::str("A9")))],
    )
    .unwrap_or_else(|e| panic!("{e}"));
    db.commit().unwrap();
    println!("legal transactional update committed");

    // g⁻¹: the final state maps back to a conceptual population.
    let back = unmap_state(&out.schema, &out, db.state()).unwrap();
    println!(
        "g⁻¹(state): {} object instances, {} fact instances",
        back.num_object_instances(),
        back.num_fact_instances()
    );
    let program = out.schema.object_type_by_name("Program_Paper").unwrap();
    println!(
        "Program_Paper membership after update: {} entities (was 2)",
        back.objects_of(program).len()
    );

    // Round trip of the untouched original still holds.
    let st0 = map_population(&out.schema, &out, &pop).unwrap();
    let back0 = unmap_state(&out.schema, &out, &st0).unwrap();
    println!(
        "round trip of the original population: {}",
        if equivalent(&out.schema, &out, &pop, &back0).unwrap() {
            "state-equivalent (lossless)"
        } else {
            "DIVERGED"
        }
    );
}

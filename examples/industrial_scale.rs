//! Industrial scale (§5): "It is being used … at a few industrial locations
//! where it routinely generates databases of up to 120-150 ORACLE tables …
//! the generated (pseudo-)SQL constraints cause the output design to reach
//! approx. 1 to 1.2 pages per table on the average."
//!
//! A synthetic schema sized to that band is analysed, mapped, and rendered
//! as ORACLE DDL; the run reports table counts and pages/table.
//!
//! ```sh
//! cargo run --release --example industrial_scale
//! ```

use std::time::Instant;

use ridl_core::{MappingOptions, Workbench};
use ridl_sqlgen::{generate_for, DialectKind};
use ridl_workloads::synth::{generate, GenParams};

fn main() {
    let params = GenParams::industrial(1989);
    let t0 = Instant::now();
    let synth = generate(&params);
    println!(
        "generated conceptual schema: {} object types, {} fact types, {} sublinks, {} constraints ({:?})",
        synth.schema.num_object_types(),
        synth.schema.num_fact_types(),
        synth.schema.num_sublinks(),
        synth.schema.num_constraints(),
        t0.elapsed()
    );

    let t1 = Instant::now();
    let wb = Workbench::new(synth.schema);
    assert!(wb.analysis().is_mappable(), "{}", wb.analysis().render());
    println!("RIDL-A: clean ({:?})", t1.elapsed());

    let t2 = Instant::now();
    let out = wb.map(&MappingOptions::new()).unwrap();
    println!(
        "RIDL-M: {} tables, {} constraints, {} trace steps ({:?})",
        out.table_count(),
        out.rel.constraints.len(),
        out.trace.steps().len(),
        t2.elapsed()
    );

    let t3 = Instant::now();
    let ddl = generate_for(&out.rel, DialectKind::Oracle);
    println!(
        "ORACLE DDL: {} lines total; {:.2} pages/table at 66 lines/page, {:.2} at 50 ({:?})",
        ddl.total_lines(),
        ddl.pages_per_table(66),
        ddl.pages_per_table(50),
        t3.elapsed()
    );
    println!(
        "constraints: {} enforced natively, {} as commented pseudo-SQL",
        ddl.enforced_constraints, ddl.commented_constraints
    );

    let in_band = (120..=150).contains(&out.table_count());
    println!(
        "\npaper band check: {} tables -> {}; {:.2} pages/table (50-line pages) -> {}",
        out.table_count(),
        if in_band {
            "within 120-150"
        } else {
            "outside 120-150"
        },
        ddl.pages_per_table(50),
        if (0.6..=1.5).contains(&ddl.pages_per_table(50)) {
            "same order as the paper's 1-1.2 (our renderer is denser)"
        } else {
            "off the paper's figure"
        }
    );
}

//! Quickstart: define a small binary conceptual schema, validate it with
//! RIDL-A, map it with RIDL-M and print the generated SQL2 definition.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ridl_core::{MappingOptions, Workbench};
use ridl_sqlgen::{generate_for, DialectKind};

fn main() {
    // 1. Capture the conceptual schema — here through the RIDL text
    //    notation (the `SchemaBuilder` API works just as well).
    let source = r#"
SCHEMA library;

NOLOT Book;
LOT ISBN : CHAR(13);
LOT Book_Title : VARCHAR(80);
LOT-NOLOT Year : NUMERIC(4);
NOLOT Member;
LOT Member_No : NUMERIC(6);

FACT book_isbn ( identified_by : Book , _ : ISBN );
FACT book_title ( titled : Book , of : Book_Title );
FACT book_year ( published_in : Book , of_publication : Year );
FACT member_no ( identified_by : Member , _ : Member_No );
FACT borrows ( borrowed_by : Member , on_loan : Book );

UNIQUE book_isbn.LEFT;
UNIQUE book_isbn.RIGHT;
TOTAL Book IN book_isbn.LEFT;
UNIQUE book_title.LEFT;
TOTAL Book IN book_title.LEFT;
UNIQUE book_year.LEFT;
UNIQUE member_no.LEFT;
UNIQUE member_no.RIGHT;
TOTAL Member IN member_no.LEFT;
UNIQUE borrows.RIGHT;          -- a copy is on loan to at most one member
"#;
    let schema = ridl_lang::parse(source).expect("schema parses");

    // 2. RIDL-A: validity, completeness, consistency, referability.
    let workbench = Workbench::new(schema);
    println!("== RIDL-A report ==\n{}", workbench.analysis().render());
    assert!(workbench.analysis().is_mappable());

    // 3. RIDL-M under the default options.
    let out = workbench
        .map(&MappingOptions::new())
        .expect("mapping succeeds");
    println!(
        "== Generated {} tables, {} constraints ==",
        out.table_count(),
        out.rel.constraints.len()
    );
    for note in &out.notes {
        println!("   note: {note}");
    }

    // 4. The generic relational schema rendered as SQL2 DDL.
    let ddl = generate_for(&out.rel, DialectKind::Sql2);
    println!("\n{}", ddl.text);

    // 5. The transformation trace — the composed basic transformations.
    println!("{}", out.trace.render());

    // 6. Execute the design and observe the enforcement: every statement
    //    leaves a structured report, and EXPLAIN shows the executed plan.
    let mut db = ridl_engine::Database::create(out.rel.clone()).expect("engine opens");
    let book = out.rel.table_by_name("Book").expect("Book table");
    let arity = out.rel.table(book).arity();
    let mut row = vec![None; arity];
    row[0] = Some(ridl_brm::Value::str("9780000000000"));
    row[1] = Some(ridl_brm::Value::str("On RIDL"));
    db.insert("Book", row).expect("insert passes enforcement");
    let report = db.last_statement_report().expect("statement reported");
    println!("== Enforcement report ==\n{}", report.render());
    let plan = db
        .explain(&ridl_engine::Query::from("Book"))
        .expect("plan explains");
    println!("== Executed plan ==\n{}", plan.render());
}

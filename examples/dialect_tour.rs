//! Dialect tour (§4.3): one conceptual schema, four schema definitions —
//! SQL2 (draft standard), ORACLE, INGRES and DB2 — showing how each target
//! treats keys, foreign keys and the extended pseudo-SQL constraints.
//!
//! ```sh
//! cargo run --example dialect_tour
//! ```

use ridl_core::{MappingOptions, SublinkOption, Workbench};
use ridl_sqlgen::{generate_ddl, Dialect};
use ridl_workloads::fig6;

fn main() {
    let wb = Workbench::new(fig6::schema());
    let invited = wb.schema().object_type_by_name("Invited_Paper").unwrap();
    let sl = wb
        .schema()
        .sublinks()
        .find(|(_, s)| s.sub == invited)
        .map(|(sid, _)| sid)
        .unwrap();
    // Alternative 3 of figure 6 — the combination the paper's §4.3
    // fragment was generated from.
    let out = wb
        .map(&MappingOptions::new().override_sublink(sl, SublinkOption::IndicatorForSupot))
        .unwrap();

    for dialect in Dialect::all() {
        let ddl = generate_ddl(&out.rel, &dialect);
        println!("{}", "=".repeat(74));
        println!(
            "== {} — {} lines, {} native constraints, {} pseudo-SQL comments",
            dialect.name,
            ddl.total_lines(),
            ddl.enforced_constraints,
            ddl.commented_constraints
        );
        println!("{}", "=".repeat(74));
        println!("{}", ddl.text);
    }
}

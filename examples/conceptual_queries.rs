//! The RIDL query compiler (§4.3): conceptual path queries — phrased purely
//! over the binary schema — compiled through the forwards map into
//! relational plans and executed against each mapping alternative. The
//! query text never changes; the physical plan (and its join count) does.
//!
//! ```sh
//! cargo run --example conceptual_queries
//! ```

use ridl_core::state_map::map_population;
use ridl_core::{MappingOptions, SublinkOption, Workbench};
use ridl_engine::Database;
use ridl_query::{compile, execute, parse_query};
use ridl_workloads::fig6;

fn main() {
    let wb = Workbench::new(fig6::schema());
    let queries = [
        "LIST Paper ( identified_by , of )",
        "LIST Program_Paper ( has , comprising , titled )",
        "LIST Program_Paper ( has ) WHERE presenting EXISTS",
        "LIST Paper ( identified_by ) WHERE of_submission MISSING",
    ];
    let invited = wb.schema().object_type_by_name("Invited_Paper").unwrap();
    let sl = wb
        .schema()
        .sublinks()
        .find(|(_, s)| s.sub == invited)
        .map(|(sid, _)| sid)
        .unwrap();
    let alternatives = [
        ("A2 SEPARATE", MappingOptions::new()),
        (
            "A3 INDICATOR",
            MappingOptions::new().override_sublink(sl, SublinkOption::IndicatorForSupot),
        ),
        (
            "A4 TOGETHER",
            MappingOptions::new().with_sublinks(SublinkOption::Together),
        ),
    ];

    for text in queries {
        println!("== {text}");
        let q = parse_query(text).unwrap();
        for (label, options) in &alternatives {
            let out = wb.map(options).unwrap();
            let mut db = Database::create(out.rel.clone()).unwrap();
            db.load_state(
                map_population(&out.schema, &out, &fig6::population(&out.schema)).unwrap(),
            )
            .unwrap();
            let compiled = compile(&out, &q).unwrap();
            let (cols, mut rows) = execute(&out, &db, &q).unwrap();
            rows.sort();
            let rendered: Vec<String> = rows
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|v| {
                            v.as_ref()
                                .map(|x| x.to_string())
                                .unwrap_or_else(|| "NULL".into())
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .collect();
            println!(
                "   {label:<13} {} join(s)  ->  [{}]  ({})",
                compiled.join_count,
                rendered.join(" | "),
                cols.join(", ")
            );
        }
        println!();
    }
    println!(
        "The answers agree across all alternatives (state equivalence); only\n\
         the compiled join counts differ — the efficiency trade-off the\n\
         mapping options control (§4.2.2)."
    );
}

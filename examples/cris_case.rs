//! The CRIS case (the paper's running example): analyse the conference-
//! organisation schema, map the figure-6 fragment under all four
//! alternative option sets, and print the map report for one of them.
//!
//! ```sh
//! cargo run --example cris_case
//! ```

use ridl_core::{MappingOptions, NullOption, SublinkOption, Workbench};
use ridl_workloads::{cris, fig6};

fn describe(label: &str, out: &ridl_core::MappingOutput) {
    println!("--- {label} ({})", out.options.announce());
    for (_, t) in out.rel.tables() {
        let cols: Vec<String> = t
            .columns
            .iter()
            .map(|c| {
                if c.nullable {
                    format!("[{}]", c.name)
                } else {
                    c.name.clone()
                }
            })
            .collect();
        println!("    {}({})", t.name, cols.join(", "));
    }
    let extended = out
        .rel
        .constraints
        .iter()
        .filter(|c| !c.kind.natively_enforceable())
        .count();
    println!(
        "    {} tables, {} nullable columns, {} constraints ({} as pseudo-SQL)",
        out.table_count(),
        out.nullable_column_count(),
        out.rel.constraints.len(),
        extended
    );
}

fn main() {
    // The figure-6 fragment under the paper's four alternatives.
    let wb = Workbench::new(fig6::schema());
    let invited = wb.schema().object_type_by_name("Invited_Paper").unwrap();
    let sl_invited = wb
        .schema()
        .sublinks()
        .find(|(_, s)| s.sub == invited)
        .map(|(sid, _)| sid)
        .unwrap();

    println!("== Figure 6: four state-equivalent relational schemas ==\n");
    let a1 = wb
        .map(&MappingOptions::new().with_nulls(NullOption::NullNotAllowed))
        .unwrap();
    describe("Alternative 1", &a1);
    let a2 = wb.map(&MappingOptions::new()).unwrap();
    describe("Alternative 2", &a2);
    let a3 = wb
        .map(&MappingOptions::new().override_sublink(sl_invited, SublinkOption::IndicatorForSupot))
        .unwrap();
    describe("Alternative 3", &a3);
    let a4 = wb
        .map(&MappingOptions::new().with_sublinks(SublinkOption::Together))
        .unwrap();
    describe("Alternative 4", &a4);

    // The full CRIS case with its map report.
    println!("\n== The full CRIS case ==\n");
    let wb = Workbench::new(cris::schema());
    println!("{}", wb.analysis().render());
    let out = wb.map(&MappingOptions::new()).unwrap();
    describe("CRIS default mapping", &out);

    let report = wb.map_report(&out);
    println!("\n== Map report (forwards, first 60 lines) ==");
    for line in report.forwards.lines().take(60) {
        println!("{line}");
    }
    println!("\n== Map report (backwards, first 40 lines) ==");
    for line in report.backwards.lines().take(40) {
        println!("{line}");
    }
}

//! # ridlstar — facade crate for the RIDL\* workbench reproduction
//!
//! Re-exports every subsystem of the RIDL\* database-engineering workbench
//! (De Troyer, SIGMOD 1989): the Binary Relationship Model, the RIDL textual
//! language, the RIDL-A analyzer, the schema-transformation framework, the
//! RIDL-M mapper, SQL dialect generation, the relational engine and the
//! meta-database. See the crate-level docs of each member for detail, and
//! `examples/quickstart.rs` for a guided tour.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use ridl_analyzer as analyzer;
pub use ridl_brm as brm;
pub use ridl_core as core;
pub use ridl_engine as engine;
pub use ridl_lang as lang;
pub use ridl_metadb as metadb;
pub use ridl_relational as relational;
pub use ridl_sqlgen as sqlgen;
pub use ridl_transform as transform;
pub use ridl_workloads as workloads;

//! `ridl` — the RIDL\* workbench from the command line.
//!
//! ```text
//! ridl check   <schema.ridl> [--implied]         run RIDL-A
//! ridl map     <schema.ridl> [options]           run RIDL-M, print DDL
//! ridl report  <schema.ridl> [options]           print the map report
//! ridl trace   <schema.ridl> [options]           run the full pipeline under span
//!                                                tracing: transformation trace,
//!                                                span tree, latency histograms
//! ridl lineage <schema.ridl> [Table[.Column]] [options]
//!                                                BRM provenance of the mapped schema
//! ridl tracecheck <trace.json>                   validate a Chrome trace JSON file
//! ridl profile <schema.ridl> [options]           profile analyze + map (timings, rule firings)
//! ridl fmt     <schema.ridl>                     pretty-print the schema
//! ridl query   <schema.ridl> "LIST …" [--explain] [options]
//!                                                compile a conceptual query
//! ridl recover <schema.ridl> <store-dir> [options]
//!                                                recover a durable store: checkpoint
//!                                                + WAL replay, print the report
//! ridl status  <store-dir> [--json]              inspect a store offline (read-only):
//!                                                checkpoint chain, WAL health, debris
//! ridl events  <journal.jsonl> [--kind P] [--min-sev S] [--tail N]
//!                                                tail/filter a flight-recorder dump;
//!                                                --kind filters by prefix, e.g.
//!                                                session. (connect/hello/statement/
//!                                                reject/disconnect), net. (listen/
//!                                                shutdown), wal., engine.
//! ridl serve   <schema.ridl> [--dir STORE] [--addr A] [--max-sessions N]
//!                                                serve the mapped schema over TCP
//!                                                (line-delimited JSON protocol);
//!                                                stops on the shutdown command
//! ridl client  <addr> [--hello NAME]             scriptable client: request lines
//!                                                from stdin, response lines to stdout
//! ridl bench   [--rows N] [--ops N] [--sessions N] [--seed N] [--pr N] [--out FILE] [--dir DIR]
//!                                                run the RIDL-Bench macro pipeline,
//!                                                write the BENCH_<pr>.json artifact
//! ridl benchcheck <BENCH_x.json>                 validate a bench artifact
//! ridl benchcheck --scaling <small.json> <large.json>
//!                                                assert incremental checkpoints
//!                                                scale with churn, not state
//!
//! options:
//!   --nulls default|not-allowed|not-in-keys|allowed
//!   --sublinks separate|together|indicator
//!   --dialect sql2|oracle|ingres|db2
//! ```
//!
//! A path of `-` reads the schema from stdin. Set `RIDL_METRICS_JSONL=<path>`
//! to append every enforcement metric event as a JSON line. Set
//! `RIDL_TRACE_JSON=<path>` to enable span tracing and write a Chrome
//! trace-event file (loadable in Perfetto or `chrome://tracing`) at exit;
//! `ridl trace` enables the spans regardless and honours the variable for
//! the JSON export. Set `RIDL_JOURNAL_JSONL=<path>` to dump the durability
//! flight recorder there — on recovery, on panic, and at process exit.
//!
//! Exit codes distinguish the failure class so scripts can react:
//! `1` the schema failed analysis (`ridl check` verdict), `2` a usage
//! error (unknown command/flag, missing argument), `3` a missing or
//! unreadable input file, `4` a parse or schema error, `5` a corrupt
//! store or trace artefact. Every failure prints one `ridl: …`
//! diagnostic line to stderr (a check/map verdict may carry the analysis
//! rendering after it); no failure panics.

use std::io::Read;
use std::process::ExitCode;

use ridl_core::{MappingOptions, NullOption, SublinkOption, Workbench};
use ridl_sqlgen::DialectKind;

/// A classified CLI failure: the variant decides the process exit code.
enum CliError {
    /// Analysis rejected the schema — the tool ran fine (exit 1).
    Verdict(String),
    /// Bad invocation: unknown command/flag or missing argument (exit 2).
    Usage(String),
    /// An input file is missing or unreadable (exit 3).
    Input(String),
    /// The input was read but does not parse / does not map (exit 4).
    Parse(String),
    /// A store or trace artefact is corrupt (exit 5).
    Corrupt(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Verdict(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Input(_) => 3,
            CliError::Parse(_) => 4,
            CliError::Corrupt(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Verdict(m)
            | CliError::Usage(m)
            | CliError::Input(m)
            | CliError::Parse(m)
            | CliError::Corrupt(m) => m,
        }
    }
}

fn usage(msg: &str) -> CliError {
    CliError::Usage(msg.to_owned())
}

fn read_schema(path: &str) -> Result<ridl_brm::Schema, CliError> {
    let src = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Input(format!("reading stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Input(format!("reading {path}: {e}")))?
    };
    ridl_lang::parse(&src).map_err(|e| CliError::Parse(format!("{path}: {e}")))
}

struct Cli {
    nulls: NullOption,
    sublinks: SublinkOption,
    dialect: DialectKind,
}

fn parse_flags(args: &[String]) -> Result<Cli, CliError> {
    let mut cli = Cli {
        nulls: NullOption::Default,
        sublinks: SublinkOption::Separate,
        dialect: DialectKind::Sql2,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = |it: &mut std::slice::Iter<String>| {
            it.next()
                .cloned()
                .ok_or_else(|| usage(&format!("{a} needs a value")))
        };
        match a.as_str() {
            "--nulls" => {
                cli.nulls = match value(&mut it)?.as_str() {
                    "default" => NullOption::Default,
                    "not-allowed" => NullOption::NullNotAllowed,
                    "not-in-keys" => NullOption::NullNotInKeys,
                    "allowed" => NullOption::NullAllowed,
                    other => return Err(usage(&format!("unknown null option {other}"))),
                }
            }
            "--sublinks" => {
                cli.sublinks = match value(&mut it)?.as_str() {
                    "separate" => SublinkOption::Separate,
                    "together" => SublinkOption::Together,
                    "indicator" => SublinkOption::IndicatorForSupot,
                    other => return Err(usage(&format!("unknown sublink option {other}"))),
                }
            }
            "--dialect" => {
                cli.dialect = match value(&mut it)?.as_str() {
                    "sql2" => DialectKind::Sql2,
                    "oracle" => DialectKind::Oracle,
                    "ingres" => DialectKind::Ingres,
                    "db2" => DialectKind::Db2,
                    other => return Err(usage(&format!("unknown dialect {other}"))),
                }
            }
            other => return Err(usage(&format!("unknown option {other}"))),
        }
    }
    Ok(cli)
}

fn mapped(
    path: &str,
    flags: &[String],
) -> Result<(Workbench, ridl_core::MappingOutput, Cli), CliError> {
    let cli = parse_flags(flags)?;
    let schema = read_schema(path)?;
    let wb = Workbench::new(schema);
    if !wb.analysis().is_mappable() {
        return Err(CliError::Parse(format!(
            "schema is not mappable; run `ridl check`:\n{}",
            wb.analysis().render()
        )));
    }
    let options = MappingOptions::new()
        .with_nulls(cli.nulls)
        .with_sublinks(cli.sublinks);
    let out = wb
        .map(&options)
        .map_err(|e| CliError::Parse(e.to_string()))?;
    Ok((wb, out, cli))
}

/// Drives the constraint engine once so `ridl trace` covers enforcement:
/// bulk-loads a small generated population (falling back to an empty state
/// when the schema is outside the generator's discipline) so the statement,
/// validation and per-constraint-class spans appear in the tree.
fn drive_engine(wb: &Workbench, out: &ridl_core::MappingOutput) {
    let Ok(mut db) = ridl_engine::Database::create(out.rel.clone()) else {
        return;
    };
    let state = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let pop = ridl_workloads::popgen::generate(
            wb.schema(),
            &ridl_workloads::popgen::PopParams::default(),
        );
        ridl_core::state_map::map_population(&out.schema, out, &pop).ok()
    }))
    .ok()
    .flatten()
    .unwrap_or_else(|| ridl_relational::RelState::with_tables(out.rel.tables.len()));
    let rows = ridl_workloads::scenario::rows_of(&out.rel, &state);
    if db.bulk_load(rows).is_err() {
        // A generated population the engine rejects still traced the
        // validation; load the empty state so the tree also shows the
        // load path.
        let empty = ridl_relational::RelState::with_tables(out.rel.tables.len());
        let _ = db.load_state(empty);
    }
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = args.split_first().ok_or_else(|| {
        usage("usage: ridl <check|map|report|trace|profile|fmt|query|recover|status|events|serve|client|bench> <schema.ridl> [options]")
    })?;
    match cmd.as_str() {
        "check" => {
            let (path, flags) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl check <schema.ridl> [--implied]"))?;
            let schema = read_schema(path)?;
            let wb = Workbench::new(schema);
            print!("{}", wb.analysis().render());
            if flags.iter().any(|f| f == "--implied") {
                // On-demand, as in the paper: one saturation per candidate.
                println!("-- 5. IMPLIED CONSTRAINTS (on demand)");
                let findings = ridl_analyzer::setalg::implied_constraints(wb.schema());
                if findings.is_empty() {
                    println!("   (no superfluous definitions)");
                }
                for f in findings {
                    println!("   {f}");
                }
            }
            if wb.analysis().is_mappable() {
                println!("-- schema is mappable");
                Ok(())
            } else {
                Err(CliError::Verdict("schema has errors".into()))
            }
        }
        "map" => {
            let (path, flags) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl map <schema.ridl> [options]"))?;
            let (_, out, cli) = mapped(path, flags)?;
            let ddl = ridl_sqlgen::generate_for(&out.rel, cli.dialect);
            print!("{}", ddl.text);
            eprintln!(
                "-- {} tables, {} constraints ({} pseudo-SQL), {} lines",
                out.table_count(),
                out.rel.constraints.len(),
                ddl.commented_constraints,
                ddl.total_lines()
            );
            for note in &out.notes {
                eprintln!("-- note: {note}");
            }
            Ok(())
        }
        "report" => {
            let (path, flags) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl report <schema.ridl> [options]"))?;
            let (wb, out, _) = mapped(path, flags)?;
            let report = wb.map_report(&out);
            print!("{}", report.forwards);
            print!("{}", report.backwards);
            Ok(())
        }
        "trace" => {
            let (path, flags) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl trace <schema.ridl> [options]"))?;
            // Span tracing covers the whole pipeline: RIDL-A passes, every
            // applied basic transformation, SQL generation and the engine's
            // statement → validation → per-constraint-class enforcement.
            ridl_obs::set_tracing(true);
            let (wb, out, cli) = mapped(path, flags)?;
            let _ddl = ridl_sqlgen::generate_for(&out.rel, cli.dialect);
            drive_engine(&wb, &out);
            print!("{}", out.trace.render());
            let (events, dropped) = ridl_obs::span::take_events();
            if dropped > 0 {
                eprintln!(
                    "-- warning: {dropped} span(s) dropped at the collector cap; the tree \
                     and trace below are incomplete"
                );
            }
            print!("{}", ridl_obs::render_tree(&events));
            print!("{}", ridl_obs::render_histograms());
            if let Ok(json_path) = std::env::var("RIDL_TRACE_JSON") {
                if !json_path.is_empty() {
                    ridl_obs::write_chrome_trace(&json_path, &events, dropped)
                        .map_err(|e| CliError::Input(format!("writing {json_path}: {e}")))?;
                    eprintln!("-- chrome trace written to {json_path} (load in Perfetto)");
                }
            }
            Ok(())
        }
        "lineage" => {
            let (path, more) = rest.split_first().ok_or_else(|| {
                usage("usage: ridl lineage <schema.ridl> [Table[.Column]] [options]")
            })?;
            // An optional bare `Table` or `Table.Column` filter precedes the
            // `--` options.
            let (filter, flags) = match more.split_first() {
                Some((f, tail)) if !f.starts_with("--") => (Some(f.as_str()), tail),
                _ => (None, more),
            };
            let (wb, out, _) = mapped(path, flags)?;
            let lin = wb.lineage(&out);
            let (table, column) = match filter {
                Some(f) => match f.split_once('.') {
                    Some((t, c)) => (Some(t), Some(c)),
                    None => (Some(f), None),
                },
                None => (None, None),
            };
            print!("{}", lin.render_filtered(&out.trace, table, column));
            let unresolved = lin.unresolved();
            if !unresolved.is_empty() {
                eprintln!("-- {} objects without a BRM source:", unresolved.len());
                for t in unresolved {
                    eprintln!("--    {t}");
                }
            }
            Ok(())
        }
        "tracecheck" => {
            let (path, _) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl tracecheck <trace.json>"))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Input(format!("reading {path}: {e}")))?;
            let stats = ridl_obs::validate_chrome_trace(&text)
                .map_err(|e| CliError::Corrupt(format!("{path}: invalid chrome trace: {e}")))?;
            println!(
                "-- {path}: well-formed chrome trace ({} spans over {} threads)",
                stats.spans, stats.threads
            );
            if stats.dropped_at_cap > 0 {
                eprintln!(
                    "-- warning: {} span(s) were dropped at the collector cap when this \
                     trace was recorded; it is incomplete",
                    stats.dropped_at_cap
                );
            }
            Ok(())
        }
        "profile" => {
            let (path, flags) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl profile <schema.ridl> [options]"))?;
            let cli = parse_flags(flags)?;
            let schema = read_schema(path)?;
            let wb = Workbench::new(schema);
            if !wb.analysis().is_mappable() {
                return Err(CliError::Parse(format!(
                    "schema is not mappable; run `ridl check`:\n{}",
                    wb.analysis().render()
                )));
            }
            let options = MappingOptions::new()
                .with_nulls(cli.nulls)
                .with_sublinks(cli.sublinks);
            let (_, profile) = wb
                .map_profiled(&options)
                .map_err(|e| CliError::Parse(e.to_string()))?;
            print!("{}", profile.render());
            Ok(())
        }
        "fmt" => {
            let (path, _) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl fmt <schema.ridl>"))?;
            let schema = read_schema(path)?;
            print!("{}", ridl_lang::print(&schema));
            Ok(())
        }
        "query" => {
            let (path, more) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl query <schema.ridl> \"LIST …\" [options]"))?;
            let (text, flags) = more
                .split_first()
                .ok_or_else(|| usage("usage: ridl query <schema.ridl> \"LIST …\" [options]"))?;
            let explain = flags.iter().any(|f| f == "--explain");
            let flags: Vec<String> = flags
                .iter()
                .filter(|f| *f != "--explain")
                .cloned()
                .collect();
            let (_, out, _) = mapped(path, &flags)?;
            let q = ridl_query::parse_query(text).map_err(|e| CliError::Parse(e.to_string()))?;
            let compiled =
                ridl_query::compile(&out, &q).map_err(|e| CliError::Parse(e.to_string()))?;
            println!(
                "-- compiled against {} ({} joins)",
                out.options.announce(),
                compiled.join_count
            );
            println!("SELECT {}", compiled.query.select.join(" , "));
            println!("  FROM {}", compiled.query.table);
            for j in &compiled.query.joins {
                let on: Vec<String> =
                    j.on.iter()
                        .map(|(l, r)| format!("{l} = {}.{r}", j.table))
                        .collect();
                println!("  JOIN {} ON {}", j.table, on.join(" AND "));
            }
            if !compiled.query.filter.is_empty() {
                let conds: Vec<String> = compiled
                    .query
                    .filter
                    .iter()
                    .map(|p| match p {
                        ridl_engine::Pred::Eq(c, v) => format!("{c} = {v}"),
                        ridl_engine::Pred::IsNull(c) => format!("{c} IS NULL"),
                        ridl_engine::Pred::NotNull(c) => format!("{c} IS NOT NULL"),
                    })
                    .collect();
                println!(" WHERE {}", conds.join(" AND "));
            }
            if explain {
                // Execute the plan against an (empty) engine instance: the
                // step sequence is real even when the row counts are zero.
                let db = ridl_engine::Database::create(out.rel.clone())
                    .map_err(|e| CliError::Parse(e.to_string()))?;
                let plan = db
                    .explain(&compiled.query)
                    .map_err(|e| CliError::Parse(e.to_string()))?;
                println!("-- executed plan");
                print!("{}", plan.render());
            }
            Ok(())
        }
        "recover" => {
            let (path, more) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl recover <schema.ridl> <store-dir> [options]"))?;
            let (store, flags) = more
                .split_first()
                .ok_or_else(|| usage("usage: ridl recover <schema.ridl> <store-dir> [options]"))?;
            let (_, out, _) = mapped(path, flags)?;
            // Opening a missing directory would initialise a fresh store —
            // for an explicit recovery request that is an input error.
            if !std::path::Path::new(store).is_dir() {
                return Err(CliError::Input(format!(
                    "store directory {store} does not exist"
                )));
            }
            let db = ridl_engine::Database::open(store, out.rel.clone()).map_err(|e| match e {
                ridl_engine::EngineError::Io(m) => {
                    CliError::Input(format!("opening store {store}: {m}"))
                }
                other => CliError::Corrupt(format!("recovering store {store}: {other}")),
            })?;
            let report = db.recovery_report().expect("open always reports");
            println!("{report}");
            for (tid, t) in out.rel.tables() {
                println!("   {}: {} rows", t.name, db.state().rows(tid).len());
            }
            println!(
                "-- recovered {} rows across {} tables; WAL is {} bytes",
                db.state().num_rows(),
                out.rel.tables.len(),
                db.wal_bytes().unwrap_or(0)
            );
            Ok(())
        }
        "status" => {
            let (store, flags) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl status <store-dir> [--json]"))?;
            let json = match flags {
                [] => false,
                [f] if f == "--json" => true,
                _ => return Err(usage("usage: ridl status <store-dir> [--json]")),
            };
            // Unlike `ridl recover`, status never opens the database (no
            // schema needed) and never writes: it reads the checkpoint
            // chain and WAL exactly as recovery would, and reports.
            if !std::path::Path::new(store).is_dir() {
                return Err(CliError::Input(format!(
                    "store directory {store} does not exist"
                )));
            }
            let status =
                ridl_durable::inspect_store(&ridl_durable::StdIo, std::path::Path::new(store))
                    .map_err(|e| CliError::Input(format!("inspecting store {store}: {e}")))?;
            if json {
                println!("{}", status.to_json());
            } else {
                print!("{status}");
            }
            // Health is the *output*, not the exit code: a corrupt store
            // was still successfully inspected.
            Ok(())
        }
        "events" => {
            let (path, flags) = rest.split_first().ok_or_else(|| {
                usage("usage: ridl events <journal.jsonl> [--kind P] [--min-sev S] [--tail N]")
            })?;
            let mut kind_prefix: Option<String> = None;
            let mut min_sev = ridl_obs::Severity::Debug;
            let mut tail: Option<usize> = None;
            let mut it = flags.iter();
            while let Some(a) = it.next() {
                let value = |it: &mut std::slice::Iter<String>| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{a} needs a value")))
                };
                match a.as_str() {
                    "--kind" => kind_prefix = Some(value(&mut it)?),
                    "--min-sev" => {
                        let v = value(&mut it)?;
                        min_sev = ridl_obs::Severity::parse(&v).ok_or_else(|| {
                            usage(&format!("unknown severity {v} (debug|info|warn|error)"))
                        })?;
                    }
                    "--tail" => {
                        let v = value(&mut it)?;
                        tail = Some(
                            v.parse()
                                .map_err(|_| usage(&format!("--tail needs a number, got {v}")))?,
                        );
                    }
                    other => return Err(usage(&format!("unknown events option {other}"))),
                }
            }
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Input(format!("reading {path}: {e}")))?;
            // Line-level filter on the journal's fixed JSONL shape:
            // {"seq":N,"t_ns":N,"sev":"...","kind":"...",...}. The
            // journal.meta header line always passes.
            let json_field = |line: &str, key: &str| -> Option<String> {
                let pat = format!("\"{key}\":\"");
                let start = line.find(&pat)? + pat.len();
                line[start..]
                    .find('"')
                    .map(|end| line[start..start + end].to_owned())
            };
            let mut selected: Vec<&str> = Vec::new();
            let mut total = 0usize;
            for (lineno, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let kind = json_field(line, "kind").ok_or_else(|| {
                    CliError::Corrupt(format!("{path}:{}: journal line without kind", lineno + 1))
                })?;
                if kind == "journal.meta" {
                    continue;
                }
                total += 1;
                let sev = json_field(line, "sev")
                    .and_then(|s| ridl_obs::Severity::parse(&s))
                    .ok_or_else(|| {
                        CliError::Corrupt(format!(
                            "{path}:{}: journal line without severity",
                            lineno + 1
                        ))
                    })?;
                if sev < min_sev {
                    continue;
                }
                if let Some(p) = &kind_prefix {
                    if !kind.starts_with(p.as_str()) {
                        continue;
                    }
                }
                selected.push(line);
            }
            let shown = match tail {
                Some(n) => &selected[selected.len().saturating_sub(n)..],
                None => &selected[..],
            };
            for line in shown {
                println!("{line}");
            }
            eprintln!("-- {} of {} event(s) shown from {path}", shown.len(), total);
            Ok(())
        }
        "bench" => {
            let mut cfg = ridl_bench::pipeline::MacroConfig::from_env();
            let mut out_path: Option<String> = None;
            let mut it = rest.iter();
            let next_val = |flag: &str, it: &mut std::slice::Iter<String>| {
                it.next()
                    .cloned()
                    .ok_or_else(|| usage(&format!("{flag} needs a value")))
            };
            let parse_num = |flag: &str, v: String| {
                v.parse::<u64>()
                    .map_err(|_| usage(&format!("{flag} needs a number, got {v}")))
            };
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--rows" => {
                        cfg.params.target_rows = parse_num(a, next_val(a, &mut it)?)? as usize;
                    }
                    "--ops" => cfg.traffic_ops = parse_num(a, next_val(a, &mut it)?)? as usize,
                    "--sessions" => {
                        cfg.server_sessions = parse_num(a, next_val(a, &mut it)?)? as usize;
                    }
                    "--seed" => cfg.params.seed = parse_num(a, next_val(a, &mut it)?)?,
                    "--pr" => cfg.pr = parse_num(a, next_val(a, &mut it)?)?,
                    "--out" => out_path = Some(next_val(a, &mut it)?),
                    "--dir" => {
                        cfg.store_dir = Some(std::path::PathBuf::from(next_val(a, &mut it)?));
                    }
                    other => return Err(usage(&format!("unknown bench option {other}"))),
                }
            }
            let out_path = out_path.unwrap_or_else(|| format!("BENCH_{}.json", cfg.pr));
            eprintln!(
                "-- RIDL-Bench: seed {}, target {} rows, {} traffic ops, {} server sessions",
                cfg.params.seed, cfg.params.target_rows, cfg.traffic_ops, cfg.server_sessions
            );
            let art = ridl_bench::pipeline::run_macro(&cfg)
                .map_err(|e| CliError::Corrupt(format!("macro benchmark failed: {e}")))?;
            println!("-- E-MACRO: full pipeline at {} rows", art.rows_loaded);
            println!(
                "   {:<24} {:>10} {:>10} {:>12} {:>10}",
                "phase", "sec", "units", "units/s", "p99(us)"
            );
            for p in &art.phases {
                println!(
                    "   {:<24} {:>10.4} {:>10} {:>12.0} {:>10.1}",
                    p.name,
                    p.seconds,
                    p.units,
                    p.per_second,
                    p.p99_ns.unwrap_or(0) as f64 / 1e3
                );
            }
            println!(
                "   recovery: {} units / {} ops replayed in {:.2} ms ({:.0} ops/s, {} WAL bytes)",
                art.wal.replay_units,
                art.wal.replay_ops,
                art.recovery_seconds * 1e3,
                art.wal.replay_ops_per_sec,
                art.wal.bytes
            );
            println!(
                "   sigex: {} verified significant examples ({})",
                art.sigex_examples,
                art.sigex_classes.join(", ")
            );
            if let Some(c) = &art.checkpoint {
                println!(
                    "   checkpoint: full {} bytes / {:.2} ms; delta {} bytes / {:.2} ms \
                     ({}/{} extents dirty after {} churn row-ops, ratio {:.4})",
                    c.full_bytes,
                    c.full_seconds * 1e3,
                    c.delta_bytes,
                    c.delta_seconds * 1e3,
                    c.dirty_extents,
                    c.total_extents,
                    c.churn_rows,
                    c.delta_bytes as f64 / c.full_bytes as f64
                );
            }
            if let Some(s) = &art.server {
                println!(
                    "   server: {} sessions (peak {}), {} reads / {} writes at {:.0} ops/s, \
                     {} admission + {} busy rejects, {} anomalies; read p99 {:.1} us \
                     (burst {:.1} us), write p99 {:.1} us, commit batch p50 {} max {}",
                    s.sessions,
                    s.peak_sessions,
                    s.reads,
                    s.writes,
                    s.ops_per_sec,
                    s.admission_rejects,
                    s.busy_rejects,
                    s.anomalies,
                    s.read_p99_ns as f64 / 1e3,
                    s.burst_read_p99_ns as f64 / 1e3,
                    s.write_p99_ns as f64 / 1e3,
                    s.commit_batch_p50,
                    s.commit_batch_max
                );
            }
            art.write(std::path::Path::new(&out_path))
                .map_err(|e| CliError::Input(format!("writing {out_path}: {e}")))?;
            println!("-- wrote {out_path}");
            Ok(())
        }
        "serve" => {
            let (path, flags) = rest.split_first().ok_or_else(|| {
                usage("usage: ridl serve <schema.ridl> [--dir STORE] [--addr A] [--max-sessions N]")
            })?;
            let mut addr = "127.0.0.1:7077".to_string();
            let mut dir: Option<String> = None;
            let mut cfg = ridl_server::ServerConfig::default();
            let mut it = flags.iter();
            while let Some(a) = it.next() {
                let value = |it: &mut std::slice::Iter<String>| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| usage(&format!("{a} needs a value")))
                };
                match a.as_str() {
                    "--addr" => addr = value(&mut it)?,
                    "--dir" => dir = Some(value(&mut it)?),
                    "--max-sessions" => {
                        let v = value(&mut it)?;
                        cfg.max_sessions = v.parse().map_err(|_| {
                            usage(&format!("--max-sessions needs a number, got {v}"))
                        })?;
                    }
                    other => return Err(usage(&format!("unknown serve option {other}"))),
                }
            }
            let (_, out, _) = mapped(path, &[])?;
            // The commit pipeline owns the fsync cadence (one per batch via
            // flush_wal), so the store itself must never fsync per commit.
            let db = match &dir {
                None => ridl_engine::Database::create(out.rel.clone())
                    .map_err(|e| CliError::Parse(format!("creating database: {e}")))?,
                Some(d) => ridl_engine::Database::open_with(
                    std::sync::Arc::new(ridl_engine::StdIo),
                    d,
                    out.rel.clone(),
                    ridl_engine::Durability {
                        fsync: ridl_engine::FsyncPolicy::Never,
                        ..Default::default()
                    },
                )
                .map_err(|e| CliError::Corrupt(format!("opening store {d}: {e}")))?,
            };
            let server = ridl_server::Server::start(db, &addr, cfg)
                .map_err(|e| CliError::Input(format!("binding {addr}: {e}")))?;
            println!("-- serving {} at {}", out.rel.name, server.addr());
            println!(
                "   line-delimited JSON; send {{\"cmd\":\"shutdown\"}} to stop \
                 (see DESIGN.md §13)"
            );
            server.wait_shutdown_request();
            server
                .shutdown()
                .map_err(|e| CliError::Corrupt(format!("shutdown: {e}")))?;
            println!("-- server stopped cleanly");
            Ok(())
        }
        "client" => {
            let (addr, flags) = rest
                .split_first()
                .ok_or_else(|| usage("usage: ridl client <addr> [--hello NAME]"))?;
            let mut hello: Option<String> = None;
            match flags {
                [] => {}
                [f, name] if f == "--hello" => hello = Some(name.clone()),
                _ => return Err(usage("usage: ridl client <addr> [--hello NAME]")),
            }
            let mut client = ridl_server::Client::connect(addr)
                .map_err(|e| CliError::Input(format!("connecting to {addr}: {e}")))?;
            if let Some(name) = hello {
                let r = client
                    .hello(&name)
                    .map_err(|e| CliError::Input(format!("hello: {e}")))?;
                println!("{r}");
            }
            // Scriptable mode: one request line in from stdin, one response
            // line out — ids are the caller's responsibility.
            let stdin = std::io::stdin();
            let mut line = String::new();
            loop {
                line.clear();
                match stdin.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) => return Err(CliError::Input(format!("reading stdin: {e}"))),
                }
                if line.trim().is_empty() {
                    continue;
                }
                let r = client
                    .send_raw(line.trim())
                    .map_err(|e| CliError::Input(format!("request failed: {e}")))?;
                println!("{r}");
            }
            Ok(())
        }
        "benchcheck" => {
            let read = |path: &str| {
                std::fs::read_to_string(path)
                    .map_err(|e| CliError::Input(format!("reading {path}: {e}")))
            };
            match rest {
                [flag, small, large] if flag == "--scaling" => {
                    let (s, l) = (read(small)?, read(large)?);
                    ridl_bench::artifact::check_checkpoint_scaling(&s, &l).map_err(|e| {
                        CliError::Corrupt(format!("checkpoint scaling check failed: {e}"))
                    })?;
                    let n = |text: &str, key: &str| {
                        ridl_bench::artifact::extract_number(text, key).unwrap_or(0.0)
                    };
                    println!(
                        "-- checkpoint scaling holds: state {:.0} -> {:.0} rows grew full \
                         snapshots {:.0} -> {:.0} bytes, deltas {:.0} -> {:.0} bytes",
                        n(&s, "rows_loaded"),
                        n(&l, "rows_loaded"),
                        n(&s, "full_bytes"),
                        n(&l, "full_bytes"),
                        n(&s, "delta_bytes"),
                        n(&l, "delta_bytes"),
                    );
                    Ok(())
                }
                [path] => {
                    let text = read(path)?;
                    ridl_bench::artifact::validate_artifact(&text).map_err(|e| {
                        CliError::Corrupt(format!("{path}: invalid bench artifact: {e}"))
                    })?;
                    println!("-- {path}: well-formed bench artifact");
                    Ok(())
                }
                _ => Err(usage(
                    "usage: ridl benchcheck <BENCH_x.json> | --scaling <small.json> <large.json>",
                )),
            }
        }
        other => Err(usage(&format!("unknown command {other}"))),
    }
}

fn main() -> ExitCode {
    ridl_obs::init_from_env();
    ridl_obs::init_tracing_from_env();
    // The flight recorder dumps on panic (to RIDL_JOURNAL_JSONL when set,
    // a stderr tail otherwise) — installed before any durability code runs.
    ridl_obs::journal::install_panic_hook();
    let code = match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ridl: {}", e.message());
            ExitCode::from(e.exit_code())
        }
    };
    // Under RIDL_METRICS_JSONL, close the run with a totals snapshot; under
    // RIDL_TRACE_JSON, flush any spans not already exported by a subcommand;
    // under RIDL_JOURNAL_JSONL, leave a final flight-recorder dump.
    ridl_obs::emit_snapshot("ridl");
    ridl_obs::write_chrome_trace_env();
    ridl_obs::journal::dump_env();
    code
}

//! Integration tests of the enforcement observability layer: the
//! per-statement [`EnforcementReport`], the obs sink event stream, and the
//! JSONL snapshot export — driven through the public engine API.
//!
//! The obs counters are process-wide, so every test that asserts on
//! snapshot diffs or sink contents serialises on one lock and uses `>=`
//! where other test threads could add to a counter concurrently.

use std::sync::{Arc, Mutex, OnceLock};

use ridl_brm::{DataType, Value};
use ridl_engine::{BatchOp, Database, EnforcementReport, Pred, Query, ValidationMode};
use ridl_relational::{Column, RelConstraintKind, RelSchema, Table, TableId};

/// Serialises tests that toggle the global detail gate or attach sinks.
fn obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn v(s: &str) -> Option<Value> {
    Some(Value::str(s))
}

/// Paper/Program_Paper pair with a primary key each and one foreign key.
fn sample_db() -> Database {
    let mut s = RelSchema::new("obs_it");
    let d = s.domain("D", DataType::Char(10));
    let paper = s.add_table(Table::new(
        "Paper",
        vec![
            Column::not_null("Paper_Id", d),
            Column::nullable("Program_Id", d),
        ],
    ));
    let pp = s.add_table(Table::new(
        "Program_Paper",
        vec![
            Column::not_null("Program_Id", d),
            Column::not_null("Session", d),
        ],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: paper,
        cols: vec![0],
    });
    s.add_named(RelConstraintKind::PrimaryKey {
        table: pp,
        cols: vec![0],
    });
    s.add_named(RelConstraintKind::ForeignKey {
        table: pp,
        cols: vec![0],
        ref_table: paper,
        ref_cols: vec![1],
    });
    Database::create(s).unwrap()
}

#[test]
fn insert_report_has_mode_strategy_and_delta_size() {
    let _guard = obs_lock().lock().unwrap();
    ridl_obs::set_detail(true);
    let mut db = sample_db();
    assert!(db.last_statement_report().is_none());

    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    let r: &EnforcementReport = db.last_statement_report().unwrap();
    assert_eq!(r.statement, "insert");
    assert_eq!(r.mode, ValidationMode::Incremental);
    assert_eq!(r.strategy, "delta");
    assert_eq!((r.ops, r.net_ops, r.violations), (1, 1, 0));
    assert!(!r.reverted);
    // Detail gate on: the delta path probed the key index at least once
    // and the timing filled in.
    assert!(r.key_probes >= 1, "report: {r:?}");
    assert!(r.duration_ns > 0, "report: {r:?}");
    assert!(!r.summary().is_empty());
    assert!(r.render().contains("delta"));

    // A rejected insert reports its violation and the revert.
    let err = db.insert("Paper", vec![v("P1"), None]);
    assert!(err.is_err());
    let r = db.last_statement_report().unwrap();
    assert!(r.reverted);
    assert!(r.violations >= 1);
    ridl_obs::set_detail(false);
}

#[test]
fn full_state_mode_is_reported_as_such() {
    let _guard = obs_lock().lock().unwrap();
    let mut db = sample_db();
    db.set_validation_mode(ValidationMode::FullState);
    db.insert("Paper", vec![v("P1"), None]).unwrap();
    let r = db.last_statement_report().unwrap();
    assert_eq!(r.mode, ValidationMode::FullState);
    assert_eq!(r.strategy, "full");
}

#[test]
fn batch_report_nets_inverse_ops() {
    let _guard = obs_lock().lock().unwrap();
    let mut db = sample_db();
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.apply_batch([
        BatchOp::delete("Paper", vec![v("P1"), v("A1")]),
        BatchOp::insert("Paper", vec![v("P1"), v("A1")]),
        BatchOp::insert("Paper", vec![v("P2"), None]),
    ])
    .unwrap();
    let r = db.last_statement_report().unwrap();
    assert_eq!(r.statement, "batch");
    assert_eq!(r.ops, 3);
    assert_eq!(r.net_ops, 1, "inverse pair cancels");
}

#[test]
fn bulk_load_reports_aggregate_strategy() {
    let _guard = obs_lock().lock().unwrap();
    let mut db = sample_db();
    let n = db
        .bulk_load([
            (TableId(0), vec![v("P1"), v("A1")]),
            (TableId(1), vec![v("A1"), v("S1")]),
        ])
        .unwrap();
    assert_eq!(n, 2);
    let r = db.last_statement_report().unwrap();
    assert_eq!(r.statement, "bulk_load");
    assert_eq!(r.strategy, "aggregate");
    assert_eq!(r.ops, 2);
    assert!(!r.reverted);

    // A failing load still leaves a report behind, marked reverted.
    assert!(db
        .bulk_load([(TableId(1), vec![v("A9"), v("S9")])])
        .is_err());
    let r = db.last_statement_report().unwrap();
    assert_eq!(r.statement, "bulk_load");
    assert!(r.reverted);
    assert!(r.violations >= 1);
}

#[test]
fn deferred_inserts_and_commit_report() {
    let _guard = obs_lock().lock().unwrap();
    let mut db = sample_db();
    db.begin();
    db.insert_unchecked("Paper", vec![v("P1"), None]).unwrap();
    assert_eq!(db.last_statement_report().unwrap().strategy, "deferred");
    db.commit().unwrap();
    let r = db.last_statement_report().unwrap();
    assert_eq!(r.statement, "commit");
    assert_eq!(r.strategy, "full");
}

#[test]
fn per_kind_breakdown_names_the_checked_classes() {
    let _guard = obs_lock().lock().unwrap();
    ridl_obs::set_detail(true);
    let mut db = sample_db();
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
    let r = db.last_statement_report().unwrap();
    let classes: Vec<&str> = r.per_kind.iter().map(|k| k.class).collect();
    assert!(classes.contains(&"key"), "classes: {classes:?}");
    assert!(classes.contains(&"foreign_key"), "classes: {classes:?}");
    assert!(r.per_kind.iter().all(|k| k.checks > 0));
    ridl_obs::set_detail(false);
}

#[test]
fn statement_events_flow_through_the_sink() {
    let _guard = obs_lock().lock().unwrap();
    let sink = Arc::new(ridl_obs::MemorySink::new());
    ridl_obs::attach_sink(sink.clone());
    let mut db = sample_db();
    db.insert("Paper", vec![v("P1"), None]).unwrap();
    db.apply_batch([BatchOp::insert("Paper", vec![v("P2"), None])])
        .unwrap();
    ridl_obs::detach_sink();
    let events = sink.named("engine.statement");
    assert!(events.len() >= 2, "events: {events:?}");
    assert!(events.iter().any(|(_, d)| d.starts_with("insert")));
    assert!(events.iter().any(|(_, d)| d.starts_with("batch")));
}

#[test]
fn snapshot_diff_counts_statements_and_exports_jsonl() {
    let _guard = obs_lock().lock().unwrap();
    let before = ridl_obs::snapshot();
    let mut db = sample_db();
    db.insert("Paper", vec![v("P1"), None]).unwrap();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    let diff = ridl_obs::snapshot().since(&before);
    assert!(diff.counter("engine.statements") >= 2);
    assert!(diff.counter("engine.statements.delta") >= 2);
    let jsonl = ridl_obs::snapshot_jsonl("it", &diff);
    assert!(
        jsonl.contains("\"metric\":\"it/engine.statements\""),
        "{jsonl}"
    );
    for line in jsonl.lines() {
        assert!(
            line.starts_with("{\"metric\":") && line.ends_with('}'),
            "{line}"
        );
    }
}

/// No-overhead smoke check: with no sink attached and the detail gate off
/// (the default), the per-probe counters and timers never run — reports
/// carry only the always-on statement-level fields.
#[test]
fn detail_gate_defaults_off_and_reports_stay_cheap() {
    let _guard = obs_lock().lock().unwrap();
    assert!(!ridl_obs::detail_enabled(), "detail gate must default off");
    assert!(!ridl_obs::sink_attached(), "no sink expected by default");
    let mut db = sample_db();
    db.insert("Paper", vec![v("P1"), None]).unwrap();
    let r = db.last_statement_report().unwrap();
    assert_eq!((r.ops, r.net_ops), (1, 1), "always-on fields still fill in");
    assert_eq!(r.duration_ns, 0, "timing must be off without the gate");
    assert_eq!((r.key_probes, r.sel_probes), (0, 0));
    assert!(r.per_kind.is_empty(), "per-kind costs are detail-gated");
}

#[test]
fn explain_and_select_agree_with_obs_counting() {
    let _guard = obs_lock().lock().unwrap();
    let before = ridl_obs::snapshot();
    let mut db = sample_db();
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
    let q = Query::from("Paper")
        .join("Program_Paper", &[("Program_Id", "Program_Id")])
        .filter(Pred::NotNull("Session".into()))
        .select(&["Paper_Id", "Session"]);
    let plan = db.explain(&q).unwrap();
    assert_eq!(plan.rows_out, db.select(&q).unwrap().len());
    assert_eq!(plan.steps.len(), 4);
    let diff = ridl_obs::snapshot().since(&before);
    assert!(diff.counter("engine.explains") >= 1);
}

//! Experiment **E-PAR**: parallel full-state validation is byte-identical
//! to the sequential validator.
//!
//! [`validate_with_workers`] partitions the work (per-table structure
//! passes plus per-constraint checks) across scoped threads and merges the
//! per-unit violation buffers in deterministic unit order. The claim is
//! not merely "same verdict" but **byte-identical output**: the same
//! `RelViolation` list, in the same order, as [`validate`] — on valid
//! states, and on states deliberately corrupted in every way the model can
//! be wrong (duplicate keys, dangling FKs, NULLs in NOT NULL columns,
//! frequency overflows, asymmetric view selections, malformed rows).

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use ridl_brm::Value;
use ridl_relational::{validate, validate_with_workers, RelSchema, RelState, Row, TableId};
use ridl_workloads::scenario::{self, MappedPopulation};
use ridl_workloads::synth::GenParams;

/// Pre-built mapped synthetic populations (schema shapes vary per seed).
fn populations() -> &'static Vec<(RelSchema, RelState)> {
    static CACHE: OnceLock<Vec<(RelSchema, RelState)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        (0..4u64)
            .map(|seed| {
                let params = GenParams {
                    seed: 71 + seed,
                    nolots: 6,
                    attrs_per_nolot: (1, 3),
                    mn_facts: 4,
                    sublinks: 2,
                    card_prob: 0.5,
                    ..GenParams::default()
                };
                let MappedPopulation { schema, state } = scenario::mapped_population(&params, 5);
                (schema, state)
            })
            .collect()
    })
}

/// Applies `n` random corruptions directly to the state, bypassing all
/// enforcement: cell overwrites (including NULLing NOT NULL columns and
/// retargeting FK values), whole-row deletions (orphaning references and
/// unbalancing view selections), near-duplicate insertions (tripping
/// keys), and arity-mangled rows (tripping the structure pass).
fn corrupt(schema: &RelSchema, state: &mut RelState, seed: u64, n: usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tables: Vec<TableId> = schema.tables().map(|(tid, _)| tid).collect();
    for _ in 0..n {
        let tid = tables[rng.gen_range(0..tables.len())];
        let rows: Vec<Row> = state.rows(tid).iter().cloned().collect();
        if rows.is_empty() {
            continue;
        }
        let victim = rows[rng.gen_range(0..rows.len())].clone();
        match rng.gen_range(0..4u32) {
            0 => {
                // Overwrite one cell with NULL or a foreign value.
                let mut row = victim.clone();
                let c = rng.gen_range(0..row.len());
                row[c] = if rng.gen_bool(0.4) {
                    None
                } else {
                    Some(Value::str(format!("X{}", rng.gen_range(0..1000u32))))
                };
                state.remove(tid, &victim);
                state.insert(tid, row);
            }
            1 => {
                // Delete the row outright.
                state.remove(tid, &victim);
            }
            2 => {
                // Near-duplicate: same row with one cell tweaked, which
                // duplicates any key not covering that cell.
                let mut row = victim.clone();
                let c = rng.gen_range(0..row.len());
                row[c] = Some(Value::str(format!("D{}", rng.gen_range(0..1000u32))));
                state.insert(tid, row);
            }
            _ => {
                // Mangle the arity (structure violation).
                let mut row = victim.clone();
                row.push(Some(Value::str("extra")));
                state.remove(tid, &victim);
                state.insert(tid, row);
            }
        }
    }
}

fn assert_identical(schema: &RelSchema, state: &RelState) -> Result<(), TestCaseError> {
    let seq = validate(schema, state);
    for workers in [1usize, 2, 3, 8] {
        let par = validate_with_workers(schema, state, workers);
        prop_assert_eq!(
            &par,
            &seq,
            "{} workers diverged from sequential ({} violations)",
            workers,
            seq.len()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// On valid populations the parallel validator returns the same (empty)
    /// list for every worker count.
    #[test]
    fn parallel_equals_sequential_on_valid_states(schema_ix in 0usize..4) {
        let (schema, state) = &populations()[schema_ix];
        let seq = validate(schema, state);
        prop_assert!(seq.is_empty(), "population should be valid: {seq:?}");
        assert_identical(schema, state)?;
    }

    /// On corrupted states — where the violation list is long and drawn
    /// from many constraint kinds — the parallel output is byte-identical,
    /// order included, for every worker count.
    #[test]
    fn parallel_equals_sequential_on_corrupted_states(
        schema_ix in 0usize..4,
        seed in 0u64..1u64 << 32,
        corruptions in 1usize..12,
    ) {
        let (schema, state) = &populations()[schema_ix];
        let mut bad = state.clone();
        corrupt(schema, &mut bad, seed, corruptions);
        assert_identical(schema, &bad)?;
    }
}

/// Worker counts beyond the unit count (and the degenerate 1-worker case)
/// are safe: no partition is ever empty-handed into a panic, and output is
/// unchanged.
#[test]
fn extreme_worker_counts_are_safe() {
    let (schema, state) = &populations()[0];
    let mut bad = state.clone();
    corrupt(schema, &mut bad, 3, 6);
    let seq = validate(schema, &bad);
    for workers in [1usize, 64, 1024] {
        assert_eq!(validate_with_workers(schema, &bad, workers), seq);
    }
}

/// The public `validate_parallel` entry point (auto worker count, with its
/// small-state sequential shortcut) also matches on both sides of the
/// size threshold.
#[test]
fn auto_parallel_matches_sequential() {
    // Small: below the threshold, takes the sequential shortcut.
    let (schema, state) = &populations()[1];
    assert_eq!(
        ridl_relational::validate_parallel(schema, state),
        validate(schema, state)
    );
    // Large: a scaled industrial population above the threshold.
    let sc = scenario::industrial_population(11, 2_000);
    assert_eq!(
        ridl_relational::validate_parallel(&sc.schema, &sc.state),
        validate(&sc.schema, &sc.state)
    );
}

use ridl_brm::{DataType, Value};
use ridl_engine::{Database, EngineError};
use ridl_relational::{Column, RelConstraintKind, RelSchema, Table};

fn v(s: &str) -> Option<Value> {
    Some(Value::str(s))
}

fn sample_db() -> Database {
    let mut s = RelSchema::new("repro");
    let d = s.domain("D", DataType::Char(10));
    let paper = s.add_table(Table::new(
        "Paper",
        vec![
            Column::not_null("Paper_Id", d),
            Column::nullable("Program_Id", d),
        ],
    ));
    let pp = s.add_table(Table::new(
        "Program_Paper",
        vec![
            Column::not_null("Program_Id", d),
            Column::not_null("Session", d),
        ],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: paper,
        cols: vec![0],
    });
    s.add_named(RelConstraintKind::PrimaryKey {
        table: pp,
        cols: vec![0],
    });
    s.add_named(RelConstraintKind::ForeignKey {
        table: pp,
        cols: vec![0],
        ref_table: paper,
        ref_cols: vec![1],
    });
    Database::create(s).unwrap()
}

/// A full scan that passes *inside* a transaction must not discharge the
/// deferred check: rolling the transaction back reverts the statement the
/// scan validated, while the uncovered unchecked row survives — leaving
/// the state invalid. Discharge is only sound at irrevocable points.
#[test]
fn in_transaction_full_scan_must_not_discharge_uncovered_unchecked_rows() {
    let mut db = sample_db();
    // Uncovered unchecked row with a dangling FK (A9 references no Paper).
    db.insert_unchecked("Program_Paper", vec![v("A9"), v("S9")])
        .unwrap();
    db.begin();
    // This insert repairs the FK, so the full-state fallback passes...
    db.insert("Paper", vec![v("P9"), v("A9")]).unwrap();
    assert_eq!(db.last_statement_report().unwrap().strategy, "full");
    // ...but the rollback re-breaks it; the deferred flag must survive.
    db.rollback().unwrap();
    let res = db.insert("Paper", vec![v("P1"), None]);
    assert_eq!(
        db.last_statement_report().unwrap().strategy,
        "full",
        "deferred flag wrongly discharged inside the transaction"
    );
    assert!(
        matches!(res, Err(EngineError::ConstraintViolation(_))),
        "dangling FK must surface on the full-state fallback, got {res:?}"
    );
}

#[test]
fn rollback_must_not_discharge_uncovered_unchecked_rows() {
    let mut db = sample_db();
    // Unchecked row with a dangling FK, OUTSIDE any transaction: it leaves
    // the undo log immediately and can never be reverted away.
    db.insert_unchecked("Program_Paper", vec![v("A9"), v("S9")])
        .unwrap();
    // A transaction adds (and rolls back) a second unchecked row.
    db.begin();
    db.insert_unchecked("Paper", vec![v("P9"), None]).unwrap();
    db.rollback().unwrap();
    // The dangling-FK row is still in the state, never validated. The
    // engine must still treat the state as having pending unchecked rows
    // (full-state fallback); if the watermark reset cleared the flag, the
    // next statement runs delta validation on an invalid pre-state and the
    // dangling FK is silently accepted.
    let res = db.insert("Paper", vec![v("P1"), None]);
    let report = db.last_statement_report().unwrap();
    assert_eq!(
        report.strategy, "full",
        "deferred flag was wrongly discharged; got {:?} (insert result {:?})",
        report.strategy, res
    );
    assert!(
        matches!(res, Err(EngineError::ConstraintViolation(_))),
        "dangling FK must surface on the full-state fallback, got {res:?}"
    );
}

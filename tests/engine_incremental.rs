//! Experiment **E-INC**: incremental constraint enforcement.
//!
//! Two claims are tested here. First, *atomicity*: a rejected mutation
//! leaves the database — state **and** maintained constraint indexes —
//! byte-identical to before, because the engine rolls back through its
//! undo log rather than restoring a snapshot. Second, *equivalence*: the
//! delta validator accepts/rejects exactly the same mutations as a full
//! state re-validation, checked on random mutation sequences against the
//! relational schema mapped from the CRIS conference case study.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use ridl_brm::{DataType, Value};
use ridl_core::state_map::map_population;
use ridl_core::{MappingOptions, Workbench};
use ridl_engine::{Database, Pred, ValidationMode};
use ridl_relational::{Column, RelConstraintKind, RelSchema, Row, Table};
use ridl_workloads::cris;

fn v(s: &str) -> Option<Value> {
    Some(Value::str(s))
}

/// Two tables with a PK, an FK and a frequency bound — enough to make
/// every mutation kind fail on demand.
fn small_db() -> Database {
    let mut s = RelSchema::new("inc");
    let d = s.domain("D", DataType::Char(8));
    let paper = s.add_table(Table::new(
        "Paper",
        vec![Column::not_null("Id", d), Column::nullable("Program_Id", d)],
    ));
    let pp = s.add_table(Table::new(
        "Program_Paper",
        vec![Column::not_null("Program_Id", d)],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: paper,
        cols: vec![0],
    });
    s.add_named(RelConstraintKind::PrimaryKey {
        table: pp,
        cols: vec![0],
    });
    s.add_named(RelConstraintKind::ForeignKey {
        table: paper,
        cols: vec![1],
        ref_table: pp,
        ref_cols: vec![0],
    });
    let mut db = Database::create(s).unwrap();
    db.insert("Program_Paper", vec![v("A1")]).unwrap();
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    db
}

/// Runs a failing mutation and asserts the database is untouched, indexes
/// included.
fn assert_rejected_and_untouched(db: &mut Database, act: impl FnOnce(&mut Database) -> bool) {
    let state_before = db.state().clone();
    let indexes_before = db.indexes().clone();
    let rejected = act(db);
    assert!(rejected, "mutation unexpectedly succeeded");
    assert_eq!(
        db.state(),
        &state_before,
        "state changed by failed mutation"
    );
    assert_eq!(
        db.indexes(),
        &indexes_before,
        "indexes changed by failed mutation"
    );
}

#[test]
fn failed_insert_leaves_database_byte_identical() {
    let mut db = small_db();
    // Duplicate primary key (different row, same key).
    assert_rejected_and_untouched(&mut db, |db| {
        db.insert("Paper", vec![v("P1"), None]).is_err()
    });
    // Dangling foreign key.
    assert_rejected_and_untouched(&mut db, |db| {
        db.insert("Paper", vec![v("P3"), v("NOPE")]).is_err()
    });
    // NOT NULL violation.
    assert_rejected_and_untouched(&mut db, |db| db.insert("Paper", vec![None, None]).is_err());
}

#[test]
fn failed_update_where_leaves_database_byte_identical() {
    let mut db = small_db();
    // Collapsing both papers onto one key duplicates the PK.
    assert_rejected_and_untouched(&mut db, |db| {
        db.update_where("Paper", &[], &[("Id", v("SAME"))]).is_err()
    });
    // Pointing a paper at a nonexistent program dangles the FK.
    assert_rejected_and_untouched(&mut db, |db| {
        db.update_where(
            "Paper",
            &[Pred::Eq("Id".into(), Value::str("P2"))],
            &[("Program_Id", v("NOPE"))],
        )
        .is_err()
    });
}

#[test]
fn failed_delete_where_leaves_database_byte_identical() {
    let mut db = small_db();
    // Deleting the referenced program orphans P1's foreign key.
    assert_rejected_and_untouched(&mut db, |db| {
        db.delete_where(
            "Program_Paper",
            &[Pred::Eq("Program_Id".into(), Value::str("A1"))],
        )
        .is_err()
    });
}

#[test]
fn rollback_restores_database_byte_identical() {
    let mut db = small_db();
    let state_before = db.state().clone();
    let indexes_before = db.indexes().clone();
    db.begin();
    db.insert("Program_Paper", vec![v("A2")]).unwrap();
    db.insert("Paper", vec![v("P3"), v("A2")]).unwrap();
    db.update_where(
        "Paper",
        &[Pred::Eq("Id".into(), Value::str("P2"))],
        &[("Program_Id", v("A2"))],
    )
    .unwrap();
    db.delete_where("Paper", &[Pred::Eq("Id".into(), Value::str("P3"))])
        .unwrap();
    db.rollback().unwrap();
    assert_eq!(db.state(), &state_before);
    assert_eq!(db.indexes(), &indexes_before);
}

// ---- delta ≡ full equivalence on the CRIS workload ----

/// Maps the CRIS case study and loads its consistent sample population.
fn cris_db() -> Database {
    let schema = cris::schema();
    let pop = cris::population(&schema);
    let wb = Workbench::new(schema);
    let out = wb.map(&MappingOptions::new()).expect("CRIS maps");
    let st = map_population(&out.schema, &out, &pop).expect("state map");
    let mut db = Database::create(out.rel.clone()).unwrap();
    db.load_state(st).unwrap();
    db
}

/// A value pool per (table, column): everything currently in the column,
/// so random rows are plausible enough to sometimes pass and sometimes
/// trip keys/FKs/view constraints.
fn column_pools(db: &Database) -> Vec<Vec<Vec<Option<Value>>>> {
    let schema = db.schema();
    let state = db.state();
    schema
        .tables()
        .map(|(tid, t)| {
            (0..t.arity())
                .map(|c| {
                    let mut pool: Vec<Option<Value>> = state
                        .rows(tid)
                        .iter()
                        .map(|r| r[c].clone())
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .collect();
                    if t.column(c as u32).nullable {
                        pool.push(None);
                    }
                    pool
                })
                .collect()
        })
        .collect()
}

fn random_mutation(
    db: &mut Database,
    pools: &[Vec<Vec<Option<Value>>>],
    rng: &mut rand::rngs::StdRng,
) -> Result<(), ridl_engine::EngineError> {
    let schema_tables: Vec<(usize, String)> = db
        .schema()
        .tables()
        .map(|(tid, t)| (tid.index(), t.name.clone()))
        .collect();
    let (ti, tname) = schema_tables[rng.gen_range(0..schema_tables.len())].clone();
    let arity = pools[ti].len();
    let pick = |rng: &mut rand::rngs::StdRng, c: usize| -> Option<Value> {
        let pool = &pools[ti][c];
        if pool.is_empty() {
            None
        } else {
            pool[rng.gen_range(0..pool.len())].clone()
        }
    };
    match rng.gen_range(0..3u32) {
        0 => {
            let row: Row = (0..arity).map(|c| pick(rng, c)).collect();
            db.insert(&tname, row).map(|_| ())
        }
        1 => {
            let col = db.schema().tables[ti].columns[rng.gen_range(0..arity)]
                .name
                .clone();
            let pred = match pick(rng, 0) {
                Some(val) => Pred::Eq(db.schema().tables[ti].columns[0].name.clone(), val),
                None => Pred::IsNull(db.schema().tables[ti].columns[0].name.clone()),
            };
            let value_col = rng.gen_range(0..arity);
            let value = pick(rng, value_col);
            db.update_where(&tname, &[pred], &[(&col, value)])
                .map(|_| ())
        }
        _ => {
            let pred = match pick(rng, 0) {
                Some(val) => Pred::Eq(db.schema().tables[ti].columns[0].name.clone(), val),
                None => Pred::IsNull(db.schema().tables[ti].columns[0].name.clone()),
            };
            db.delete_where(&tname, &[pred]).map(|_| ())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The incremental engine and a full-revalidation engine, fed the same
    /// random mutation sequence, accept/reject identically and end up in
    /// identical states. (In debug builds the incremental engine
    /// additionally asserts after every accepted mutation that the full
    /// validator agrees and that its indexes match a fresh rebuild.)
    #[test]
    fn delta_validation_equals_full_validation(seed in 0u64..64, ops in 8usize..24) {
        let mut inc = cris_db();
        let mut full = cris_db();
        full.set_validation_mode(ValidationMode::FullState);
        prop_assert_eq!(inc.validation_mode(), ValidationMode::Incremental);
        let pools = column_pools(&inc);
        for i in 0..ops {
            // Seed a fresh RNG per op so both engines draw the exact same
            // mutation.
            let op_seed = seed ^ ((i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            let mut r1 = rand::rngs::StdRng::seed_from_u64(op_seed);
            let mut r2 = rand::rngs::StdRng::seed_from_u64(op_seed);
            let r_inc = random_mutation(&mut inc, &pools, &mut r1);
            let r_full = random_mutation(&mut full, &pools, &mut r2);
            // Same verdict...
            prop_assert_eq!(
                r_inc.is_ok(),
                r_full.is_ok(),
                "op {} diverged: incremental {:?} vs full {:?}",
                i,
                r_inc,
                r_full
            );
            // ...and same state afterwards.
            prop_assert_eq!(inc.state(), full.state(), "state diverged at op {}", i);
        }
    }
}

/// Transactions on the CRIS database: bulk unchecked loads validate at
/// commit, and a failed commit unwinds through the undo log.
#[test]
fn cris_transaction_commit_and_undo() {
    let mut db = cris_db();
    let state_before = db.state().clone();
    let indexes_before = db.indexes().clone();
    // A transaction whose commit must fail: an all-NULL row in a table
    // with a NOT NULL column slips past `insert_unchecked` but not the
    // commit-time full validation.
    let (tid, tname, arity) = db
        .schema()
        .tables()
        .find(|(_, t)| t.columns.iter().any(|c| !c.nullable))
        .map(|(tid, t)| (tid, t.name.clone(), t.arity()))
        .expect("CRIS mapping produces NOT NULL columns");
    db.begin();
    let n = db.state().rows(tid).len();
    db.insert_unchecked(&tname, vec![None; arity])
        .unwrap_or_else(|e| panic!("unchecked insert into {tname}: {e}"));
    assert_eq!(db.state().rows(tid).len(), n + 1, "unchecked row landed");
    let err = db.commit();
    assert!(err.is_err(), "all-NULL row must fail NOT NULL at commit");
    assert_eq!(db.state(), &state_before, "failed commit rolled back");
    assert_eq!(db.indexes(), &indexes_before);
}

//! Cross-crate property tests on the core data structures and invariants:
//! serde round trips with arbitrary constraint shapes, lexer totality,
//! canonicalisation idempotence, and DDL determinism.

use proptest::prelude::*;

use ridl_brm::{
    ConstraintKind, Decimal, FactTypeId, ObjectTypeId, RoleOrSublink, RoleRef, Side, SublinkId,
    Value,
};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[ -~]{0,12}".prop_map(Value::Str),
        any::<i64>().prop_map(Value::Int),
        (any::<i64>(), 0u8..6).prop_map(|(m, s)| Value::Num(Decimal::new(m, s))),
        any::<i32>().prop_map(Value::Date),
        any::<bool>().prop_map(Value::Bool),
        (0u64..1000).prop_map(Value::entity),
    ]
}

fn role_strategy() -> impl Strategy<Value = RoleRef> {
    (0u32..50, any::<bool>()).prop_map(|(f, s)| {
        RoleRef::new(
            FactTypeId::from_raw(f),
            if s { Side::Left } else { Side::Right },
        )
    })
}

fn item_strategy() -> impl Strategy<Value = RoleOrSublink> {
    prop_oneof![
        role_strategy().prop_map(RoleOrSublink::Role),
        (0u32..20).prop_map(|s| RoleOrSublink::Sublink(SublinkId::from_raw(s))),
    ]
}

fn constraint_strategy() -> impl Strategy<Value = ConstraintKind> {
    prop_oneof![
        prop::collection::vec(role_strategy(), 1..4)
            .prop_map(|roles| ConstraintKind::Uniqueness { roles }),
        (0u32..30, prop::collection::vec(item_strategy(), 1..4)).prop_map(|(o, items)| {
            ConstraintKind::Total {
                over: ObjectTypeId::from_raw(o),
                items,
            }
        }),
        prop::collection::vec(item_strategy(), 2..5)
            .prop_map(|items| ConstraintKind::Exclusion { items }),
        (
            prop::collection::vec(role_strategy(), 1..3),
            prop::collection::vec(role_strategy(), 1..3)
        )
            .prop_map(|(sub, sup)| ConstraintKind::Subset { sub, sup }),
        (
            prop::collection::vec(role_strategy(), 1..3),
            prop::collection::vec(role_strategy(), 1..3)
        )
            .prop_map(|(a, b)| ConstraintKind::Equality { a, b }),
        (role_strategy(), 0u32..5, proptest::option::of(5u32..10))
            .prop_map(|(role, min, max)| ConstraintKind::Cardinality { role, min, max }),
        (0u32..30, prop::collection::vec(value_strategy(), 0..5)).prop_map(|(o, values)| {
            ConstraintKind::Value {
                over: ObjectTypeId::from_raw(o),
                values,
            }
        }),
    ]
}

proptest! {
    /// The meta-database's constraint encoding is a bijection on arbitrary
    /// constraint bodies — including hostile strings in value lists.
    #[test]
    fn metadb_constraint_serde_roundtrip(kind in constraint_strategy()) {
        let encoded = ridl_metadb::serde::encode_constraint(&kind);
        let decoded = ridl_metadb::serde::decode_constraint(&encoded)
            .unwrap_or_else(|e| panic!("{encoded}: {e}"));
        prop_assert_eq!(decoded, kind, "{}", encoded);
    }

    /// Value tokens round-trip.
    #[test]
    fn metadb_value_serde_roundtrip(v in value_strategy()) {
        let enc = ridl_metadb::serde::encode_value(&v);
        prop_assert_eq!(ridl_metadb::serde::decode_value(&enc).unwrap(), v);
    }

    /// The RIDL lexer is total: it never panics, returning tokens or a
    /// positioned error on arbitrary input.
    #[test]
    fn lexer_is_total(src in "\\PC{0,200}") {
        let _ = ridl_lang::lex(&src);
    }

    /// So is the query-text parser.
    #[test]
    fn query_parser_is_total(src in "\\PC{0,200}") {
        let _ = ridl_query::parse_query(&src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Constraint canonicalisation is idempotent on generated schemas.
    #[test]
    fn canonicalize_is_idempotent(seed in 0u64..100) {
        let s = ridl_workloads::synth::generate(&ridl_workloads::synth::GenParams {
            seed,
            ..Default::default()
        });
        let (c1, _) = ridl_transform::canonicalize_constraints(&s.schema);
        let (c2, removed) = ridl_transform::canonicalize_constraints(&c1);
        prop_assert_eq!(removed, 0);
        prop_assert_eq!(c1.num_constraints(), c2.num_constraints());
    }

    /// DDL generation is deterministic and covers every table, in every
    /// dialect.
    #[test]
    fn ddl_is_deterministic_and_complete(seed in 0u64..40) {
        let s = ridl_workloads::synth::generate(&ridl_workloads::synth::GenParams {
            seed,
            ..Default::default()
        });
        let wb = ridl_core::Workbench::new(s.schema);
        prop_assume!(wb.analysis().is_mappable());
        let out = wb.map(&ridl_core::MappingOptions::new()).unwrap();
        for kind in [
            ridl_sqlgen::DialectKind::Sql2,
            ridl_sqlgen::DialectKind::Oracle,
            ridl_sqlgen::DialectKind::Ingres,
            ridl_sqlgen::DialectKind::Db2,
        ] {
            let a = ridl_sqlgen::generate_for(&out.rel, kind);
            let b = ridl_sqlgen::generate_for(&out.rel, kind);
            prop_assert_eq!(&a.text, &b.text);
            prop_assert_eq!(
                a.text.matches("CREATE TABLE ").count(),
                out.table_count(),
                "{:?}",
                kind
            );
        }
    }

    /// The mapping itself is deterministic: equal inputs, equal schemas.
    #[test]
    fn mapping_is_deterministic(seed in 0u64..40) {
        let s = ridl_workloads::synth::generate(&ridl_workloads::synth::GenParams {
            seed,
            ..Default::default()
        });
        let wb = ridl_core::Workbench::new(s.schema);
        prop_assume!(wb.analysis().is_mappable());
        let a = wb.map(&ridl_core::MappingOptions::new()).unwrap();
        let b = wb.map(&ridl_core::MappingOptions::new()).unwrap();
        prop_assert_eq!(a.rel.tables.len(), b.rel.tables.len());
        for ((_, ta), (_, tb)) in a.rel.tables().zip(b.rel.tables()) {
            prop_assert_eq!(ta, tb);
        }
        prop_assert_eq!(a.rel.constraints.len(), b.rel.constraints.len());
    }
}

/// §4.2.3: "Even within the same relation two different naming conventions
/// for the same NOLOT might be useful" — a second total 1:1 naming fact
/// lands in the anchor relation as a candidate key.
#[test]
fn two_naming_conventions_in_one_relation() {
    use ridl_brm::builder::{identify, SchemaBuilder};
    use ridl_brm::DataType;
    let mut b = SchemaBuilder::new("s");
    b.nolot("Person").unwrap();
    identify(&mut b, "Person", "SSN", DataType::Char(9)).unwrap();
    b.lot("Full_Name", DataType::Char(40)).unwrap();
    b.fact("named", ("has_name", "Person"), ("name_of", "Full_Name"))
        .unwrap();
    b.unique("named", Side::Left).unwrap();
    b.unique("named", Side::Right).unwrap();
    b.total_role("named", Side::Left).unwrap();
    let wb = ridl_core::Workbench::new(b.finish().unwrap());
    let out = wb.map(&ridl_core::MappingOptions::new()).unwrap();
    assert_eq!(out.table_count(), 1);
    let t = out.rel.table_by_name("Person").unwrap();
    // SSN is the primary key (smallest), Full_Name a NOT NULL candidate key:
    // both naming conventions live in the one relation.
    assert_eq!(
        out.rel.col_names(t, out.rel.primary_key_of(t).unwrap()),
        vec!["SSN"]
    );
    let has_ck = out.rel.constraints.iter().any(|c| {
        matches!(&c.kind, ridl_relational::RelConstraintKind::CandidateKey { table, cols }
            if *table == t && out.rel.col_names(t, cols) == vec!["Full_Name_name_of"])
    });
    assert!(has_ck, "{:?}", out.rel.constraints);
    assert!(
        !out.rel
            .table(t)
            .column(
                out.rel
                    .table(t)
                    .column_by_name("Full_Name_name_of")
                    .unwrap()
            )
            .nullable
    );
}

/// Lexical override (§4.2.3): forcing Program_Paper to use the *inherited*
/// Paper_Id convention instead of its own Paper_ProgramId changes the
/// sub/super pairing from `_Is` columns to a direct shared-key foreign key.
#[test]
fn lexical_override_switches_subtype_key_scheme() {
    let schema = ridl_workloads::fig6::schema();
    let pp = schema.object_type_by_name("Program_Paper").unwrap();
    let wb = ridl_core::Workbench::new(schema);
    let reps = wb.analysis().references.reps_of(pp);
    // Representation 0 is the smallest (own Paper_ProgramId); find the
    // inherited Paper_Id one.
    let inherited = reps
        .iter()
        .position(|r| r.byte_width() == 6)
        .expect("inherited representation present");
    let out = wb
        .map(&ridl_core::MappingOptions::new().with_lexical(pp, inherited))
        .unwrap();
    let pp_t = out.rel.table_by_name("Program_Paper").unwrap();
    let paper_t = out.rel.table_by_name("Paper").unwrap();
    // The sub-relation is keyed by Paper_Id now.
    assert_eq!(
        out.rel
            .col_names(pp_t, out.rel.primary_key_of(pp_t).unwrap()),
        vec!["Paper_Id"]
    );
    // No `_Is` column in Paper; the FK goes key-to-key.
    assert!(out
        .rel
        .table(paper_t)
        .column_by_name("Paper_ProgramId_Is")
        .is_none());
    let fk_key_to_key = out.rel.constraints.iter().any(|c| {
        matches!(&c.kind, ridl_relational::RelConstraintKind::ForeignKey { table, ref_table, ref_cols, .. }
            if *table == pp_t && *ref_table == paper_t
                && out.rel.col_names(paper_t, ref_cols) == vec!["Paper_Id"])
    });
    assert!(fk_key_to_key, "{:?}", out.rel.constraints);
    // The own program id becomes an ordinary (candidate-keyed) attribute.
    assert!(out
        .rel
        .table(pp_t)
        .column_by_name("Paper_ProgramId_with")
        .is_some());
    // And the mapping still round-trips states.
    let pop = ridl_workloads::fig6::population(&out.schema);
    let st = ridl_core::state_map::map_population(&out.schema, &out, &pop).unwrap();
    assert!(
        ridl_relational::validate(&out.rel, &st).is_empty(),
        "{:?}",
        ridl_relational::validate(&out.rel, &st)
    );
    let back = ridl_core::state_map::unmap_state(&out.schema, &out, &st).unwrap();
    assert!(ridl_core::state_map::equivalent(&out.schema, &out, &pop, &back).unwrap());
}

/// Engine column resolution: bare names resolve only when unambiguous
/// across the joined relation; qualified names always do.
#[test]
fn engine_bare_column_ambiguity() {
    use ridl_brm::DataType;
    use ridl_engine::{Database, Query};
    use ridl_relational::{Column, RelConstraintKind, RelSchema, Table};
    let mut s = RelSchema::new("amb");
    let d = s.domain("D", DataType::Char(4));
    let a = s.add_table(Table::new(
        "A",
        vec![Column::not_null("K", d), Column::not_null("X", d)],
    ));
    let b = s.add_table(Table::new(
        "B",
        vec![Column::not_null("K", d), Column::not_null("Y", d)],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: a,
        cols: vec![0],
    });
    s.add_named(RelConstraintKind::PrimaryKey {
        table: b,
        cols: vec![0],
    });
    let mut db = Database::create(s).unwrap();
    db.insert("A", vec![Some(Value::str("k1")), Some(Value::str("x"))])
        .unwrap();
    db.insert("B", vec![Some(Value::str("k1")), Some(Value::str("y"))])
        .unwrap();
    let join = Query::from("A").join("B", &[("A.K", "K")]);
    // Bare `K` is ambiguous after the join; qualified works.
    assert!(db.select(&join.clone().select(&["K"])).is_err());
    let rows = db.select(&join.clone().select(&["A.K", "Y"])).unwrap();
    assert_eq!(rows.len(), 1);
    // Bare unique suffixes resolve.
    let rows = db.select(&join.select(&["X", "Y"])).unwrap();
    assert_eq!(
        rows,
        vec![vec![Some(Value::str("x")), Some(Value::str("y"))]]
    );
}

/// The map report renders a SELECT with both NOT NULL and equality filters
/// (indicator membership selections).
#[test]
fn map_report_renders_indicator_selections() {
    let wb = ridl_core::Workbench::new(ridl_workloads::fig6::schema());
    let out = wb
        .map(
            &ridl_core::MappingOptions::new()
                .with_sublinks(ridl_core::SublinkOption::IndicatorForSupot),
        )
        .unwrap();
    let sl = out
        .schema
        .sublinks()
        .find(|(_, s)| out.schema.ot_name(s.sub) == "Invited_Paper")
        .map(|(sid, _)| sid)
        .unwrap();
    let sel = out.membership_selection(&out.schema, sl).unwrap();
    let rendered = ridl_core::map_report::render_selection(&out.rel, &sel);
    assert!(
        rendered.contains("WHERE ( Is_Invited_Paper = TRUE )"),
        "{rendered}"
    );
    // And the full forwards map carries it for the sublink entry.
    let report = wb.map_report(&out);
    assert!(
        report.forwards.contains("Is_Invited_Paper = TRUE"),
        "{}",
        report.forwards
    );
}

/// DB2 identifier folding keeps generated constraint DDL parseable: no
/// identifier in any CREATE/ALTER line exceeds the dialect limit.
#[test]
fn db2_output_respects_identifier_limit_at_scale() {
    let s = ridl_workloads::synth::generate(&ridl_workloads::synth::GenParams {
        seed: 4,
        nolots: 20,
        ..Default::default()
    });
    let wb = ridl_core::Workbench::new(s.schema);
    let out = wb.map(&ridl_core::MappingOptions::new()).unwrap();
    let ddl = ridl_sqlgen::generate_for(&out.rel, ridl_sqlgen::DialectKind::Db2);
    for line in ddl.text.lines() {
        if let Some(rest) = line.strip_prefix("CREATE TABLE ") {
            assert!(rest.trim().len() <= 18, "{rest}");
        }
    }
}

//! The RIDL query compiler (§4.3): conceptual path queries compiled through
//! the forwards map. The same conceptual query runs unchanged against every
//! mapping alternative — only the compiled join count differs, which is the
//! efficiency trade-off the mapping options control.

use ridl_brm::Value;
use ridl_core::state_map::map_population;
use ridl_core::{MappingOptions, NullOption, SublinkOption, Workbench};
use ridl_engine::Database;
use ridl_query::{compile, execute, parse_query, ConceptualQuery};
use ridl_workloads::{cris, fig6};

fn loaded_db(out: &ridl_core::MappingOutput) -> Database {
    let pop = fig6::population(&out.schema);
    let mut db = Database::create(out.rel.clone()).unwrap();
    db.load_state(map_population(&out.schema, &out.clone(), &pop).unwrap())
        .unwrap();
    db
}

fn fig6_option_grid(wb: &Workbench) -> Vec<(&'static str, MappingOptions)> {
    let invited = wb.schema().object_type_by_name("Invited_Paper").unwrap();
    let sl = wb
        .schema()
        .sublinks()
        .find(|(_, s)| s.sub == invited)
        .map(|(sid, _)| sid)
        .unwrap();
    vec![
        (
            "A1",
            MappingOptions::new().with_nulls(NullOption::NullNotAllowed),
        ),
        ("A2", MappingOptions::new()),
        (
            "A3",
            MappingOptions::new().override_sublink(sl, SublinkOption::IndicatorForSupot),
        ),
        (
            "A4",
            MappingOptions::new().with_sublinks(SublinkOption::Together),
        ),
    ]
}

/// One conceptual query, four physical schemas, identical answers.
#[test]
fn same_query_every_alternative_same_answer() {
    let wb = Workbench::new(fig6::schema());
    let q = parse_query("LIST Program_Paper ( has , presented_during ) WHERE presented_by EXISTS")
        .unwrap();
    let mut answers = Vec::new();
    let mut join_counts = Vec::new();
    for (label, options) in fig6_option_grid(&wb) {
        let out = wb.map(&options).unwrap();
        let db = loaded_db(&out);
        let (cols, mut rows) = execute(&out, &db, &q).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(cols, vec!["has", "presented_during"]);
        rows.sort();
        join_counts.push((label, compile(&out, &q).unwrap().join_count));
        answers.push((label, rows));
    }
    // Program paper A1 has a presenter; it is presented during session 1.
    let expected = vec![vec![Some(Value::str("A1")), Some(Value::Int(1))]];
    for (label, rows) in &answers {
        assert_eq!(rows, &expected, "{label}: {rows:?}");
    }
    // Join cost shape (§4.2.2): TOGETHER compiles join-free; SEPARATE-style
    // alternatives may need joins for sub/super navigation but this query
    // stays within the sub-relation except under A4's absorption.
    let a4 = join_counts.iter().find(|(l, _)| *l == "A4").unwrap().1;
    assert_eq!(a4, 0, "TOGETHER answers subtype queries without joins");
}

/// Navigating from subtype facts to supertype facts costs joins under
/// SEPARATE and none under TOGETHER — the paper's "more dynamic joins".
#[test]
fn super_navigation_join_cost_varies_by_option() {
    let wb = Workbench::new(fig6::schema());
    // Program id + the paper's title (a supertype fact).
    let q = parse_query("LIST Program_Paper ( has , titled )").unwrap();
    let mut costs = Vec::new();
    for (label, options) in fig6_option_grid(&wb) {
        let out = wb.map(&options).unwrap();
        let compiled = compile(&out, &q).unwrap_or_else(|e| panic!("{label}: {e}"));
        let db = loaded_db(&out);
        let mut rows = db.select(&compiled.query).unwrap();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Some(Value::str("A1")), Some(Value::str("On NIAM"))],
                vec![Some(Value::str("A2")), Some(Value::str("On RIDL"))],
            ],
            "{label}"
        );
        costs.push((label, compiled.join_count));
    }
    let cost = |l: &str| costs.iter().find(|(x, _)| *x == l).unwrap().1;
    assert_eq!(cost("A4"), 0, "TOGETHER: both facts in one relation");
    assert!(
        cost("A2") >= 1 && cost("A3") >= 1,
        "SEPARATE needs the dynamic join: {costs:?}"
    );
    assert!(
        cost("A1") >= cost("A2"),
        "link tables cost at least as much"
    );
}

/// Filters compile into the plan and run against the engine.
#[test]
fn filters_and_multi_step_paths() {
    let wb = Workbench::new(cris::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let pop = cris::population(&out.schema);
    let mut db = Database::create(out.rel.clone()).unwrap();
    db.load_state(map_population(&out.schema, &out, &pop).unwrap())
        .unwrap();

    // Two-step path: person -> institution -> country.
    let q = ConceptualQuery::list("Person", &["identified_by", "affiliated_with.located_in"])
        .where_eq("identified_by", Value::str("Olga"));
    let (cols, rows) = execute(&out, &db, &q).unwrap();
    assert_eq!(cols[1], "affiliated_with.located_in");
    assert_eq!(
        rows,
        vec![vec![Some(Value::str("Olga")), Some(Value::str("NL"))]]
    );

    // MISSING filter: persons with no registered address.
    let q = parse_query("LIST Person ( identified_by ) WHERE resides_at MISSING").unwrap();
    let (_, rows) = execute(&out, &db, &q).unwrap();
    assert_eq!(rows.len(), 4, "{rows:?}"); // everyone but Olga
}

/// m:n facts multiply rows like the relational join they compile to.
#[test]
fn many_to_many_traversal() {
    let wb = Workbench::new(cris::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let pop = cris::population(&out.schema);
    let mut db = Database::create(out.rel.clone()).unwrap();
    db.load_state(map_population(&out.schema, &out, &pop).unwrap())
        .unwrap();
    // Every (author, paper) pair through the writes fact.
    let q = parse_query("LIST Author ( identified_by , author_of.identified_by )").unwrap();
    let (_, rows) = execute(&out, &db, &q).unwrap();
    assert_eq!(rows.len(), 5, "{rows:?}"); // five writes pairs in the population
}

/// Compiler errors are informative.
#[test]
fn compile_errors() {
    let wb = Workbench::new(fig6::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let err = compile(&out, &ConceptualQuery::list("Nope", &["x"])).unwrap_err();
    assert!(matches!(
        err,
        ridl_query::CompileError::UnknownObjectType(_)
    ));
    let err = compile(&out, &ConceptualQuery::list("Paper", &["no_such_role"])).unwrap_err();
    assert!(matches!(err, ridl_query::CompileError::UnknownStep { .. }));
    // An omitted fact is reported as not mapped.
    let submitted = wb.schema().fact_type_by_name("paper_submitted").unwrap();
    let out = wb.map(&MappingOptions::new().omit(submitted)).unwrap();
    let err = compile(&out, &ConceptualQuery::list("Paper", &["submitted_at"])).unwrap_err();
    assert!(
        matches!(err, ridl_query::CompileError::NotMapped(_)),
        "{err}"
    );
}

/// Conceptual ADD/REMOVE compiled through the forwards map: one conceptual
/// update, transactionally judged by the generated constraints.
#[test]
fn conceptual_updates_apply_and_are_policed() {
    use ridl_query::{apply_add, apply_remove, parse_add, parse_remove};
    let wb = Workbench::new(fig6::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let mut db = loaded_db(&out);

    // A complete new paper.
    let add = parse_add(
        "ADD Paper ( identified_by = 'P9' , titled = 'Fresh' , submitted_at = DATE 130 );",
    )
    .unwrap();
    let touched = apply_add(&out, &mut db, &add).unwrap();
    assert_eq!(touched, vec!["Paper"]);
    let (_, rows) = execute(
        &out,
        &db,
        &parse_query("LIST Paper ( identified_by ) WHERE titled = 'Fresh'").unwrap(),
    )
    .unwrap();
    assert_eq!(rows, vec![vec![Some(Value::str("P9"))]]);

    // An incomplete ADD (missing the mandatory title) is rejected whole.
    let bad = parse_add("ADD Paper ( identified_by = 'P10' );").unwrap();
    let err = apply_add(&out, &mut db, &bad).unwrap_err();
    assert!(err.to_string().contains("violates the schema"), "{err}");
    // Nothing leaked.
    let (_, rows) = execute(
        &out,
        &db,
        &parse_query("LIST Paper ( identified_by )").unwrap(),
    )
    .unwrap();
    assert_eq!(rows.len(), 4); // 3 originals + P9

    // A new program paper: the sub-relation row plus the `_Is` pairing must
    // arrive together; alone, the equality view rejects it.
    let pp_only = parse_add("ADD Program_Paper ( has = 'A9' , presented_during = 9 );").unwrap();
    let err = apply_add(&out, &mut db, &pp_only).unwrap_err();
    assert!(err.to_string().contains("violates the schema"), "{err}");

    // REMOVE an unreferenced paper works; removing a program paper's super
    // row would break the lossless rules and is rejected.
    let rm = parse_remove("REMOVE Paper WHERE identified_by = 'P9';").unwrap();
    assert_eq!(apply_remove(&out, &mut db, &rm).unwrap(), 1);
    let rm_bad = parse_remove("REMOVE Paper WHERE identified_by = 'P1';").unwrap();
    let err = apply_remove(&out, &mut db, &rm_bad).unwrap_err();
    assert!(err.to_string().contains("delete failed"), "{err}");
}

/// Under TOGETHER the same conceptual ADD of a subtype instance lands in
/// one wide row and succeeds — the update notation is option-independent.
#[test]
fn conceptual_add_subtype_under_together() {
    use ridl_query::{apply_add, parse_add};
    let wb = Workbench::new(fig6::schema());
    let out = wb
        .map(&MappingOptions::new().with_sublinks(SublinkOption::Together))
        .unwrap();
    let mut db = loaded_db(&out);
    let add = parse_add(
        "ADD Program_Paper ( identified_by = 'P9' , titled = 'Fresh' , \
         has = 'A9' , presented_during = 9 );",
    )
    .unwrap();
    let touched = apply_add(&out, &mut db, &add).unwrap();
    assert_eq!(touched, vec!["Paper"]);
    let (_, rows) = execute(
        &out,
        &db,
        &parse_query("LIST Program_Paper ( has , titled )").unwrap(),
    )
    .unwrap();
    assert_eq!(rows.len(), 3, "{rows:?}");
}

/// An unqualified column matching several joined tables must be an
/// ambiguity error. The executor used to resolve such references to the
/// first occurrence silently, which returns wrong answers on self-joins.
#[test]
fn ambiguous_column_references_are_rejected() {
    use ridl_engine::{EngineError, Pred, Query};
    let wb = Workbench::new(fig6::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let db = loaded_db(&out);
    let paper = out.rel.table_by_name("Paper").unwrap();
    let key = out.rel.table(paper).column(0).name.clone();
    // Self-join on the key: every column name now appears twice, so bare
    // and qualified references to Paper columns are both ambiguous.
    let self_join = |q: Query| q.join("Paper", &[(key.as_str(), key.as_str())]);
    let q = self_join(Query::from("Paper")).select(&[key.as_str()]);
    assert!(
        matches!(db.select(&q), Err(EngineError::Ambiguous(_))),
        "bare projection silently resolved: {:?}",
        db.select(&q)
    );
    let q = self_join(Query::from("Paper")).filter(Pred::NotNull(key.clone()));
    assert!(matches!(db.select(&q), Err(EngineError::Ambiguous(_))));
    let q = self_join(Query::from("Paper")).select(&[format!("Paper.{key}").as_str()]);
    assert!(
        matches!(db.select(&q), Err(EngineError::Ambiguous(_))),
        "duplicated qualified name silently resolved"
    );
    // Without the self-join the same references are unique and fine.
    let q = Query::from("Paper").select(&[key.as_str()]);
    assert!(db.select(&q).is_ok());
}

/// The compiler exploits denormalised duplicates: the same two-step path
/// that needs a join under the default mapping compiles join-free when a
/// combine directive duplicated the target's attributes — "redundancy …
/// presumably for the benefit of query efficiency" (§4.2.2), realised.
#[test]
fn combine_shortcut_removes_the_join() {
    use ridl_core::options::CombineDirective;
    let schema = cris::schema();
    let affiliation = schema.fact_type_by_name("person_affiliation").unwrap();
    let wb = Workbench::new(schema);
    let q = ConceptualQuery::list("Person", &["identified_by", "affiliated_with.located_in"]);

    // Default mapping: the two-step path joins Institution.
    let base = wb.map(&MappingOptions::new()).unwrap();
    let compiled_base = compile(&base, &q).unwrap();
    assert!(compiled_base.join_count >= 1);

    // Denormalised mapping: the country was duplicated into Person.
    let mut options = MappingOptions::new();
    options.combine.push(CombineDirective {
        via: affiliation,
        weight: 10,
    });
    let denorm = wb.map(&options).unwrap();
    let compiled_denorm = compile(&denorm, &q).unwrap();
    assert_eq!(
        compiled_denorm.join_count, 0,
        "duplicate not exploited: {:?}",
        compiled_denorm.query
    );

    // Both return the same answer on the same conceptual state.
    let pop = cris::population(&base.schema);
    let run = |out: &ridl_core::MappingOutput| {
        let mut db = Database::create(out.rel.clone()).unwrap();
        db.load_state(map_population(&out.schema, out, &pop).unwrap())
            .unwrap();
        let (_, mut rows) = execute(out, &db, &q).unwrap();
        rows.sort();
        rows
    };
    assert_eq!(run(&base), run(&denorm));
}

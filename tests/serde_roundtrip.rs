//! Satellite of the durability PR: the textual codecs the meta-database
//! and the checkpoint snapshots share are **total** and **stable**.
//!
//! For every codec (value tokens, constraint bodies, data types, whole
//! snapshot files) three properties are checked:
//!
//! 1. **Round trip** — decode(encode(x)) == x.
//! 2. **Fixpoint** — re-encoding the decoded form reproduces the exact
//!    byte string, so snapshots written by one session are byte-stable
//!    under rewrite by the next (recovery depends on this to compare
//!    states by equality).
//! 3. **Totality under truncation/corruption** — a torn prefix or a
//!    flipped byte is *rejected with an error*, never a panic, and never
//!    decodes to a silently different artefact (a truncated input that
//!    happens to decode must itself be stable).

use std::sync::OnceLock;

use proptest::prelude::*;

use ridl_brm::{
    ConstraintKind, DataType, Decimal, FactTypeId, ObjectTypeId, RoleOrSublink, RoleRef, Side,
    SublinkId, Value,
};
use ridl_durable::{decode_snapshot, encode_snapshot};
use ridl_metadb::serde as mdb;
use ridl_relational::{RelSchema, RelState};
use ridl_workloads::scenario::{self, MappedPopulation};
use ridl_workloads::synth::GenParams;

// ---- strategies (ASCII strings so every byte prefix is valid UTF-8) ----

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[ -~]{0,12}".prop_map(Value::Str),
        any::<i64>().prop_map(Value::Int),
        (any::<i64>(), 0u8..6).prop_map(|(m, s)| Value::Num(Decimal::new(m, s))),
        any::<i32>().prop_map(Value::Date),
        any::<bool>().prop_map(Value::Bool),
        (0u64..1000).prop_map(Value::entity),
    ]
}

fn role_strategy() -> impl Strategy<Value = RoleRef> {
    (0u32..50, any::<bool>()).prop_map(|(f, s)| {
        RoleRef::new(
            FactTypeId::from_raw(f),
            if s { Side::Left } else { Side::Right },
        )
    })
}

fn item_strategy() -> impl Strategy<Value = RoleOrSublink> {
    prop_oneof![
        role_strategy().prop_map(RoleOrSublink::Role),
        (0u32..20).prop_map(|s| RoleOrSublink::Sublink(SublinkId::from_raw(s))),
    ]
}

fn constraint_strategy() -> impl Strategy<Value = ConstraintKind> {
    prop_oneof![
        prop::collection::vec(role_strategy(), 1..4)
            .prop_map(|roles| ConstraintKind::Uniqueness { roles }),
        (0u32..30, prop::collection::vec(item_strategy(), 1..4)).prop_map(|(o, items)| {
            ConstraintKind::Total {
                over: ObjectTypeId::from_raw(o),
                items,
            }
        }),
        prop::collection::vec(item_strategy(), 2..5)
            .prop_map(|items| ConstraintKind::Exclusion { items }),
        (
            prop::collection::vec(role_strategy(), 1..3),
            prop::collection::vec(role_strategy(), 1..3)
        )
            .prop_map(|(sub, sup)| ConstraintKind::Subset { sub, sup }),
        (
            prop::collection::vec(role_strategy(), 1..3),
            prop::collection::vec(role_strategy(), 1..3)
        )
            .prop_map(|(a, b)| ConstraintKind::Equality { a, b }),
        (role_strategy(), 0u32..5, proptest::option::of(5u32..10))
            .prop_map(|(role, min, max)| ConstraintKind::Cardinality { role, min, max }),
        (0u32..30, prop::collection::vec(value_strategy(), 0..5)).prop_map(|(o, values)| {
            ConstraintKind::Value {
                over: ObjectTypeId::from_raw(o),
                values,
            }
        }),
    ]
}

fn data_type_strategy() -> impl Strategy<Value = DataType> {
    prop_oneof![
        (0u16..500).prop_map(DataType::Char),
        (0u16..500).prop_map(DataType::VarChar),
        (1u8..30, 0u8..10).prop_map(|(p, s)| DataType::Numeric(p, s)),
        Just(DataType::Integer),
        Just(DataType::Real),
        Just(DataType::Date),
        Just(DataType::Boolean),
        Just(DataType::Surrogate),
    ]
}

fn synth_artifacts() -> &'static Vec<(RelSchema, RelState)> {
    static CACHE: OnceLock<Vec<(RelSchema, RelState)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        (0..3u64)
            .map(|seed| {
                let params = GenParams {
                    seed: 77 + seed,
                    nolots: 5,
                    attrs_per_nolot: (1, 3),
                    mn_facts: 2,
                    sublinks: 1,
                    ..GenParams::default()
                };
                let MappedPopulation { schema, state } = scenario::mapped_population(&params, 3);
                (schema, state)
            })
            .collect()
    })
}

/// Largest char-boundary index ≤ `i` (so arbitrary cut points stay valid
/// UTF-8 even if a workload value smuggles multibyte text in).
fn floor_boundary(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

proptest! {
    /// Value tokens: round trip, byte-stable fixpoint, and total under
    /// truncation — a torn token errs or is itself a stable token.
    #[test]
    fn value_token_fixpoint(v in value_strategy(), cut in 0usize..1000) {
        let enc = mdb::encode_value(&v);
        let dec = mdb::decode_value(&enc).unwrap();
        prop_assert_eq!(&dec, &v);
        prop_assert_eq!(mdb::encode_value(&dec), enc.clone(), "encode not a fixpoint");

        let cut = floor_boundary(&enc, cut % (enc.len() + 1));
        let torn = &enc[..cut];
        if let Ok(v2) = mdb::decode_value(torn) {
            let renc = mdb::encode_value(&v2);
            prop_assert_eq!(
                mdb::decode_value(&renc).unwrap(),
                v2,
                "torn token decoded to an unstable value"
            );
        }
    }

    /// Constraint bodies: round trip, byte-stable fixpoint, truncation
    /// totality.
    #[test]
    fn constraint_body_fixpoint(kind in constraint_strategy(), cut in 0usize..10_000) {
        let enc = mdb::encode_constraint(&kind);
        let dec = mdb::decode_constraint(&enc).unwrap_or_else(|e| panic!("{enc}: {e}"));
        prop_assert_eq!(&dec, &kind, "{}", enc);
        prop_assert_eq!(mdb::encode_constraint(&dec), enc.clone(), "encode not a fixpoint");

        let cut = floor_boundary(&enc, cut % (enc.len() + 1));
        let torn = &enc[..cut];
        if let Ok(k2) = mdb::decode_constraint(torn) {
            let renc = mdb::encode_constraint(&k2);
            prop_assert_eq!(
                mdb::decode_constraint(&renc).unwrap(),
                k2,
                "torn body decoded to an unstable constraint"
            );
        }
    }

    /// Data types: `Display` → `parse_data_type` is a bijection, and the
    /// parser is total on truncated renderings.
    #[test]
    fn data_type_display_roundtrip(dt in data_type_strategy(), cut in 0usize..100) {
        let text = dt.to_string();
        prop_assert_eq!(mdb::parse_data_type(&text).unwrap(), dt);
        let torn = &text[..cut % (text.len() + 1)];
        if let Ok(d2) = mdb::parse_data_type(torn) {
            prop_assert_eq!(mdb::parse_data_type(&d2.to_string()).unwrap(), d2);
        }
    }

    /// The parsers never panic on arbitrary printable garbage.
    #[test]
    fn codecs_are_total_on_garbage(src in "\\PC{0,60}") {
        let _ = mdb::decode_value(&src);
        let _ = mdb::decode_constraint(&src);
        let _ = mdb::parse_data_type(&src);
        let _ = decode_snapshot(&src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Checkpoint snapshots of mapped populations: round trip (epoch,
    /// fingerprint and state all survive), byte-stable re-encode, and
    /// CRC-guarded rejection of every torn prefix — a prefix either errs
    /// or (when only trailing bytes past the checksum footer were lost)
    /// decodes to the identical snapshot. Never to a different state.
    #[test]
    fn snapshot_fixpoint_and_torn_prefix(
        art_ix in 0usize..3,
        epoch in 0u64..1u64 << 40,
        fingerprint in any::<u64>(),
        cut in 0usize..1_000_000,
    ) {
        let (_, state) = &synth_artifacts()[art_ix];
        let enc = encode_snapshot(epoch, fingerprint, state);
        let snap = decode_snapshot(&enc).unwrap();
        prop_assert_eq!(snap.epoch, epoch);
        prop_assert_eq!(snap.fingerprint, fingerprint);
        prop_assert_eq!(&snap.state, state);
        prop_assert_eq!(
            encode_snapshot(snap.epoch, snap.fingerprint, &snap.state),
            enc.clone(),
            "snapshot encode not a fixpoint"
        );

        let cut = floor_boundary(&enc, cut % enc.len());
        match decode_snapshot(&enc[..cut]) {
            Err(_) => {}
            Ok(t) => {
                prop_assert_eq!(t.epoch, epoch);
                prop_assert_eq!(t.fingerprint, fingerprint);
                prop_assert_eq!(
                    &t.state, state,
                    "torn snapshot decoded to a different state"
                );
            }
        }
    }

    /// A single flipped byte anywhere in a snapshot is caught (by the CRC
    /// footer or by the structure of the body) and rejected with an
    /// error.
    #[test]
    fn snapshot_flipped_byte_rejected(
        art_ix in 0usize..3,
        epoch in 0u64..1u64 << 40,
        pos in 0usize..1_000_000,
    ) {
        let (_, state) = &synth_artifacts()[art_ix];
        let enc = encode_snapshot(epoch, 0xFEED_F00D_u64, state);
        let mut bytes = enc.clone().into_bytes();
        let pos = pos % bytes.len();
        // Stay ASCII so the corrupted file is still valid UTF-8 (binary
        // garbage is rejected upstream when the file is read as text).
        bytes[pos] = if bytes[pos] == b'#' { b'%' } else { b'#' };
        let corrupt = String::from_utf8(bytes).unwrap();
        prop_assert!(corrupt != enc);
        prop_assert!(
            decode_snapshot(&corrupt).is_err(),
            "flipped byte at {} accepted",
            pos
        );
    }
}

/// Deterministic regressions: the exact inputs that used to panic or
/// misparse.
#[test]
fn empty_and_stub_inputs_rejected() {
    assert!(mdb::decode_value("").is_err());
    assert!(mdb::decode_value("N123").is_err(), "mantissa without scale");
    assert!(mdb::decode_value("é").is_err(), "non-ASCII tag");
    assert!(mdb::decode_constraint("").is_err());
    assert!(mdb::parse_data_type("").is_err());
    assert!(mdb::parse_data_type("CHAR(").is_err());
    assert!(decode_snapshot("").is_err());
    assert!(decode_snapshot("RIDLSNAP 1\n").is_err(), "missing footer");
}

//! End-to-end tests for the multi-session server: wire protocol
//! round-trips, admission control, backpressure, and the server-level
//! snapshot-isolation guarantees (satellite of ISSUE 10).

use ridl_brm::DataType;
use ridl_engine::Database;
use ridl_relational::{Column, RelConstraintKind, RelSchema, Table};
use ridl_server::json::{obj, Json};
use ridl_server::{Client, Server, ServerConfig};

fn sample_schema() -> RelSchema {
    let mut s = RelSchema::new("conf");
    let d = s.domain("D", DataType::Char(24));
    let paper = s.add_table(Table::new(
        "Paper",
        vec![
            Column::not_null("Paper_Id", d),
            Column::nullable("Program_Id", d),
        ],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: paper,
        cols: vec![0],
    });
    s
}

fn start(cfg: ServerConfig) -> Server {
    let db = Database::create(sample_schema()).unwrap();
    Server::start(db, "127.0.0.1:0", cfg).unwrap()
}

fn insert_req(key: &str) -> Json {
    obj([
        ("cmd", Json::str("insert")),
        ("table", Json::str("Paper")),
        ("row", Json::Arr(vec![Json::str(key), Json::Null])),
    ])
}

fn query_all() -> Json {
    obj([("cmd", Json::str("query")), ("table", Json::str("Paper"))])
}

#[test]
fn protocol_round_trips_the_full_command_set() {
    let server = start(ServerConfig::default());
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    let hello = c.hello("protocol-test").unwrap();
    assert!(Client::is_ok(&hello), "{hello}");
    assert_eq!(hello.get("schema").and_then(Json::as_str), Some("conf"));
    let tables = hello.get("tables").and_then(Json::as_arr).unwrap();
    assert_eq!(
        tables.iter().filter_map(Json::as_str).collect::<Vec<_>>(),
        ["Paper"]
    );

    // Autocommit insert: the response carries a commit sequence number.
    let r = c.request(insert_req("P1")).unwrap();
    assert!(Client::is_ok(&r), "{r}");
    assert_eq!(r.get("seq").and_then(Json::as_i64), Some(1));
    assert_eq!(r.get("changed").and_then(Json::as_i64), Some(1));

    // Read-your-writes: the next query must see the acknowledged insert.
    let r = c.request(query_all()).unwrap();
    assert_eq!(r.get("rows").and_then(Json::as_arr).unwrap().len(), 1);

    // A primary-key duplicate maps to the `constraint` error code and
    // leaves the store untouched.
    let r = c.request(insert_req("P1")).unwrap();
    assert!(!Client::is_ok(&r));
    assert_eq!(Client::error_code(&r), Some("constraint"));

    // Unknown table maps to `unknown`.
    let r = c
        .request(obj([
            ("cmd", Json::str("query")),
            ("table", Json::str("Nope")),
        ]))
        .unwrap();
    assert_eq!(Client::error_code(&r), Some("unknown"));

    // Malformed line maps to `proto` without killing the session.
    let r = c.send_raw("this is not json").unwrap();
    assert_eq!(Client::error_code(&r), Some("proto"));

    // update / delete round-trip.
    let r = c
        .request(obj([
            ("cmd", Json::str("update")),
            ("table", Json::str("Paper")),
            (
                "where",
                Json::Arr(vec![obj([
                    ("col", Json::str("Paper_Id")),
                    ("eq", Json::str("P1")),
                ])]),
            ),
            (
                "set",
                Json::Arr(vec![Json::Arr(vec![
                    Json::str("Program_Id"),
                    Json::str("G1"),
                ])]),
            ),
        ]))
        .unwrap();
    assert!(Client::is_ok(&r), "{r}");
    assert_eq!(r.get("changed").and_then(Json::as_i64), Some(1));

    // explain returns the executed plan.
    let r = c
        .request(obj([
            ("cmd", Json::str("explain")),
            ("table", Json::str("Paper")),
        ]))
        .unwrap();
    assert!(Client::is_ok(&r), "{r}");
    assert!(!r.get("steps").and_then(Json::as_arr).unwrap().is_empty());

    // Transactions: begin buffers, rollback drops, commit applies all.
    assert!(Client::is_ok(&c.command("begin").unwrap()));
    let r = c.request(insert_req("TX1")).unwrap();
    assert_eq!(r.get("buffered").and_then(Json::as_bool), Some(true));
    let r = c.command("rollback").unwrap();
    assert_eq!(r.get("dropped").and_then(Json::as_i64), Some(1));
    assert!(Client::is_ok(&c.command("begin").unwrap()));
    c.request(insert_req("TX2")).unwrap();
    c.request(insert_req("TX3")).unwrap();
    let r = c.command("commit").unwrap();
    assert!(Client::is_ok(&r), "{r}");
    assert_eq!(r.get("changed").and_then(Json::as_i64), Some(2));
    // Transaction misuse maps to `txn`.
    assert_eq!(
        Client::error_code(&c.command("commit").unwrap()),
        Some("txn")
    );

    // A transaction that violates a constraint rolls back atomically.
    assert!(Client::is_ok(&c.command("begin").unwrap()));
    c.request(insert_req("TX4")).unwrap();
    c.request(insert_req("TX2")).unwrap(); // dup, will fail at commit
    let r = c.command("commit").unwrap();
    assert_eq!(Client::error_code(&r), Some("constraint"));

    let r = c.command("status").unwrap();
    assert!(Client::is_ok(&r), "{r}");
    assert_eq!(r.get("rows").and_then(Json::as_i64), Some(3));
    assert_eq!(r.get("sessions").and_then(Json::as_i64), Some(1));

    drop(c);
    let db = server.shutdown().unwrap();
    assert_eq!(db.state().num_rows(), 3); // P1, TX2, TX3 — TX4 rolled back
}

#[test]
fn admission_control_rejects_past_the_session_limit() {
    let server = start(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    });
    let addr = server.addr().to_string();
    let mut c1 = Client::connect(&addr).unwrap();
    assert!(Client::is_ok(&c1.hello("first").unwrap()));

    // The second connection is answered with one proactive busy line and
    // closed — read it without writing anything.
    {
        use std::io::BufRead;
        let s = std::net::TcpStream::connect(&addr).unwrap();
        let mut line = String::new();
        std::io::BufReader::new(s).read_line(&mut line).unwrap();
        let r = ridl_server::json::parse(line.trim()).unwrap();
        assert_eq!(Client::error_code(&r), Some("busy"), "{r}");
    }

    // The admitted session keeps working.
    assert!(Client::is_ok(&c1.request(insert_req("P1")).unwrap()));

    // Once the first session leaves, a new one is admitted. A probe that
    // loses the race (rejected connection reset mid-handshake) retries.
    drop(c1);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let mut c3 = Client::connect(&addr).unwrap();
        if let Ok(r) = c3.hello("third") {
            if Client::is_ok(&r) {
                break;
            }
        }
        assert!(std::time::Instant::now() < deadline, "slot never freed");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    server.shutdown().unwrap();
}

/// Satellite: server-level snapshot isolation. A long open transaction in
/// one session never blocks — and is never visible to — readers in other
/// sessions until its commit is durable.
#[test]
fn open_transaction_is_invisible_and_nonblocking_to_readers() {
    let server = start(ServerConfig::default());
    let addr = server.addr().to_string();
    let mut writer = Client::connect(&addr).unwrap();
    let mut reader = Client::connect(&addr).unwrap();

    assert!(Client::is_ok(&writer.request(insert_req("BASE")).unwrap()));
    assert!(Client::is_ok(&writer.command("begin").unwrap()));
    for i in 0..20 {
        writer.request(insert_req(&format!("TX{i}"))).unwrap();
    }
    // The transaction is open and buffered; readers still see one row,
    // and every read completes (nothing is blocked on the writer).
    for _ in 0..10 {
        let r = reader.request(query_all()).unwrap();
        assert_eq!(r.get("rows").and_then(Json::as_arr).unwrap().len(), 1);
    }
    assert!(Client::is_ok(&writer.command("commit").unwrap()));
    let r = reader.request(query_all()).unwrap();
    assert_eq!(r.get("rows").and_then(Json::as_arr).unwrap().len(), 21);
    drop(writer);
    drop(reader);
    server.shutdown().unwrap();
}

/// Satellite: a reader's observed state is always a committed prefix —
/// under a concurrent write burst every query sees a consistent version
/// (never a torn batch), and versions advance monotonically per session.
#[test]
fn reads_see_monotonic_committed_versions_under_write_burst() {
    let server = start(ServerConfig::default());
    let addr = server.addr().to_string();
    const WRITES: usize = 200;

    let w_addr = addr.clone();
    let writer = std::thread::spawn(move || {
        let mut c = Client::connect(&w_addr).unwrap();
        for i in 0..WRITES {
            let r = c.request(insert_req(&format!("W{i:04}"))).unwrap();
            assert!(Client::is_ok(&r), "{r}");
        }
    });

    let mut reader = Client::connect(&addr).unwrap();
    let mut last_version = -1i64;
    let mut last_rows = 0usize;
    loop {
        let r = reader.request(query_all()).unwrap();
        assert!(Client::is_ok(&r), "{r}");
        let version = r.get("version").and_then(Json::as_i64).unwrap();
        let rows = r.get("rows").and_then(Json::as_arr).unwrap().len();
        // Snapshots only advance: version and row count are monotonic,
        // and the row count can never exceed the committed version.
        assert!(version >= last_version, "version went backwards");
        assert!(rows >= last_rows, "row count went backwards");
        assert!(rows <= version.max(0) as usize, "read a non-durable row");
        last_version = version;
        last_rows = rows;
        if rows == WRITES {
            break;
        }
    }
    writer.join().unwrap();
    server.shutdown().unwrap();
}

/// Concurrent writers funnel through the commit pipeline: every write is
/// acknowledged with a unique sequence number and the final state holds
/// exactly the acknowledged rows.
#[test]
fn concurrent_writers_get_unique_commit_sequences() {
    let server = start(ServerConfig::default());
    let addr = server.addr().to_string();
    const THREADS: usize = 8;
    const PER_THREAD: usize = 25;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let mut seqs = Vec::new();
                for i in 0..PER_THREAD {
                    let r = c.request(insert_req(&format!("T{t}-{i}"))).unwrap();
                    assert!(Client::is_ok(&r), "{r}");
                    seqs.push(r.get("seq").and_then(Json::as_i64).unwrap());
                }
                seqs
            })
        })
        .collect();
    let mut all: Vec<i64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    let expect: Vec<i64> = (1..=(THREADS * PER_THREAD) as i64).collect();
    assert_eq!(all, expect, "commit sequences must be a dense unique range");

    let db = server.shutdown().unwrap();
    assert_eq!(db.state().num_rows(), THREADS * PER_THREAD);
}

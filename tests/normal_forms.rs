//! Experiment **E-5NF**: "It can be shown that in the absence of additional
//! constraints which express functional or multivalued dependencies in a
//! procedural fashion, this algorithm always yields a relational schema in
//! fifth normal form" (§4) — and, conversely, that the denormalising
//! options knowingly leave that regime ("therefore not even necessarily in
//! third normal form").

use proptest::prelude::*;

use ridl_core::rulebase::{QueryInfo, RuleBase};
use ridl_core::{MappingOptions, NullOption, SublinkOption, Workbench};
use ridl_relational::{normal_form_of, NormalForm};
use ridl_workloads::synth::{self, GenParams};

fn all_tables_5nf(out: &ridl_core::MappingOutput) -> Result<(), String> {
    for (tid, deps) in out.table_dependencies() {
        let nf = normal_form_of(&deps);
        if nf < NormalForm::FifthApprox {
            return Err(format!(
                "table {} is only {} ({} cols, fds {:?})",
                out.rel.table(tid).name,
                nf.label(),
                deps.columns.len(),
                deps.fds
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Default synthesis ⇒ every generated table is in (approximate) 5NF.
    #[test]
    fn default_mapping_is_fully_normalized(seed in 0u64..60) {
        let s = synth::generate(&GenParams { seed, ..GenParams::default() });
        let wb = Workbench::new(s.schema);
        prop_assume!(wb.analysis().is_mappable());
        for options in [
            MappingOptions::new(),
            MappingOptions::new().with_nulls(NullOption::NullNotAllowed),
            MappingOptions::new().with_nulls(NullOption::NullNotInKeys),
            MappingOptions::new().with_sublinks(SublinkOption::Together),
            MappingOptions::new().with_sublinks(SublinkOption::IndicatorForSupot),
        ] {
            let out = wb.map(&options).expect("mapping succeeds");
            if let Err(msg) = all_tables_5nf(&out) {
                prop_assert!(false, "seed {seed} under {}: {msg}", options.announce());
            }
        }
    }
}

/// The CRIS case maps to 5NF under the default options.
#[test]
fn cris_default_is_5nf() {
    let wb = Workbench::new(ridl_workloads::cris::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();
    all_tables_5nf(&out).unwrap();
}

/// Denormalisation deliberately breaks normality: a combine directive adds
/// a non-key functional dependency, dropping the table below BCNF — the
/// paper's "not even necessarily in third normal form".
#[test]
fn combine_directive_denormalizes_below_bcnf() {
    // Person --affiliated_with--> Institution --located_in--> Country:
    // duplicating the institution's country into the person relation puts a
    // transitive dependency there.
    let schema = ridl_workloads::cris::schema();
    let affiliation = schema.fact_type_by_name("person_affiliation").unwrap();
    let wb = Workbench::new(schema);
    let query = QueryInfo::none().with_fact_access(affiliation, 50);
    let (out, log) = wb
        .map_with_rules(MappingOptions::new(), &RuleBase::builtin(), &query)
        .unwrap();
    assert!(
        log.iter().any(|l| l.contains("denormalise")),
        "rule did not fire: {log:?}"
    );
    assert!(!out.combines.is_empty());
    // The hosting table is now below BCNF.
    let person_table = out.rel.table_by_name("Person").unwrap();
    let deps = out
        .table_dependencies()
        .into_iter()
        .find(|(t, _)| *t == person_table)
        .unwrap()
        .1;
    let nf = normal_form_of(&deps);
    assert!(
        nf < NormalForm::FifthApprox,
        "expected denormalized, got {}",
        nf.label()
    );
    // And the duplicated column exists with the lossless rule present.
    assert!(out
        .rel
        .table(person_table)
        .columns
        .iter()
        .any(|c| c.name.starts_with("Institution_")));
    assert!(out
        .rel
        .constraints
        .iter()
        .any(|c| c.name.starts_with("C_SS$")));

    // The forward state map populates the redundancy, the inverse ignores
    // it, and the engine's lossless rule rejects drift.
    let pop = ridl_workloads::cris::population(&out.schema);
    let st = ridl_core::state_map::map_population(&out.schema, &out, &pop).unwrap();
    let violations = ridl_relational::validate(&out.rel, &st);
    assert!(violations.is_empty(), "{violations:?}");
    let rec = &out.combines[0];
    // Olga is affiliated with Tilburg University (country NL): her row
    // carries the duplicated country.
    let dup_filled = st
        .rows(rec.table)
        .iter()
        .any(|row| rec.dup_cols.iter().any(|c| row[*c as usize].is_some()));
    assert!(dup_filled, "combine duplicates were not populated");
    let back = ridl_core::state_map::unmap_state(&out.schema, &out, &st).unwrap();
    assert!(ridl_core::state_map::equivalent(&out.schema, &out, &pop, &back).unwrap());

    // Drift: change the duplicated value without touching the target.
    let mut db = ridl_engine::Database::create(out.rel.clone()).unwrap();
    db.load_state(st).unwrap();
    let dup_col_name = out
        .rel
        .table(rec.table)
        .column(rec.dup_cols[0])
        .name
        .clone();
    let err = db.update_where(
        "Person",
        &[ridl_engine::Pred::NotNull(dup_col_name.clone())],
        &[(
            dup_col_name.as_str(),
            Some(ridl_brm::Value::str("Atlantis")),
        )],
    );
    assert!(err.is_err(), "redundancy drift accepted");
}

//! Experiment **E-SQL2**: the generated SQL2 schema-definition fragment of
//! §4.3 — `CREATE TABLE Program_Paper` with domain-typed columns, inline
//! key and foreign-key clauses, and the commented equality view constraint.

use ridl_core::{MappingOptions, SublinkOption, Workbench};
use ridl_sqlgen::{generate_for, DialectKind};
use ridl_workloads::fig6;

fn alt3_ddl(kind: DialectKind) -> ridl_sqlgen::GeneratedDdl {
    let wb = Workbench::new(fig6::schema());
    let inv = wb.schema().object_type_by_name("Invited_Paper").unwrap();
    let sl = wb
        .schema()
        .sublinks()
        .find(|(_, s)| s.sub == inv)
        .map(|(sid, _)| sid)
        .unwrap();
    let out = wb
        .map(&MappingOptions::new().override_sublink(sl, SublinkOption::IndicatorForSupot))
        .unwrap();
    generate_for(&out.rel, kind)
}

#[test]
fn sql2_program_paper_fragment() {
    let ddl = alt3_ddl(DialectKind::Sql2);
    let t = &ddl.text;
    // The paper's fragment, clause by clause.
    assert!(t.contains("-- TABLE Program_Paper"), "{t}");
    assert!(t.contains("CREATE TABLE Program_Paper"));
    // Column with domain + data-type comment.
    assert!(
        t.contains("( Paper_ProgramId\n     D_Paper_ProgramId    -- DATA TYPE CHAR(2)"),
        "{t}"
    );
    assert!(t.contains("     NOT NULL\n     PRIMARY KEY\n"));
    // Foreign key to the super-relation's `_Is` column with generated name.
    assert!(t.contains("REFERENCES Paper ( Paper_ProgramId_Is )"));
    assert!(t.contains("CONSTRAINT C_FKEY$_"));
    // The nullable presenter column is commented `-- NULL` as in the paper.
    assert!(
        t.contains(" , Person_presenting\n     D_Person    -- DATA TYPE CHAR(30)\n     -- NULL"),
        "{t}"
    );
    assert!(
        t.contains(
            " , Session_comprising\n     D_Session    -- DATA TYPE NUMERIC(3)\n     NOT NULL"
        ),
        "{t}"
    );
    // The view-constraint comment block with the equality view.
    assert!(t.contains("View Constraints For Table"));
    assert!(t.contains("-- EQUALITY VIEW CONSTRAINT :"));
    assert!(
        t.contains("-- ( SELECT Paper_ProgramId\n--      FROM Program_Paper")
            || t.contains("--    ( SELECT Paper_ProgramId\n--      FROM Program_Paper"),
        "{t}"
    );
    assert!(t.contains("-- IS EQUAL TO"));
    assert!(t.contains("WHERE ( Paper_ProgramId_Is IS NOT NULL )"));
    assert!(t.contains("CONSTRAINT C_EQ$_"));
}

#[test]
fn all_dialects_generate_complete_schemas() {
    for kind in [
        DialectKind::Sql2,
        DialectKind::Oracle,
        DialectKind::Ingres,
        DialectKind::Db2,
    ] {
        let ddl = alt3_ddl(kind);
        // Every table present.
        assert!(ddl.text.matches("CREATE TABLE").count() >= 2, "{kind:?}");
        // Nothing silently dropped: keys + views accounted as enforced or
        // commented.
        assert!(
            ddl.enforced_constraints + ddl.commented_constraints >= 4,
            "{kind:?}: {} + {}",
            ddl.enforced_constraints,
            ddl.commented_constraints
        );
    }
}

#[test]
fn oracle_keeps_fks_as_comments_and_ingres_uses_indexes() {
    let ora = alt3_ddl(DialectKind::Oracle);
    assert!(ora
        .text
        .contains("-- REFERENCES Paper ( Paper_ProgramId_Is )"));
    assert!(!ora.text.contains("\n     REFERENCES")); // never live
    let ing = alt3_ddl(DialectKind::Ingres);
    assert!(ing.text.contains("CREATE UNIQUE INDEX"));
}

#[test]
fn sql2_for_cris_is_well_formed_at_scale() {
    let wb = Workbench::new(ridl_workloads::cris::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let ddl = generate_for(&out.rel, DialectKind::Sql2);
    assert_eq!(
        ddl.text.matches("CREATE TABLE").count(),
        out.table_count(),
        "one CREATE TABLE per generated relation"
    );
    // Balanced table sections.
    assert_eq!(ddl.table_lines.len(), out.table_count());
    // The CRIS value constraint on grades surfaces as a CHECK.
    assert!(
        ddl.text.contains("IN ( 'A' , 'B' , 'C' , 'D' )"),
        "{}",
        ddl.text
    );
}

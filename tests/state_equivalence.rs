//! Experiment **E-RT**: losslessness (state equivalence, §4.1 Definitions
//! 1–2) of the composed mapping, tested executably.
//!
//! For randomly generated schemas and model populations, and across the
//! option grid, the schema transformation `g` must send models of the
//! binary schema to valid states of the generated relational schema, and
//! `g⁻¹ ∘ g` must be the identity up to entity renaming.

use proptest::prelude::*;

use ridl_core::state_map::{equivalent, map_population, unmap_state};
use ridl_core::{MappingOptions, NullOption, SublinkOption, Workbench};
use ridl_relational::validate as rel_validate;
use ridl_workloads::popgen::{self, PopParams};
use ridl_workloads::synth::{self, GenParams};

fn roundtrip(
    schema_seed: u64,
    pop_seed: u64,
    options: MappingOptions,
) -> Result<(), TestCaseError> {
    let s = synth::generate(&GenParams {
        seed: schema_seed,
        ..GenParams::default()
    });
    let pop = popgen::generate(
        &s.schema,
        &PopParams {
            seed: pop_seed,
            ..PopParams::default()
        },
    );
    // Only meaningful on model populations.
    let violations = ridl_brm::population::validate(&s.schema, &pop);
    prop_assert!(
        violations.is_empty(),
        "population generator produced a non-model: {:?}",
        &violations[..violations.len().min(3)]
    );

    let wb = Workbench::new(s.schema.clone());
    prop_assert!(wb.analysis().is_mappable(), "{}", wb.analysis().render());
    let out = wb.map(&options).expect("mapping succeeds");
    prop_assert!(out.rel.check_ids().is_empty(), "{:?}", out.rel.check_ids());

    // g maps models to valid relational states.
    let st = map_population(&out.schema, &out, &pop).expect("forward state map");
    let rel_violations = rel_validate::validate(&out.rel, &st);
    prop_assert!(
        rel_violations.is_empty(),
        "schema {schema_seed} pop {pop_seed} options {:?}: {:?}",
        options.announce(),
        &rel_violations[..rel_violations.len().min(5)]
    );

    // g⁻¹ ∘ g = id, up to entity renaming.
    let back = unmap_state(&out.schema, &out, &st).expect("inverse state map");
    prop_assert!(
        equivalent(&out.schema, &out, &pop, &back).expect("canonicalization"),
        "round trip diverged for schema {schema_seed} pop {pop_seed} under {}",
        options.announce()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn default_options_roundtrip(schema_seed in 0u64..40, pop_seed in 0u64..40) {
        roundtrip(schema_seed, pop_seed, MappingOptions::new())?;
    }

    #[test]
    fn null_not_allowed_roundtrip(schema_seed in 0u64..30, pop_seed in 0u64..30) {
        roundtrip(
            schema_seed,
            pop_seed,
            MappingOptions::new().with_nulls(NullOption::NullNotAllowed),
        )?;
    }

    #[test]
    fn null_not_in_keys_roundtrip(schema_seed in 0u64..30, pop_seed in 0u64..30) {
        roundtrip(
            schema_seed,
            pop_seed,
            MappingOptions::new().with_nulls(NullOption::NullNotInKeys),
        )?;
    }

    #[test]
    fn together_roundtrip(schema_seed in 0u64..30, pop_seed in 0u64..30) {
        roundtrip(
            schema_seed,
            pop_seed,
            MappingOptions::new().with_sublinks(SublinkOption::Together),
        )?;
    }

    #[test]
    fn indicator_roundtrip(schema_seed in 0u64..30, pop_seed in 0u64..30) {
        roundtrip(
            schema_seed,
            pop_seed,
            MappingOptions::new().with_sublinks(SublinkOption::IndicatorForSupot),
        )?;
    }
}

/// A deterministic smoke round trip over the CRIS case under every global
/// option combination.
#[test]
fn cris_roundtrips_across_option_grid() {
    let schema = ridl_workloads::cris::schema();
    let pop = ridl_workloads::cris::population(&schema);
    assert!(ridl_brm::population::is_model(&schema, &pop));
    let wb = Workbench::new(schema);
    assert!(wb.analysis().is_mappable(), "{}", wb.analysis().render());
    for nulls in [
        NullOption::Default,
        NullOption::NullNotAllowed,
        NullOption::NullNotInKeys,
        NullOption::NullAllowed,
    ] {
        for subs in [
            SublinkOption::Separate,
            SublinkOption::Together,
            SublinkOption::IndicatorForSupot,
        ] {
            let options = MappingOptions::new().with_nulls(nulls).with_sublinks(subs);
            let out = wb.map(&options).unwrap_or_else(|e| {
                panic!("{}: {e}", options.announce());
            });
            let st = map_population(&out.schema, &out, &pop)
                .unwrap_or_else(|e| panic!("{}: {e}", options.announce()));
            let violations = rel_validate::validate(&out.rel, &st);
            assert!(
                violations.is_empty(),
                "{}: {:?}",
                options.announce(),
                &violations[..violations.len().min(5)]
            );
            let back = unmap_state(&out.schema, &out, &st).unwrap();
            assert!(
                equivalent(&out.schema, &out, &pop, &back).unwrap(),
                "{} round trip",
                options.announce()
            );
        }
    }
}

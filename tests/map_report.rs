//! Experiment **E-MAP**: the map-report fragments of §4.3.
//!
//! Fragment 1 (forwards): each binary fact maps to an executable SELECT;
//! the sublink maps to the `_Is` pairing select; the identifier constraint
//! maps to a named key. Fragment 2 (backwards): tables and columns list the
//! binary concepts they derive from; generated constraints trace back to
//! the conceptual constraints or the transformation step that needed them.

use ridl_core::{MapReport, MappingOptions, SublinkOption, Workbench};
use ridl_workloads::fig6;

fn alt3() -> (Workbench, ridl_core::MappingOutput) {
    let wb = Workbench::new(fig6::schema());
    let inv = wb.schema().object_type_by_name("Invited_Paper").unwrap();
    let sl = wb
        .schema()
        .sublinks()
        .find(|(_, s)| s.sub == inv)
        .map(|(sid, _)| sid)
        .unwrap();
    let out = wb
        .map(&MappingOptions::new().override_sublink(sl, SublinkOption::IndicatorForSupot))
        .unwrap();
    (wb, out)
}

#[test]
fn forwards_map_fragment_1() {
    let (wb, out) = alt3();
    let report: MapReport = wb.map_report(&out);
    let f = &report.forwards;

    // "FACT WITH ROLE presented_by ON NOLOT Program_Paper AND ROLE
    //  presenting ON LOT-NOLOT Person  MAPPED TO  SELECT ... WHERE ..."
    assert!(
        f.contains("FACT WITH ROLE presented_by ON NOLOT Program_Paper AND ROLE presenting ON LOT-NOLOT Person"),
        "{f}"
    );
    assert!(
        f.contains("SELECT Paper_ProgramId , Person_presenting"),
        "{f}"
    );
    assert!(f.contains("WHERE ( Person_presenting IS NOT NULL )"), "{f}");

    // The mandatory session fact selects without a WHERE.
    assert!(
        f.contains("FACT WITH ROLE presented_during ON NOLOT Program_Paper AND ROLE comprising ON LOT-NOLOT Session"),
        "{f}"
    );
    assert!(f.contains("SELECT Paper_ProgramId , Session_comprising"));

    // "SUBLINK IS FROM NOLOT Program_Paper TO NOLOT Paper MAPPED TO
    //  SELECT Paper_ProgramId_Is , Paper_Id FROM Paper WHERE ..."
    assert!(
        f.contains("SUBLINK IS FROM NOLOT Program_Paper TO NOLOT Paper"),
        "{f}"
    );
    assert!(
        f.contains("SELECT Paper_ProgramId_Is , Paper_Id")
            && f.contains("WHERE ( Paper_ProgramId_Is IS NOT NULL )"),
        "{f}"
    );

    // "IDENTIFIER : ROLE ON NOLOT Paper AND LOT Paper_Id MAPPED TO ... C_KEY$"
    assert!(f.contains("IDENTIFIER"), "{f}");
    assert!(f.contains("CONSTRAINT C_KEY$_"), "{f}");
}

#[test]
fn backwards_map_fragment_2() {
    let (wb, out) = alt3();
    let report = wb.map_report(&out);
    let b = &report.backwards;

    // "TABLE Paper DERIVED FROM ... FACT ... SUBLINK ..."
    assert!(b.contains("TABLE Paper\n    DERIVED FROM"), "{b}");
    let paper_section: &str = b.split("TABLE Program_Paper").next().unwrap();
    assert!(paper_section.contains("NOLOT Paper"));
    assert!(paper_section.contains("FACT WITH ROLE titled ON NOLOT Paper"));
    assert!(paper_section.contains("SUBLINK IS FROM NOLOT Program_Paper TO NOLOT Paper"));
    assert!(paper_section.contains("SUBLINK IS FROM NOLOT Invited_Paper TO NOLOT Paper"));

    // "COLUMN Paper_ProgramId IN TABLE Program_Paper DERIVED FROM ..."
    assert!(
        b.contains("COLUMN Paper_ProgramId IN TABLE Program_Paper\n    DERIVED FROM"),
        "{b}"
    );
    // The _Is column derives from the sublink.
    let is_col = b
        .split("COLUMN Paper_ProgramId_Is IN TABLE Paper")
        .nth(1)
        .expect("column section present");
    let head = &is_col[..is_col.len().min(400)];
    assert!(
        head.contains("SUBLINK IS FROM NOLOT Program_Paper TO NOLOT Paper"),
        "{head}"
    );

    // "FOREIGN KEY ... DERIVED FROM SUBLINK IS ..." — generated constraints
    // trace back.
    let fkey = b
        .split("CONSTRAINT C_FKEY$_1")
        .nth(1)
        .expect("foreign key section");
    let head = &fkey[..fkey.len().min(300)];
    assert!(
        head.contains("IS-A") || head.contains("references"),
        "{head}"
    );
    // The equality view's derivation names the sublink too.
    let eq = b.split("CONSTRAINT C_EQ$_1").nth(1).expect("C_EQ section");
    let head = &eq[..eq.len().min(300)];
    assert!(head.contains("SEPARATE SUB/SUPER RELATION"), "{head}");
}

#[test]
fn every_concept_appears_in_the_forwards_map() {
    let wb = Workbench::new(ridl_workloads::cris::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let report = wb.map_report(&out);
    for (_, ot) in out.schema.object_types() {
        assert!(
            report.forwards.contains(&ot.name),
            "object type {} missing from forwards map",
            ot.name
        );
    }
    for (fid, _) in out.schema.fact_types() {
        let desc = ridl_core::map_report::describe_fact(&out.schema, fid);
        assert!(
            report.forwards.contains(&desc),
            "fact {desc} missing from forwards map"
        );
    }
    // Every generated constraint appears in the backwards map.
    for c in &out.rel.constraints {
        assert!(
            report.backwards.contains(&format!("CONSTRAINT {}", c.name)),
            "{} missing from backwards map",
            c.name
        );
    }
}

#[test]
fn omitted_facts_are_reported_not_silent() {
    let wb = Workbench::new(fig6::schema());
    let submitted = wb.schema().fact_type_by_name("paper_submitted").unwrap();
    let out = wb.map(&MappingOptions::new().omit(submitted)).unwrap();
    let report = wb.map_report(&out);
    assert!(
        report.forwards.contains("(omitted by option)"),
        "{}",
        report.forwards
    );
    assert!(out
        .notes
        .iter()
        .any(|n| n.contains("omitted from the generated schema")));
    // The omitted fact's column is gone.
    let paper = out.rel.table_by_name("Paper").unwrap();
    assert!(out
        .rel
        .table(paper)
        .column_by_name("Date_of_submission")
        .is_none());
}

//! RIDL-language round trips: printing any well-formed schema and parsing
//! it back preserves structure — the textual notation is a faithful
//! substitute for the RIDL-G editor's meta-database output.

use proptest::prelude::*;

use ridl_brm::Schema;
use ridl_workloads::synth::{self, GenParams};

fn structurally_equal(a: &Schema, b: &Schema) -> bool {
    a.num_object_types() == b.num_object_types()
        && a.num_fact_types() == b.num_fact_types()
        && a.num_sublinks() == b.num_sublinks()
        && a.num_constraints() == b.num_constraints()
        && a.object_types()
            .zip(b.object_types())
            .all(|((_, x), (_, y))| x == y)
        && a.fact_types()
            .zip(b.fact_types())
            .all(|((_, x), (_, y))| x == y)
        && a.sublinks()
            .zip(b.sublinks())
            .all(|((_, x), (_, y))| x == y)
        && a.constraints()
            .zip(b.constraints())
            .all(|((_, x), (_, y))| x.kind == y.kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn print_parse_roundtrip_on_generated_schemas(seed in 0u64..200) {
        let s = synth::generate(&GenParams { seed, ..GenParams::default() }).schema;
        let printed = ridl_lang::print(&s);
        let reparsed = ridl_lang::parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{printed}"));
        prop_assert!(structurally_equal(&s, &reparsed), "seed {seed}\n{printed}");
    }
}

#[test]
fn cris_round_trips_through_text() {
    let s = ridl_workloads::cris::schema();
    let printed = ridl_lang::print(&s);
    let reparsed = ridl_lang::parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
    assert!(structurally_equal(&s, &reparsed), "{printed}");
}

#[test]
fn fig6_round_trips_and_maps_identically() {
    let s = ridl_workloads::fig6::schema();
    let printed = ridl_lang::print(&s);
    let reparsed = ridl_lang::parse(&printed).unwrap();
    assert!(structurally_equal(&s, &reparsed));
    // The reparsed schema maps to the same relational schema.
    let a = ridl_core::Workbench::new(s)
        .map(&ridl_core::MappingOptions::new())
        .unwrap();
    let b = ridl_core::Workbench::new(reparsed)
        .map(&ridl_core::MappingOptions::new())
        .unwrap();
    assert_eq!(a.rel.tables.len(), b.rel.tables.len());
    for ((_, ta), (_, tb)) in a.rel.tables().zip(b.rel.tables()) {
        assert_eq!(ta, tb);
    }
    assert_eq!(a.rel.constraints.len(), b.rel.constraints.len());
}

//! Durability integration: WAL commit points, checkpoint/truncation,
//! crash recovery, fsync policies, WAL poisoning, and the
//! checkpoint-in-transaction guard — all driven through the engine's
//! public `Database::open_with` API over the fault-injecting in-memory
//! filesystem (plus one real-filesystem smoke test).

use std::path::PathBuf;
use std::sync::Arc;

use ridl_brm::{DataType, Value};
use ridl_durable::store::{store_path, SNAP_FILE, SNAP_PREV_FILE, SNAP_TMP_FILE, WAL_FILE};
use ridl_durable::{
    delta_file, CheckpointKind, Durability, FaultKind, FaultPlan, FaultyIo, FsyncPolicy,
};
use ridl_engine::{Database, EngineError};
use ridl_relational::{validate, Column, RelConstraintKind, RelSchema, Table};

fn v(s: &str) -> Option<Value> {
    Some(Value::str(s))
}

/// The Paper / Program_Paper sample schema with PK + FK constraints.
fn sample_schema() -> RelSchema {
    let mut s = RelSchema::new("t");
    let d = s.domain("D", DataType::Char(10));
    let paper = s.add_table(Table::new(
        "Paper",
        vec![
            Column::not_null("Paper_Id", d),
            Column::nullable("Program_Id", d),
        ],
    ));
    let pp = s.add_table(Table::new(
        "Program_Paper",
        vec![
            Column::not_null("Program_Id", d),
            Column::not_null("Session", d),
        ],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: paper,
        cols: vec![0],
    });
    s.add_named(RelConstraintKind::PrimaryKey {
        table: pp,
        cols: vec![0],
    });
    s.add_named(RelConstraintKind::ForeignKey {
        table: pp,
        cols: vec![0],
        ref_table: paper,
        ref_cols: vec![1],
    });
    s
}

fn dir() -> PathBuf {
    PathBuf::from("/db")
}

fn open(io: &Arc<FaultyIo>, config: Durability) -> Database {
    Database::open_with(io.clone(), dir(), sample_schema(), config).expect("open")
}

fn always() -> Durability {
    Durability {
        fsync: FsyncPolicy::Always,
        checkpoint_every_bytes: None,
    }
}

#[test]
fn statements_survive_reopen() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    assert!(db.is_durable());
    assert!(db.recovery_report().unwrap().fresh);
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
    db.delete_where(
        "Paper",
        &[ridl_engine::Pred::Eq("Paper_Id".into(), Value::str("P2"))],
    )
    .unwrap();
    let want = db.state().clone();
    drop(db);

    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    let r = db2.recovery_report().unwrap();
    assert!(!r.fresh);
    assert_eq!(r.units_replayed, 4);
    assert_eq!(r.bytes_discarded, 0);
    assert!(r.checkpoint.is_none());
    assert!(validate(db2.schema(), db2.state()).is_empty());
}

#[test]
fn rejected_statements_never_reach_the_log() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    // Constraint violation: reverted, not logged.
    assert!(db.insert("Program_Paper", vec![v("A9"), v("S9")]).is_err());
    let want = db.state().clone();
    drop(db);
    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    assert_eq!(db2.recovery_report().unwrap().units_replayed, 1);
}

#[test]
fn checkpoint_truncates_wal_and_recovers_from_snapshot() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
    let before = db.wal_bytes().unwrap();
    db.checkpoint().unwrap();
    assert!(db.wal_bytes().unwrap() < before, "WAL truncated");
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    let want = db.state().clone();
    drop(db);

    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    let r = db2.recovery_report().unwrap();
    let (epoch, file) = r.checkpoint.expect("recovered from checkpoint");
    assert_eq!(epoch, 1);
    assert_eq!(file, SNAP_FILE);
    assert_eq!(r.units_replayed, 1, "only the post-checkpoint statement");
}

#[test]
fn transactions_log_one_unit_at_outermost_commit() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    let len0 = db.wal_bytes().unwrap();
    db.begin();
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
    assert_eq!(db.wal_bytes().unwrap(), len0, "nothing logged mid-txn");
    db.commit().unwrap();
    assert!(db.wal_bytes().unwrap() > len0);
    // A rolled-back transaction logs nothing.
    let len1 = db.wal_bytes().unwrap();
    db.begin();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    db.rollback().unwrap();
    assert_eq!(db.wal_bytes().unwrap(), len1);
    let want = db.state().clone();
    drop(db);

    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    assert_eq!(db2.recovery_report().unwrap().units_replayed, 1);
}

#[test]
fn unchecked_units_redefer_their_check_on_replay() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    // An unchecked row outside a transaction: durable, check deferred.
    db.insert_unchecked("Program_Paper", vec![v("A1"), v("S1")])
        .unwrap();
    let want = db.state().clone();
    drop(db);
    let mut db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    // The deferred check is still pending after recovery: the next
    // checked statement runs full-state validation.
    db2.insert("Paper", vec![v("P2"), None]).unwrap();
    assert_eq!(db2.last_statement_report().unwrap().strategy, "full");
}

#[test]
fn torn_wal_tail_is_discarded() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    let want = db.state().clone();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    drop(db);
    // Tear the last committed unit: chop bytes off the WAL tail.
    let wal = store_path(&dir(), WAL_FILE);
    let mut bytes = io.peek(&wal).unwrap();
    bytes.truncate(bytes.len() - 5);
    bytes.extend_from_slice(b"???"); // plus trailing garbage
    io.poke(&wal, bytes);

    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want, "clean prefix recovered");
    let r = db2.recovery_report().unwrap();
    assert_eq!(r.units_replayed, 1);
    assert!(r.bytes_discarded > 0);
    drop(db2);
    // Recovery rewrote the log: a second open is clean and idempotent.
    let db3 = open(&io, always());
    assert_eq!(db3.state(), &want);
    assert_eq!(db3.recovery_report().unwrap().bytes_discarded, 0);
}

#[test]
fn group_commit_defers_fsync_and_flush_forces_it() {
    let io = Arc::new(FaultyIo::new());
    let config = Durability {
        fsync: FsyncPolicy::GroupCommit {
            window_micros: u64::MAX,
        },
        checkpoint_every_bytes: None,
    };
    let mut db = open(&io, config);
    let base = io.fsync_count();
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    assert_eq!(io.fsync_count(), base, "commits inside the window");
    db.flush_wal().unwrap();
    assert_eq!(io.fsync_count(), base + 1);
    let want = db.state().clone();
    drop(db);
    // A crash after the flush loses nothing.
    io.crash(0);
    let db2 = open(&io, config);
    assert_eq!(db2.state(), &want);
}

#[test]
fn group_commit_crash_loses_a_suffix_not_consistency() {
    let io = Arc::new(FaultyIo::new());
    let config = Durability {
        fsync: FsyncPolicy::GroupCommit {
            window_micros: u64::MAX,
        },
        checkpoint_every_bytes: None,
    };
    let mut db = open(&io, config);
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.flush_wal().unwrap();
    let durable_state = db.state().clone();
    db.insert("Paper", vec![v("P2"), None]).unwrap(); // unsynced
    io.crash(0);
    drop(db);
    let db2 = open(&io, config);
    assert_eq!(db2.state(), &durable_state, "unsynced commit lost whole");
    assert!(validate(db2.schema(), db2.state()).is_empty());
}

#[test]
fn wal_failure_reverts_statement_and_poisons_until_checkpoint() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    let want = db.state().clone();
    // Next syscall (the WAL append) fails.
    io.set_plan(Some(FaultPlan {
        at_op: io.op_count(),
        kind: FaultKind::IoError,
    }));
    let err = db.insert("Paper", vec![v("P2"), None]);
    assert!(matches!(err, Err(EngineError::Io(_))), "{err:?}");
    assert_eq!(db.state(), &want, "statement reverted");
    // Poisoned: mutations refused with a typed error.
    let err = db.insert("Paper", vec![v("P3"), None]);
    assert!(matches!(err, Err(EngineError::WalPoisoned)), "{err:?}");
    // A checkpoint re-establishes a durable base and clears the poison.
    db.checkpoint().unwrap();
    db.insert("Paper", vec![v("P3"), None]).unwrap();
    let want = db.state().clone();
    drop(db);
    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
}

/// A WAL failure must not discharge the deferred-check flags: the revert
/// restores the rows of the failed statement, but an *uncovered* unchecked
/// row (its op long drained from the undo log) stays in the state — so the
/// post-revert state can be constraint-invalid and the poison-recovery
/// checkpoint must re-validate it, never persist it blindly.
#[test]
fn wal_failure_preserves_the_deferred_check_flags() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    // Uncovered unchecked row: dangling FK, check deferred, undo drained.
    db.insert_unchecked("Program_Paper", vec![v("A9"), v("S9")])
        .unwrap();
    // This insert repairs the FK, so the discharging full scan passes —
    // but its WAL append fails and the revert re-breaks the FK.
    io.set_plan(Some(FaultPlan {
        at_op: io.op_count(),
        kind: FaultKind::IoError,
    }));
    let err = db.insert("Paper", vec![v("P9"), v("A9")]);
    assert!(matches!(err, Err(EngineError::Io(_))), "{err:?}");
    assert!(
        !validate(db.schema(), db.state()).is_empty(),
        "post-revert state is FK-invalid again"
    );
    // The checkpoint re-runs full validation and refuses the state; the
    // invalid snapshot never reaches disk.
    let err = db.checkpoint();
    assert!(
        matches!(err, Err(EngineError::ConstraintViolation(_))),
        "{err:?}"
    );
    assert!(
        io.peek(&store_path(&dir(), SNAP_FILE)).is_none(),
        "no snapshot of the invalid state was written"
    );
}

/// The same flag-preservation property through the transaction path: the
/// outermost `commit`'s full scan passes, its WAL append fails, and the
/// reverted (invalid) state must still carry the deferred-check flags.
#[test]
fn commit_wal_failure_preserves_the_deferred_check_flags() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.insert_unchecked("Program_Paper", vec![v("A9"), v("S9")])
        .unwrap();
    db.begin();
    db.insert("Paper", vec![v("P9"), v("A9")]).unwrap();
    io.set_plan(Some(FaultPlan {
        at_op: io.op_count(),
        kind: FaultKind::IoError,
    }));
    let err = db.commit();
    assert!(matches!(err, Err(EngineError::Io(_))), "{err:?}");
    assert!(
        !validate(db.schema(), db.state()).is_empty(),
        "post-revert state is FK-invalid again"
    );
    let err = db.checkpoint();
    assert!(
        matches!(err, Err(EngineError::ConstraintViolation(_))),
        "{err:?}"
    );
}

/// When the commit's append lands whole but the fsync fails, the engine
/// rewinds the log to its pre-append length: even a reboot that keeps
/// every volatile byte must not replay a statement the caller was told
/// failed.
#[test]
fn fsync_failure_rewinds_the_appended_unit() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    let want = db.state().clone();
    // The append (next op) lands whole; the fsync right after it fails.
    io.set_plan(Some(FaultPlan {
        at_op: io.op_count() + 1,
        kind: FaultKind::IoError,
    }));
    let err = db.insert("Paper", vec![v("P2"), None]);
    assert!(matches!(err, Err(EngineError::Io(_))), "{err:?}");
    assert_eq!(db.state(), &want, "statement reverted");
    drop(db);
    io.crash(1 << 20); // keep the whole volatile tail across the reboot
    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want, "reverted statement replayed from WAL");
}

/// Satellite 1: a checkpoint taken while a transaction is open would make
/// uncommitted changes durable — refused with a typed error, and the
/// automatic checkpoint defers too.
#[test]
fn checkpoint_mid_transaction_is_forbidden() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.begin();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    let err = db.checkpoint();
    assert!(
        matches!(err, Err(EngineError::CheckpointInTransaction)),
        "{err:?}"
    );
    // Nothing was written: the store still recovers to the pre-txn state.
    db.rollback().unwrap();
    db.checkpoint().unwrap();
    let want = db.state().clone();
    drop(db);
    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    assert_eq!(db2.state().num_rows(), 1);
}

/// Satellite 1: the auto-checkpoint threshold never fires mid-transaction
/// — it waits for the outermost commit.
#[test]
fn auto_checkpoint_defers_until_commit() {
    let io = Arc::new(FaultyIo::new());
    let config = Durability {
        fsync: FsyncPolicy::Always,
        checkpoint_every_bytes: Some(1), // every commit crosses it
    };
    let mut db = open(&io, config);
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    let checkpoints = |io: &FaultyIo| io.peek(&store_path(&dir(), SNAP_FILE)).is_some();
    assert!(checkpoints(&io), "auto-checkpoint after the first commit");
    let snap_before = io.peek(&store_path(&dir(), SNAP_FILE)).unwrap();
    db.begin();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    db.insert("Paper", vec![v("P3"), None]).unwrap();
    let snap_mid = io.peek(&store_path(&dir(), SNAP_FILE)).unwrap();
    assert_eq!(snap_before, snap_mid, "no snapshot while the txn is open");
    db.commit().unwrap();
    // The checkpoint fired at commit — as a fresh base (rewriting the
    // snapshot) or as an incremental delta (a chain file appears while
    // the base stays untouched), whichever the dirty fraction picked.
    let stats = db.last_checkpoint_stats().expect("checkpoint fired");
    let snap_after = io.peek(&store_path(&dir(), SNAP_FILE)).unwrap();
    match stats.kind {
        CheckpointKind::Base => {
            assert_ne!(snap_before, snap_after, "base rewrote the snapshot")
        }
        CheckpointKind::Delta => {
            assert_eq!(snap_before, snap_after, "delta leaves the base alone");
            assert!(
                io.peek(&store_path(&dir(), &delta_file(1))).is_some(),
                "delta file appeared"
            );
        }
    }
    assert!(db.wal_bytes().unwrap() < 100, "WAL truncated");
    let want = db.state().clone();
    drop(db);
    assert_eq!(open(&io, config).state(), &want);
}

#[test]
fn bulk_load_checkpoints_instead_of_logging_rows() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    use ridl_relational::TableId;
    let n = db
        .bulk_load([
            (TableId(0), vec![v("P1"), v("A1")]),
            (TableId(0), vec![v("P2"), None]),
            (TableId(1), vec![v("A1"), v("S1")]),
        ])
        .unwrap();
    assert_eq!(n, 3);
    let want = db.state().clone();
    drop(db);
    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    let r = db2.recovery_report().unwrap();
    assert!(r.checkpoint.is_some(), "load went through a checkpoint");
    assert_eq!(r.units_replayed, 0);
}

#[test]
fn corrupt_snapshot_falls_back_to_previous_checkpoint() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.checkpoint().unwrap();
    let want = db.state().clone();
    drop(db);
    // Stage the moment between the checkpoint renames: the good snapshot
    // demoted to `prev`, the current one unreadable at rest.
    let snap = store_path(&dir(), SNAP_FILE);
    let good = io.peek(&snap).unwrap();
    io.poke(&store_path(&dir(), SNAP_PREV_FILE), good);
    let mut bad = io.peek(&snap).unwrap();
    bad[20] ^= 0x40;
    io.poke(&snap, bad);

    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    let r = db2.recovery_report().unwrap();
    assert_eq!(r.snapshots_rejected, 1);
    assert_eq!(r.checkpoint.unwrap().1, SNAP_PREV_FILE);
}

#[test]
fn schema_mismatch_is_refused() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), None]).unwrap();
    drop(db);
    let mut other = sample_schema();
    let d = other.domain("D2", DataType::Integer);
    other.add_table(Table::new("Extra", vec![Column::not_null("X", d)]));
    let err = Database::open_with(io, dir(), other, always());
    assert!(
        matches!(err, Err(EngineError::SchemaMismatch)),
        "opened a store from a different schema"
    );
}

#[test]
fn real_filesystem_roundtrip() {
    let dir = std::env::temp_dir().join(format!("ridl-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Database::open(&dir, sample_schema()).unwrap();
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.insert("Program_Paper", vec![v("A1"), v("S1")]).unwrap();
    db.checkpoint().unwrap();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    let want = db.state().clone();
    drop(db);
    let db2 = Database::open(&dir, sample_schema()).unwrap();
    assert_eq!(db2.state(), &want);
    assert_eq!(db2.recovery_report().unwrap().units_replayed, 1);
    drop(db2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn auto_checkpoint_fires_on_the_crossing_statement_not_one_late() {
    // Measure the WAL header and per-unit sizes with auto-checkpoints
    // off, using identically sized rows so every unit is the same width.
    let probe = Arc::new(FaultyIo::new());
    let mut db = open(&probe, always());
    let header = db.wal_bytes().unwrap();
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    let unit = db.wal_bytes().unwrap() - header;
    db.insert("Paper", vec![v("P2"), v("A2")]).unwrap();
    assert_eq!(
        db.wal_bytes().unwrap(),
        header + 2 * unit,
        "equal-size rows log equal-size units"
    );
    drop(db);

    // Pin the trigger boundary: the threshold is "checkpoint once the
    // WAL *exceeds* this many bytes", measured after the just-appended
    // commit record. With the threshold at exactly two units, the second
    // commit lands on the boundary (no checkpoint) and the third must
    // checkpoint on that same statement — not one statement late.
    let io = Arc::new(FaultyIo::new());
    let mut db = open(
        &io,
        Durability {
            fsync: FsyncPolicy::Always,
            checkpoint_every_bytes: Some(header + 2 * unit),
        },
    );
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    assert_eq!(db.wal_bytes().unwrap(), header + unit);
    assert!(db.last_checkpoint_stats().is_none(), "below the threshold");
    db.insert("Paper", vec![v("P2"), v("A2")]).unwrap();
    assert_eq!(db.wal_bytes().unwrap(), header + 2 * unit);
    assert!(
        db.last_checkpoint_stats().is_none(),
        "exactly at the threshold is not past it"
    );
    db.insert("Paper", vec![v("P3"), v("A3")]).unwrap();
    assert_eq!(
        db.wal_bytes().unwrap(),
        header,
        "the crossing commit checkpointed (and truncated) immediately"
    );
    assert!(db.last_checkpoint_stats().is_some());
}

#[test]
fn snapshot_write_failures_keep_the_wal_appendable_and_clean_up_tmp() {
    // Sweep an injected I/O error across every syscall of the checkpoint
    // window and check the `CheckpointFailure` contract at each point:
    // a `SnapshotWrite` failure must leave the WAL appendable (the
    // checkpoint "simply did not happen"), a `WalReset` failure poisons
    // appends until the next successful checkpoint, and in every case a
    // reopen recovers the exact live state with no orphaned
    // `checkpoint.tmp` surviving the scan.
    let mut saw_snapshot_write = false;
    let mut saw_orphan_tmp = false;
    let mut saw_poisoned = false;
    for at in 0..32u64 {
        let io = Arc::new(FaultyIo::new());
        let mut db = open(&io, always());
        db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
        db.checkpoint().unwrap(); // freeze a geometry: later ckpts may be deltas
        db.insert("Paper", vec![v("P2"), None]).unwrap();
        io.set_plan(Some(FaultPlan {
            at_op: io.op_count() + at,
            kind: FaultKind::IoError,
        }));
        let r = db.checkpoint();
        io.set_plan(None);
        match r {
            Err(_) => {
                saw_snapshot_write = true;
                saw_orphan_tmp |= io.peek(&store_path(&dir(), SNAP_TMP_FILE)).is_some();
                // The claim under test: the WAL remains appendable.
                db.insert("Paper", vec![v("P3"), None])
                    .expect("WAL appendable after SnapshotWrite failure");
            }
            Ok(()) => match db.insert("Paper", vec![v("P3"), None]) {
                Ok(()) => {}
                Err(EngineError::WalPoisoned) => {
                    // WalReset stage: snapshot durable, appends poisoned
                    // until a checkpoint repairs the log.
                    saw_poisoned = true;
                    db.checkpoint().expect("repair checkpoint");
                    db.insert("Paper", vec![v("P3"), None]).unwrap();
                }
                Err(e) => panic!("unexpected post-checkpoint error: {e:?}"),
            },
        }
        let want = db.state().clone();
        drop(db);
        let db2 = open(&io, always());
        assert_eq!(db2.state(), &want, "fault at +{at}: reopen recovers");
        assert!(
            io.peek(&store_path(&dir(), SNAP_TMP_FILE)).is_none(),
            "fault at +{at}: read_store removed the orphaned tmp"
        );
    }
    assert!(saw_snapshot_write, "sweep hit the snapshot-write stage");
    assert!(
        saw_orphan_tmp,
        "sweep left (and then cleaned) an orphan tmp"
    );
    assert!(saw_poisoned, "sweep hit the WAL-reset stage");
}

#[test]
fn delta_chain_recovers_across_reopen_and_continues() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.checkpoint().unwrap(); // base, freezes the geometry
    assert_eq!(
        db.last_checkpoint_stats().unwrap().kind,
        CheckpointKind::Base
    );
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    db.checkpoint().unwrap(); // one dirty extent of two → delta
    assert_eq!(
        db.last_checkpoint_stats().unwrap().kind,
        CheckpointKind::Delta
    );
    assert!(io.peek(&store_path(&dir(), &delta_file(1))).is_some());
    db.insert("Paper", vec![v("P3"), None]).unwrap(); // WAL-only tail
    let want = db.state().clone();
    drop(db);

    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    let r = db2.recovery_report().unwrap();
    assert_eq!(r.snapshot_format, 2, "recovered from a v2 paged chain");
    assert_eq!(r.deltas_merged, 1);
    assert_eq!(r.units_replayed, 1, "only the post-delta statement");
    assert_eq!(r.checkpoint.unwrap().0, 2, "chain head epoch = base + 1");

    // The chain continues where it left off: the next delta is d2.
    let mut db2 = db2;
    db2.insert("Paper", vec![v("P4"), None]).unwrap();
    db2.checkpoint().unwrap();
    assert_eq!(
        db2.last_checkpoint_stats().unwrap().kind,
        CheckpointKind::Delta
    );
    assert!(io.peek(&store_path(&dir(), &delta_file(2))).is_some());
    let want2 = db2.state().clone();
    drop(db2);
    let db3 = open(&io, always());
    assert_eq!(db3.state(), &want2);
    assert_eq!(db3.recovery_report().unwrap().deltas_merged, 2);
}

#[test]
fn checkpoint_full_collapses_the_chain() {
    let io = Arc::new(FaultyIo::new());
    let mut db = open(&io, always());
    db.insert("Paper", vec![v("P1"), v("A1")]).unwrap();
    db.checkpoint().unwrap();
    db.insert("Paper", vec![v("P2"), None]).unwrap();
    db.checkpoint().unwrap();
    assert!(io.peek(&store_path(&dir(), &delta_file(1))).is_some());

    db.insert("Paper", vec![v("P3"), None]).unwrap();
    db.checkpoint_full().unwrap();
    let stats = db.last_checkpoint_stats().unwrap();
    assert_eq!(stats.kind, CheckpointKind::Base);
    assert_eq!(stats.extents_written, stats.extents_total);
    assert!(
        io.peek(&store_path(&dir(), &delta_file(1))).is_none(),
        "full checkpoint garbage-collected the old chain"
    );
    let want = db.state().clone();
    drop(db);
    let db2 = open(&io, always());
    assert_eq!(db2.state(), &want);
    assert_eq!(db2.recovery_report().unwrap().deltas_merged, 0);
}

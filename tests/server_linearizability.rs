//! Concurrent-session linearizability property (satellite of ISSUE 10).
//!
//! N client threads fire generated write plans at a running server. Every
//! acknowledged write carries the global commit sequence number the
//! pipeline assigned it. Replaying exactly the acknowledged operations,
//! in sequence order, through a fresh single-threaded embedded
//! [`Database`] oracle must reproduce the server's final state
//! byte-for-byte — i.e. the concurrent history is equivalent to *some*
//! serial one, and `seq` names it.

use ridl_brm::{DataType, Value};
use ridl_engine::{Database, Pred};
use ridl_relational::{Column, RelConstraintKind, RelSchema, Table};
use ridl_server::json::{obj, Json};
use ridl_server::{Client, Server, ServerConfig};

use proptest::prelude::*;

fn sample_schema() -> RelSchema {
    let mut s = RelSchema::new("conf");
    let d = s.domain("D", DataType::Char(24));
    let paper = s.add_table(Table::new(
        "Paper",
        vec![
            Column::not_null("Paper_Id", d),
            Column::nullable("Program_Id", d),
        ],
    ));
    s.add_named(RelConstraintKind::PrimaryKey {
        table: paper,
        cols: vec![0],
    });
    s
}

/// One generated client operation. Shared keys (`S<k>`) deliberately
/// collide across threads so inserts race on the primary key and
/// update/delete interleave on the same rows.
#[derive(Clone, Debug)]
enum Op {
    InsertOwn(usize),
    InsertShared(usize),
    UpdateShared(usize, u8),
    DeleteShared(usize),
}

impl Op {
    fn request(&self, thread: usize) -> Json {
        let key = |op: &Op| match op {
            Op::InsertOwn(i) => format!("T{thread}-{i}"),
            Op::InsertShared(k) | Op::UpdateShared(k, _) | Op::DeleteShared(k) => {
                format!("S{k}")
            }
        };
        match self {
            Op::InsertOwn(_) | Op::InsertShared(_) => obj([
                ("cmd", Json::str("insert")),
                ("table", Json::str("Paper")),
                ("row", Json::Arr(vec![Json::str(key(self)), Json::Null])),
            ]),
            Op::UpdateShared(_, v) => obj([
                ("cmd", Json::str("update")),
                ("table", Json::str("Paper")),
                (
                    "where",
                    Json::Arr(vec![obj([
                        ("col", Json::str("Paper_Id")),
                        ("eq", Json::str(key(self))),
                    ])]),
                ),
                (
                    "set",
                    Json::Arr(vec![Json::Arr(vec![
                        Json::str("Program_Id"),
                        Json::str(format!("G{v}")),
                    ])]),
                ),
            ]),
            Op::DeleteShared(_) => obj([
                ("cmd", Json::str("delete")),
                ("table", Json::str("Paper")),
                (
                    "where",
                    Json::Arr(vec![obj([
                        ("col", Json::str("Paper_Id")),
                        ("eq", Json::str(key(self))),
                    ])]),
                ),
            ]),
        }
    }

    /// Applies this operation to the oracle. Only called for operations
    /// the server acknowledged, so failures here are verdicts: the
    /// server committed something the serial order rejects.
    fn apply(&self, thread: usize, oracle: &mut Database) -> Result<(), String> {
        let shared = |k: &usize| format!("S{k}");
        match self {
            Op::InsertOwn(i) => oracle
                .insert(
                    "Paper",
                    vec![Some(Value::str(format!("T{thread}-{i}"))), None],
                )
                .map(|_| ())
                .map_err(|e| e.to_string()),
            Op::InsertShared(k) => oracle
                .insert("Paper", vec![Some(Value::str(shared(k))), None])
                .map(|_| ())
                .map_err(|e| e.to_string()),
            Op::UpdateShared(k, v) => oracle
                .update_where(
                    "Paper",
                    &[Pred::Eq("Paper_Id".into(), Value::str(shared(k)))],
                    &[("Program_Id", Some(Value::str(format!("G{v}"))))],
                )
                .map(|_| ())
                .map_err(|e| e.to_string()),
            Op::DeleteShared(k) => oracle
                .delete_where(
                    "Paper",
                    &[Pred::Eq("Paper_Id".into(), Value::str(shared(k)))],
                )
                .map(|_| ())
                .map_err(|e| e.to_string()),
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64).prop_map(Op::InsertOwn),
        (0usize..6).prop_map(Op::InsertShared),
        ((0usize..6), (0u8..10)).prop_map(|(k, v)| Op::UpdateShared(k, v)),
        (0usize..6).prop_map(Op::DeleteShared),
    ]
}

fn run_history(plans: Vec<Vec<Op>>) -> Result<(), TestCaseError> {
    let server = Server::start(
        Database::create(sample_schema()).unwrap(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.addr().to_string();

    // Fire every plan from its own client thread, keeping the commit
    // sequence number of each acknowledged write.
    let handles: Vec<_> = plans
        .into_iter()
        .enumerate()
        .map(|(t, plan)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let mut acked: Vec<(i64, usize, Op)> = Vec::new();
                for op in plan {
                    let r = c.request(op.request(t)).unwrap();
                    if Client::is_ok(&r) {
                        let seq = r.get("seq").and_then(Json::as_i64).unwrap();
                        acked.push((seq, t, op));
                    }
                }
                acked
            })
        })
        .collect();
    let mut history: Vec<(i64, usize, Op)> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let final_db = server.shutdown().unwrap();

    // Sequence numbers name a total order with no duplicates.
    history.sort_by_key(|(seq, _, _)| *seq);
    for pair in history.windows(2) {
        prop_assert!(
            pair[0].0 < pair[1].0,
            "duplicate commit sequence {}",
            pair[0].0
        );
    }

    // Replaying acknowledged writes in sequence order through the
    // embedded oracle reproduces the server's final state exactly.
    let mut oracle = Database::create(sample_schema()).unwrap();
    for (seq, thread, op) in &history {
        if let Err(e) = op.apply(*thread, &mut oracle) {
            return Err(TestCaseError::fail(format!(
                "seq {seq} ({op:?} from thread {thread}) was acknowledged \
                 but fails in serial replay: {e}"
            )));
        }
    }
    prop_assert!(
        oracle.state() == final_db.state(),
        "serial replay of {} acknowledged writes diverges from the \
         server's final state ({} rows vs {} rows)",
        history.len(),
        oracle.state().num_rows(),
        final_db.state().num_rows()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The server's concurrent history is linearizable: acknowledged
    /// writes replayed in commit-sequence order reproduce the final state.
    #[test]
    fn concurrent_sessions_are_linearizable(
        plans in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 10..30),
            3..6,
        )
    ) {
        run_history(plans)?;
    }
}

//! Experiment **E-F6**: the four state-equivalent relational schemas of the
//! paper's figure 6, generated with different mapping option combinations.
//!
//! The visible parts of the figure pin Alternatives 3 and 4 exactly (table
//! layouts, bracketed nullable columns, the `C_EQ$` equality view, the
//! `C_DE$`/`C_EE$` checks); Alternatives 1 and 2 are pinned by the option
//! semantics of §4.2.1 (`NULL NOT ALLOWED` ⇒ no nullable column anywhere,
//! "a large number of small tables").

use ridl_core::{MappingOptions, NullOption, SublinkOption, Workbench};
use ridl_relational::RelConstraintKind;
use ridl_workloads::fig6;

fn wb() -> Workbench {
    Workbench::new(fig6::schema())
}

fn invited_sublink(s: &ridl_brm::Schema) -> ridl_brm::SublinkId {
    let inv = s.object_type_by_name("Invited_Paper").unwrap();
    s.sublinks()
        .find(|(_, sl)| sl.sub == inv)
        .map(|(sid, _)| sid)
        .unwrap()
}

fn col_names(out: &ridl_core::MappingOutput, table: &str) -> Vec<(String, bool)> {
    let tid = out.rel.table_by_name(table).unwrap_or_else(|| {
        panic!(
            "table {table} missing; have {:?}",
            out.rel.tables.iter().map(|t| &t.name).collect::<Vec<_>>()
        )
    });
    out.rel
        .table(tid)
        .columns
        .iter()
        .map(|c| (c.name.clone(), c.nullable))
        .collect()
}

/// Alternative 1: `NULL NOT ALLOWED` + `SUBOT & SUPOT SEPARATE`.
#[test]
fn alternative_1_null_not_allowed_separate() {
    let wb = wb();
    let out = wb
        .map(
            &MappingOptions::new()
                .with_nulls(NullOption::NullNotAllowed)
                .with_sublinks(SublinkOption::Separate),
        )
        .unwrap();
    // No nullable column anywhere.
    assert_eq!(out.nullable_column_count(), 0);
    // "A large number of small tables": strictly more tables than the
    // default option produces.
    let default_out = wb.map(&MappingOptions::new()).unwrap();
    assert!(
        out.table_count() > default_out.table_count(),
        "A1 {} vs default {}",
        out.table_count(),
        default_out.table_count()
    );
    // The optional submission-date fact was exiled to its own relation.
    assert!(out.rel.table_by_name("paper_submitted").is_some());
    // The optional presenter fact likewise.
    assert!(out.rel.table_by_name("pp_presenter").is_some());
    // Program_Paper pairs with Paper through a link table, not a nullable
    // `_Is` column.
    assert!(out.rel.table_by_name("Program_Paper_is_Paper").is_some());
    // The generated schema has well-formed internal references.
    assert!(out.rel.check_ids().is_empty(), "{:?}", out.rel.check_ids());
}

/// Alternative 2: defaults — `SUBOT & SUPOT SEPARATE`, nulls by constraints.
#[test]
fn alternative_2_default_separate() {
    let out = wb().map(&MappingOptions::new()).unwrap();
    // Paper(Paper_Id, Title_of, [Date_of_submission], [Paper_ProgramId_Is]).
    let paper = col_names(&out, "Paper");
    assert_eq!(
        paper,
        vec![
            ("Paper_Id".to_owned(), false),
            ("Title_of".to_owned(), false),
            ("Date_of_submission".to_owned(), true),
            ("Paper_ProgramId_Is".to_owned(), true),
        ],
        "{paper:?}"
    );
    // Program_Paper(Paper_ProgramId, Session_comprising, [Person_presenting]).
    let pp = col_names(&out, "Program_Paper");
    assert_eq!(
        pp,
        vec![
            ("Paper_ProgramId".to_owned(), false),
            ("Session_comprising".to_owned(), false),
            ("Person_presenting".to_owned(), true),
        ],
        "{pp:?}"
    );
    // Invited_Paper: a single-column sub-relation keyed by Paper_Id.
    let inv = col_names(&out, "Invited_Paper");
    assert_eq!(inv, vec![("Paper_Id".to_owned(), false)]);
    // FK Program_Paper.Paper_ProgramId -> Paper.Paper_ProgramId_Is.
    let pp_tid = out.rel.table_by_name("Program_Paper").unwrap();
    let paper_tid = out.rel.table_by_name("Paper").unwrap();
    let fk = out.rel.foreign_keys_of(pp_tid);
    assert!(
        fk.iter().any(|c| matches!(&c.kind,
            RelConstraintKind::ForeignKey { ref_table, ref_cols, .. }
                if *ref_table == paper_tid && out.rel.col_names(paper_tid, ref_cols) == vec!["Paper_ProgramId_Is"])),
        "{fk:?}"
    );
    // The equality view (lossless rule, C_EQ$) ties the two.
    assert!(out
        .rel
        .constraints
        .iter()
        .any(|c| c.name.starts_with("C_EQ$")));
}

/// Alternative 3: like 2, plus `SUBOT INDICATOR FOR SUPOT` override for the
/// fact-less Invited_Paper subtype — reproducing the figure's
/// `Is_Invited_Paper` column and the `C_EQ$_3` equality view exactly.
#[test]
fn alternative_3_indicator_for_invited() {
    let wb = wb();
    let sl = invited_sublink(wb.schema());
    let out = wb
        .map(&MappingOptions::new().override_sublink(sl, SublinkOption::IndicatorForSupot))
        .unwrap();
    // Paper(Paper_Id, Title_of, [Date_of_submission], Is_Invited_Paper,
    //       [Paper_ProgramId_Is]) — bracketed = nullable, as in the figure.
    let paper = col_names(&out, "Paper");
    assert_eq!(
        paper,
        vec![
            ("Paper_Id".to_owned(), false),
            ("Title_of".to_owned(), false),
            ("Date_of_submission".to_owned(), true),
            ("Is_Invited_Paper".to_owned(), false),
            ("Paper_ProgramId_Is".to_owned(), true),
        ],
        "{paper:?}"
    );
    // No Invited_Paper table: the indicator replaced it.
    assert!(out.rel.table_by_name("Invited_Paper").is_none());
    // Program_Paper(Paper_ProgramId, Session_comprising, [Person_presenting]).
    let pp = col_names(&out, "Program_Paper");
    assert_eq!(
        pp,
        vec![
            ("Paper_ProgramId".to_owned(), false),
            ("Session_comprising".to_owned(), false),
            ("Person_presenting".to_owned(), true),
        ]
    );
    // The paper's EQUALITY VIEW CONSTRAINT between Program_Paper's key and
    // Paper's non-null Paper_ProgramId_Is.
    let eq = out
        .rel
        .constraints
        .iter()
        .find(|c| c.name.starts_with("C_EQ$"))
        .expect("equality view present");
    if let RelConstraintKind::EqualityView { left, right } = &eq.kind {
        let pp_tid = out.rel.table_by_name("Program_Paper").unwrap();
        let paper_tid = out.rel.table_by_name("Paper").unwrap();
        assert_eq!(left.table, pp_tid);
        assert_eq!(
            out.rel.col_names(pp_tid, &left.cols),
            vec!["Paper_ProgramId"]
        );
        assert_eq!(right.table, paper_tid);
        assert_eq!(
            out.rel.col_names(paper_tid, &right.cols),
            vec!["Paper_ProgramId_Is"]
        );
        assert_eq!(
            out.rel.col_names(paper_tid, &right.not_null),
            vec!["Paper_ProgramId_Is"]
        );
    } else {
        panic!("wrong kind: {eq:?}");
    }
}

/// Alternative 4: `SUBOT & SUPOT TOGETHER` — everything in one Paper table
/// with the figure's `C_DE$` (dependent existence) and `C_EE$` (equal
/// existence) checks.
#[test]
fn alternative_4_together() {
    let out = wb()
        .map(&MappingOptions::new().with_sublinks(SublinkOption::Together))
        .unwrap();
    // One table only.
    assert_eq!(out.table_count(), 1, "{:?}", out.rel.tables);
    let paper = col_names(&out, "Paper");
    assert_eq!(
        paper,
        vec![
            ("Paper_Id".to_owned(), false),
            ("Title_of".to_owned(), false),
            ("Date_of_submission".to_owned(), true),
            ("Paper_ProgramId_with".to_owned(), true),
            ("Session_comprising".to_owned(), true),
            ("Person_presenting".to_owned(), true),
            ("Is_Invited_Paper".to_owned(), false),
        ],
        "{paper:?}"
    );
    // C_EE$: Paper_ProgramId_with and Session_comprising exist together.
    let paper_tid = out.rel.table_by_name("Paper").unwrap();
    let ee = out
        .rel
        .constraints
        .iter()
        .find(|c| c.name.starts_with("C_EE$"))
        .expect("equal existence present");
    if let RelConstraintKind::EqualExistence { table, cols } = &ee.kind {
        assert_eq!(*table, paper_tid);
        assert_eq!(
            out.rel.col_names(paper_tid, cols),
            vec!["Paper_ProgramId_with", "Session_comprising"]
        );
    } else {
        panic!("wrong kind: {ee:?}");
    }
    // C_DE$: Person_presenting requires Paper_ProgramId_with.
    let de = out
        .rel
        .constraints
        .iter()
        .find(|c| c.name.starts_with("C_DE$"))
        .expect("dependent existence present");
    if let RelConstraintKind::DependentExistence {
        table,
        dependent,
        on,
    } = &de.kind
    {
        assert_eq!(*table, paper_tid);
        assert_eq!(
            out.rel.table(paper_tid).column(*dependent).name,
            "Person_presenting"
        );
        assert_eq!(
            out.rel.table(paper_tid).column(*on).name,
            "Paper_ProgramId_with"
        );
    } else {
        panic!("wrong kind: {de:?}");
    }
    // The nullable Paper_ProgramId_with is a candidate key (dotted in the
    // figure).
    assert!(out.rel.constraints.iter().any(|c| matches!(&c.kind,
        RelConstraintKind::CandidateKey { table, cols }
            if *table == paper_tid
                && out.rel.col_names(paper_tid, cols) == vec!["Paper_ProgramId_with"])));
}

/// All four alternatives accept the same sample state through the state map
/// and are valid under their own constraints — they are *state equivalent*
/// realisations of one conceptual schema (§4.1).
#[test]
fn all_alternatives_accept_the_sample_population() {
    let wb = wb();
    let sl = invited_sublink(wb.schema());
    let pop = fig6::population(wb.schema());
    let option_sets = vec![
        MappingOptions::new().with_nulls(NullOption::NullNotAllowed),
        MappingOptions::new(),
        MappingOptions::new().override_sublink(sl, SublinkOption::IndicatorForSupot),
        MappingOptions::new().with_sublinks(SublinkOption::Together),
    ];
    for (i, opts) in option_sets.into_iter().enumerate() {
        let out = wb.map(&opts).unwrap();
        let st = ridl_core::state_map::map_population(&out.schema, &out, &pop)
            .unwrap_or_else(|e| panic!("alternative {}: {e}", i + 1));
        let violations = ridl_relational::validate(&out.rel, &st);
        assert!(
            violations.is_empty(),
            "alternative {}: {:?}",
            i + 1,
            &violations[..violations.len().min(5)]
        );
        // And the state maps back to an equivalent population.
        let back = ridl_core::state_map::unmap_state(&out.schema, &out, &st).unwrap();
        assert!(
            ridl_core::state_map::equivalent(&out.schema, &out, &pop, &back).unwrap(),
            "alternative {} round trip",
            i + 1
        );
    }
}

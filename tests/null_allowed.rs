//! The distinctive `NULL ALLOWED` behaviour (§4.2.1): "Some NOLOTS may only
//! have a non-homogenous lexical representation type. The entities of such a
//! NOLOT are distinguishable but there is no overall unique identification
//! function that applies to all of them. … To keep information on such a
//! non-homogenously referencible NOLOT into one relation …, we have to allow
//! null values in the 'primary keys'."

use ridl_brm::builder::SchemaBuilder;
use ridl_brm::{DataType, Population, Schema, Side, Value};
use ridl_core::state_map::map_population;
use ridl_core::{MappingOptions, NullOption, Workbench};
use ridl_relational::RelConstraintKind;

/// A Product identifiable EITHER by an internal code OR by a legacy serial
/// number — some products have one, some the other, some both; neither
/// identification is total.
fn schema() -> Schema {
    let mut b = SchemaBuilder::new("catalog");
    b.nolot("Product").unwrap();
    b.lot("Internal_Code", DataType::Char(8)).unwrap();
    b.fact(
        "coded",
        ("has_code", "Product"),
        ("code_of", "Internal_Code"),
    )
    .unwrap();
    b.unique("coded", Side::Left).unwrap();
    b.unique("coded", Side::Right).unwrap();
    b.lot("Serial_No", DataType::Numeric(6, 0)).unwrap();
    b.fact(
        "serialed",
        ("has_serial", "Product"),
        ("serial_of", "Serial_No"),
    )
    .unwrap();
    b.unique("serialed", Side::Left).unwrap();
    b.unique("serialed", Side::Right).unwrap();
    // Every product is referable by at least one of the two.
    b.total_union(
        "Product",
        &[("coded", Side::Left), ("serialed", Side::Left)],
    )
    .unwrap();
    b.lot("Label", DataType::VarChar(30)).unwrap();
    b.fact("labeled", ("labelled", "Product"), ("label_of", "Label"))
        .unwrap();
    b.unique("labeled", Side::Left).unwrap();
    b.total_role("labeled", Side::Left).unwrap();
    b.finish().unwrap()
}

fn population(s: &Schema) -> Population {
    let coded = s.fact_type_by_name("coded").unwrap();
    let serialed = s.fact_type_by_name("serialed").unwrap();
    let labeled = s.fact_type_by_name("labeled").unwrap();
    let mut p = Population::new();
    let e = Value::entity;
    // Product 1: code only. Product 2: serial only. Product 3: both.
    p.add_fact_closed(s, coded, e(1), Value::str("C-1"));
    p.add_fact_closed(s, serialed, e(2), Value::Int(100200));
    p.add_fact_closed(s, coded, e(3), Value::str("C-3"));
    p.add_fact_closed(s, serialed, e(3), Value::Int(100300));
    p.add_fact_closed(s, labeled, e(1), Value::str("Widget"));
    p.add_fact_closed(s, labeled, e(2), Value::str("Gadget"));
    p.add_fact_closed(s, labeled, e(3), Value::str("Gizmo"));
    p
}

#[test]
fn non_referable_without_null_allowed() {
    let wb = Workbench::new(schema());
    // RIDL-A flags Product: no total reference scheme.
    assert!(!wb.analysis().is_mappable());
    assert!(wb
        .analysis()
        .referability
        .iter()
        .any(|f| f.code == "NON-REFERABLE" && f.message.contains("Product")));
    let err = wb.map(&MappingOptions::new()).unwrap_err();
    assert!(err.message.contains("RIDL-A"));
}

/// `NULL ALLOWED` maps the non-homogeneous NOLOT into one relation with
/// nullable reference groups, per-group candidate keys and the `C_CX$`
/// cover-existence rule.
#[test]
fn null_allowed_maps_with_nullable_keys() {
    let s = schema();
    let analysis = ridl_analyzer::reference::infer(&s);
    let out = ridl_core::map_schema(
        &s,
        &analysis,
        &MappingOptions::new().with_nulls(NullOption::NullAllowed),
    )
    .unwrap();
    let product = out.rel.table_by_name("Product").unwrap();
    let table = out.rel.table(product);
    // Both reference columns exist and are nullable.
    let code = table.column_by_name("Internal_Code_code_of").unwrap();
    let serial = table.column_by_name("Serial_No_serial_of").unwrap();
    assert!(table.column(code).nullable);
    assert!(table.column(serial).nullable);
    // Per-group candidate keys plus the cover-existence rule.
    let cks = out
        .rel
        .constraints
        .iter()
        .filter(|c| matches!(&c.kind, RelConstraintKind::CandidateKey { table: t, .. } if *t == product))
        .count();
    assert!(cks >= 2, "{:?}", out.rel.constraints);
    assert!(out
        .rel
        .constraints
        .iter()
        .any(|c| c.name.starts_with("C_CX$")));

    // The state map fills exactly the available identifications and the
    // result satisfies every constraint including the cover rule.
    let pop = population(&out.schema);
    let st = map_population(&out.schema, &out, &pop).unwrap();
    let violations = ridl_relational::validate(&out.rel, &st);
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(st.rows(product).len(), 3);
    let nulls_in_keys = st
        .rows(product)
        .iter()
        .filter(|r| r[code as usize].is_none() || r[serial as usize].is_none())
        .count();
    assert_eq!(nulls_in_keys, 2, "products 1 and 2 have a partial key");

    // A row with neither identification violates the cover rule.
    let mut db = ridl_engine::Database::create(out.rel.clone()).unwrap();
    db.load_state(st).unwrap();
    let mut row = vec![None; table.arity()];
    if let Some(lbl) = table.column_by_name("Label_label_of") {
        row[lbl as usize] = Some(Value::str("Phantom"));
    }
    let err = db.insert("Product", row);
    assert!(err.is_err(), "uncovered row accepted");
}

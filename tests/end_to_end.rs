//! Experiment **E-ENGINE**: the full RIDL\* pipeline, end to end.
//!
//! Text (the RIDL-G substitute) → meta-database → RIDL-A → RIDL-M →
//! relational engine. The generated constraints are *executed*: updates
//! that would break the redundancy-control rules are rejected, and the
//! forwards-map SELECTs reconstruct the conceptual facts from the stored
//! state — the workflow the paper's map report promises to application
//! programmers (§4.3).

use ridl_brm::Value;
use ridl_core::state_map::map_population;
use ridl_core::{MappingOptions, SublinkOption, Workbench};
use ridl_engine::{Database, Pred, Query};
use ridl_metadb::MetaDb;
use ridl_workloads::fig6;

fn v(s: &str) -> Option<Value> {
    Some(Value::str(s))
}

/// Text → meta-db → analyze → map → engine: the whole workbench.
#[test]
fn pipeline_from_text_to_running_database() {
    let src = r#"
SCHEMA tiny;
NOLOT Person;
LOT Name : CHAR(30);
LOT-NOLOT Age : NUMERIC(3);
FACT named ( has : Person , of : Name );
FACT aged ( is : Person , of_age : Age );
UNIQUE named.LEFT;
UNIQUE named.RIGHT;
TOTAL Person IN named.LEFT;
UNIQUE aged.LEFT;
"#;
    let schema = ridl_lang::parse(src).unwrap();

    // Store and reload through the meta-database.
    let mut meta = MetaDb::new();
    meta.store(&schema).unwrap();
    let schema = meta.load("tiny").unwrap();

    // Analyze and map.
    let wb = Workbench::new(schema);
    assert!(wb.analysis().is_mappable(), "{}", wb.analysis().render());
    let out = wb.map(&MappingOptions::new()).unwrap();

    // Execute the generated DDL in the engine and use it.
    let mut db = Database::create(out.rel.clone()).unwrap();
    db.insert("Person", vec![v("Olga"), Some(Value::Int(30))])
        .unwrap();
    db.insert("Person", vec![v("Robert"), None]).unwrap();
    // Key violation rejected.
    assert!(db.insert("Person", vec![v("Olga"), None]).is_err());
    let rows = db.select(&Query::from("Person").select(&["Name"])).unwrap();
    assert_eq!(rows.len(), 2);
}

/// The indicator option's conditional equality actually controls the
/// redundancy: flipping the indicator without the sub-relation row is
/// rejected by the engine.
#[test]
fn indicator_redundancy_is_policed() {
    let wb = Workbench::new(fig6::schema());
    let inv = wb.schema().object_type_by_name("Invited_Paper").unwrap();
    let pp = wb.schema().object_type_by_name("Program_Paper").unwrap();
    let sl_inv = wb
        .schema()
        .sublinks()
        .find(|(_, s)| s.sub == inv)
        .map(|(sid, _)| sid)
        .unwrap();
    let sl_pp = wb
        .schema()
        .sublinks()
        .find(|(_, s)| s.sub == pp)
        .map(|(sid, _)| sid)
        .unwrap();
    let out = wb
        .map(
            &MappingOptions::new()
                .override_sublink(sl_inv, SublinkOption::IndicatorForSupot)
                .override_sublink(sl_pp, SublinkOption::IndicatorForSupot),
        )
        .unwrap();
    let mut db = Database::create(out.rel.clone()).unwrap();
    let pop = fig6::population(&out.schema);
    let st = map_population(&out.schema, &out, &pop).unwrap();
    db.load_state(st).unwrap();

    // Paper P3 is not a program paper. Claiming it is (indicator TRUE)
    // without a Program_Paper row violates the conditional equality.
    let err = db.update_where(
        "Paper",
        &[Pred::Eq("Paper_Id".into(), Value::str("P3"))],
        &[("Is_Program_Paper", Some(Value::Bool(true)))],
    );
    assert!(err.is_err(), "indicator drift accepted");

    // Deleting a Program_Paper row while Paper still points at it breaks
    // the C_EQ$ lossless rule.
    let err = db.delete_where(
        "Program_Paper",
        &[Pred::Eq("Paper_ProgramId".into(), Value::str("A1"))],
    );
    assert!(err.is_err(), "equality view drift accepted");
}

/// The forwards-map SELECTs reconstruct the conceptual facts.
#[test]
fn forwards_map_selects_recover_facts() {
    let wb = Workbench::new(fig6::schema());
    let out = wb.map(&MappingOptions::new()).unwrap();
    let mut db = Database::create(out.rel.clone()).unwrap();
    let pop = fig6::population(&out.schema);
    db.load_state(map_population(&out.schema, &out, &pop).unwrap())
        .unwrap();

    // The presenter fact: one pair in the population, one row from the map.
    let pres = out.schema.fact_type_by_name("pp_presenter").unwrap();
    let sel = out
        .role_selection(ridl_brm::RoleRef::new(pres, ridl_brm::Side::Right))
        .unwrap();
    let rows = db.select_selection(&sel);
    assert_eq!(rows, vec![vec![v("De Troyer")]]);

    // The title fact: three pairs.
    let titled = out.schema.fact_type_by_name("paper_title").unwrap();
    let sel = out
        .role_selection(ridl_brm::RoleRef::new(titled, ridl_brm::Side::Right))
        .unwrap();
    assert_eq!(db.select_selection(&sel).len(), 3);

    // Membership of Program_Paper through the membership selection.
    let sl = out
        .schema
        .sublinks()
        .find(|(_, s)| out.schema.ot_name(s.sub) == "Program_Paper")
        .map(|(sid, _)| sid)
        .unwrap();
    let memb = out.membership_selection(&out.schema, sl).unwrap();
    assert_eq!(db.select_selection(&memb).len(), 2);
}

/// Equal-existence under TOGETHER is enforced on live updates.
#[test]
fn together_equal_existence_is_policed() {
    let wb = Workbench::new(fig6::schema());
    let out = wb
        .map(&MappingOptions::new().with_sublinks(SublinkOption::Together))
        .unwrap();
    let mut db = Database::create(out.rel.clone()).unwrap();
    db.load_state(map_population(&out.schema, &out, &fig6::population(&out.schema)).unwrap())
        .unwrap();
    // Setting a session without a program id breaks C_EE$.
    let err = db.update_where(
        "Paper",
        &[Pred::Eq("Paper_Id".into(), Value::str("P3"))],
        &[("Session_comprising", Some(Value::Int(9)))],
    );
    assert!(err.is_err());
    // Setting a presenter without membership breaks C_DE$.
    let err = db.update_where(
        "Paper",
        &[Pred::Eq("Paper_Id".into(), Value::str("P3"))],
        &[("Person_presenting", v("Ghost"))],
    );
    assert!(err.is_err());
    // Proper membership (both mandatory columns) is accepted.
    db.update_where(
        "Paper",
        &[Pred::Eq("Paper_Id".into(), Value::str("P3"))],
        &[
            ("Paper_ProgramId_with", v("A3")),
            ("Session_comprising", Some(Value::Int(9))),
        ],
    )
    .unwrap();
}

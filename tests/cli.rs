//! End-to-end tests of the `ridl` command-line interface.

use std::io::Write;
use std::process::{Command, Stdio};

const SCHEMA: &str = r#"
SCHEMA demo;
NOLOT Paper;
NOLOT Program_Paper;
SUBTYPE Program_Paper OF Paper;
LOT Paper_Id : CHAR(6);
LOT Paper_ProgramId : CHAR(2);
LOT-NOLOT Session : NUMERIC(3);
FACT paper_id ( identified_by : Paper , _ : Paper_Id );
UNIQUE paper_id.LEFT; UNIQUE paper_id.RIGHT; TOTAL Paper IN paper_id.LEFT;
FACT pp_id ( has : Program_Paper , with : Paper_ProgramId );
UNIQUE pp_id.LEFT; UNIQUE pp_id.RIGHT; TOTAL Program_Paper IN pp_id.LEFT;
FACT pp_session ( scheduled_in : Program_Paper , comprising : Session );
UNIQUE pp_session.LEFT; TOTAL Program_Paper IN pp_session.LEFT;
"#;

fn ridl(args: &[&str]) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SCHEMA.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn check_reports_and_succeeds() {
    let (stdout, _, ok) = ridl(&["check", "-"]);
    assert!(ok);
    assert!(stdout.contains("1. CORRECTNESS"));
    assert!(stdout.contains("-- schema is mappable"));
}

#[test]
fn map_emits_oracle_ddl() {
    let (stdout, stderr, ok) = ridl(&["map", "-", "--dialect", "oracle"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("CREATE TABLE Paper"));
    assert!(stdout.contains("CREATE TABLE Program_Paper"));
    assert!(stderr.contains("tables,"));
}

#[test]
fn query_shows_plan_and_join_count() {
    let (stdout, stderr, ok) = ridl(&[
        "query",
        "-",
        "LIST Program_Paper ( has , comprising , identified_by )",
        "--sublinks",
        "separate",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("(1 joins)"), "{stdout}");
    assert!(stdout.contains("JOIN Paper ON"), "{stdout}");
}

#[test]
fn together_compiles_join_free() {
    let (stdout, _, ok) = ridl(&[
        "query",
        "-",
        "LIST Program_Paper ( has , comprising , identified_by )",
        "--sublinks",
        "together",
    ]);
    assert!(ok);
    assert!(stdout.contains("(0 joins)"), "{stdout}");
}

#[test]
fn fmt_round_trips() {
    let (stdout, _, ok) = ridl(&["fmt", "-"]);
    assert!(ok);
    assert!(stdout.contains("SCHEMA demo;"));
    assert!(stdout.contains("SUBTYPE Program_Paper OF Paper;"));
    // The printed schema reparses.
    assert!(ridl_lang::parse(&stdout).is_ok());
}

#[test]
fn profile_reports_timings_and_firings() {
    let (stdout, stderr, ok) = ridl(&["profile", "-"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("analyze"), "{stdout}");
    assert!(stdout.contains("map"), "{stdout}");
    assert!(stdout.contains("firings"), "{stdout}");
    assert!(stdout.contains("tables"), "{stdout}");
}

#[test]
fn query_explain_prints_executed_plan() {
    let (stdout, stderr, ok) = ridl(&[
        "query",
        "-",
        "LIST Program_Paper ( has , comprising , identified_by )",
        "--explain",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("-- executed plan"), "{stdout}");
    assert!(stdout.contains("scan"), "{stdout}");
    assert!(stdout.contains("join"), "{stdout}");
}

#[test]
fn metrics_jsonl_env_appends_events() {
    let path = std::env::temp_dir().join(format!("ridl-cli-metrics-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["profile", "-"])
        .env("RIDL_METRICS_JSONL", &path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SCHEMA.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    let _ = std::fs::remove_file(&path);
    assert!(
        text.lines().any(|l| l.contains("\"metric\"")),
        "no metric events written: {text:?}"
    );
}

#[test]
fn bad_input_fails_with_message() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["check", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"NOT A SCHEMA")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
    let (_, stderr, ok) = ridl(&["frobnicate", "-"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

//! End-to-end tests of the `ridl` command-line interface.

use std::io::Write;
use std::process::{Command, Stdio};

const SCHEMA: &str = r#"
SCHEMA demo;
NOLOT Paper;
NOLOT Program_Paper;
SUBTYPE Program_Paper OF Paper;
LOT Paper_Id : CHAR(6);
LOT Paper_ProgramId : CHAR(2);
LOT-NOLOT Session : NUMERIC(3);
FACT paper_id ( identified_by : Paper , _ : Paper_Id );
UNIQUE paper_id.LEFT; UNIQUE paper_id.RIGHT; TOTAL Paper IN paper_id.LEFT;
FACT pp_id ( has : Program_Paper , with : Paper_ProgramId );
UNIQUE pp_id.LEFT; UNIQUE pp_id.RIGHT; TOTAL Program_Paper IN pp_id.LEFT;
FACT pp_session ( scheduled_in : Program_Paper , comprising : Session );
UNIQUE pp_session.LEFT; TOTAL Program_Paper IN pp_session.LEFT;
"#;

fn ridl(args: &[&str]) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SCHEMA.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn check_reports_and_succeeds() {
    let (stdout, _, ok) = ridl(&["check", "-"]);
    assert!(ok);
    assert!(stdout.contains("1. CORRECTNESS"));
    assert!(stdout.contains("-- schema is mappable"));
}

#[test]
fn map_emits_oracle_ddl() {
    let (stdout, stderr, ok) = ridl(&["map", "-", "--dialect", "oracle"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("CREATE TABLE Paper"));
    assert!(stdout.contains("CREATE TABLE Program_Paper"));
    assert!(stderr.contains("tables,"));
}

#[test]
fn query_shows_plan_and_join_count() {
    let (stdout, stderr, ok) = ridl(&[
        "query",
        "-",
        "LIST Program_Paper ( has , comprising , identified_by )",
        "--sublinks",
        "separate",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("(1 joins)"), "{stdout}");
    assert!(stdout.contains("JOIN Paper ON"), "{stdout}");
}

#[test]
fn together_compiles_join_free() {
    let (stdout, _, ok) = ridl(&[
        "query",
        "-",
        "LIST Program_Paper ( has , comprising , identified_by )",
        "--sublinks",
        "together",
    ]);
    assert!(ok);
    assert!(stdout.contains("(0 joins)"), "{stdout}");
}

#[test]
fn fmt_round_trips() {
    let (stdout, _, ok) = ridl(&["fmt", "-"]);
    assert!(ok);
    assert!(stdout.contains("SCHEMA demo;"));
    assert!(stdout.contains("SUBTYPE Program_Paper OF Paper;"));
    // The printed schema reparses.
    assert!(ridl_lang::parse(&stdout).is_ok());
}

#[test]
fn profile_reports_timings_and_firings() {
    let (stdout, stderr, ok) = ridl(&["profile", "-"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("analyze"), "{stdout}");
    assert!(stdout.contains("map"), "{stdout}");
    assert!(stdout.contains("firings"), "{stdout}");
    assert!(stdout.contains("tables"), "{stdout}");
}

#[test]
fn query_explain_prints_executed_plan() {
    let (stdout, stderr, ok) = ridl(&[
        "query",
        "-",
        "LIST Program_Paper ( has , comprising , identified_by )",
        "--explain",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("-- executed plan"), "{stdout}");
    assert!(stdout.contains("scan"), "{stdout}");
    assert!(stdout.contains("join"), "{stdout}");
}

#[test]
fn metrics_jsonl_env_appends_events() {
    let path = std::env::temp_dir().join(format!("ridl-cli-metrics-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["profile", "-"])
        .env("RIDL_METRICS_JSONL", &path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SCHEMA.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    let _ = std::fs::remove_file(&path);
    assert!(
        text.lines().any(|l| l.contains("\"metric\"")),
        "no metric events written: {text:?}"
    );
}

#[test]
fn trace_prints_span_tree_and_histograms() {
    let (stdout, stderr, ok) = ridl(&["trace", "-"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("-- TRANSFORMATION TRACE"), "{stdout}");
    assert!(stdout.contains("-- SPAN TREE"), "{stdout}");
    assert!(stdout.contains("analyzer.analyze"), "{stdout}");
    assert!(stdout.contains("transform.apply"), "{stdout}");
    assert!(stdout.contains("engine.statement"), "{stdout}");
    assert!(stdout.contains("-- LATENCY HISTOGRAMS"), "{stdout}");
    assert!(stdout.contains("p50"), "{stdout}");
    assert!(stdout.contains("p99"), "{stdout}");
}

#[test]
fn lineage_resolves_tables_columns_and_constraints() {
    let (stdout, stderr, ok) = ridl(&["lineage", "-"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("-- LINEAGE"), "{stdout}");
    assert!(stdout.contains("TABLE Paper"), "{stdout}");
    assert!(stdout.contains("<= NOLOT Paper"), "{stdout}");
    assert!(stdout.contains("-- CONSTRAINT LINEAGE"), "{stdout}");
    assert!(
        !stderr.contains("without a BRM source"),
        "all objects resolve: {stderr}"
    );
    // Filtered to one column.
    let (stdout, stderr, ok) = ridl(&["lineage", "-", "Paper.Paper_Id"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("COLUMN Paper.Paper_Id"), "{stdout}");
    assert!(stdout.contains("<= LOT Paper_Id"), "{stdout}");
    assert!(!stdout.contains("CONSTRAINT LINEAGE"), "{stdout}");
    // An unknown filter says so rather than printing nothing.
    let (stdout, _, ok) = ridl(&["lineage", "-", "Nope.Nothing"]);
    assert!(ok);
    assert!(stdout.contains("no matching table or column"), "{stdout}");
}

#[test]
fn trace_json_env_exports_and_tracecheck_validates() {
    let path = std::env::temp_dir().join(format!("ridl-cli-trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["trace", "-"])
        .env("RIDL_TRACE_JSON", &path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SCHEMA.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("chrome trace written"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The emitted file passes the CLI's own validator.
    let (stdout, stderr, ok) = ridl(&["tracecheck", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("well-formed chrome trace"), "{stdout}");
    // A malformed file is rejected with a nonzero exit.
    let bad = std::env::temp_dir().join(format!("ridl-cli-bad-{}.json", std::process::id()));
    std::fs::write(
        &bad,
        "{\"traceEvents\":[\n{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,\"tid\":1}\n]}",
    )
    .unwrap();
    let (_, stderr, ok) = ridl(&["tracecheck", bad.to_str().unwrap()]);
    let _ = std::fs::remove_file(&bad);
    assert!(!ok);
    assert!(stderr.contains("invalid chrome trace"), "{stderr}");
}

#[test]
fn bad_input_fails_with_message() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["check", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"NOT A SCHEMA")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
    let (_, stderr, ok) = ridl(&["frobnicate", "-"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

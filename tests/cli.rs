//! End-to-end tests of the `ridl` command-line interface.

use std::io::Write;
use std::process::{Command, Stdio};

const SCHEMA: &str = r#"
SCHEMA demo;
NOLOT Paper;
NOLOT Program_Paper;
SUBTYPE Program_Paper OF Paper;
LOT Paper_Id : CHAR(6);
LOT Paper_ProgramId : CHAR(2);
LOT-NOLOT Session : NUMERIC(3);
FACT paper_id ( identified_by : Paper , _ : Paper_Id );
UNIQUE paper_id.LEFT; UNIQUE paper_id.RIGHT; TOTAL Paper IN paper_id.LEFT;
FACT pp_id ( has : Program_Paper , with : Paper_ProgramId );
UNIQUE pp_id.LEFT; UNIQUE pp_id.RIGHT; TOTAL Program_Paper IN pp_id.LEFT;
FACT pp_session ( scheduled_in : Program_Paper , comprising : Session );
UNIQUE pp_session.LEFT; TOTAL Program_Paper IN pp_session.LEFT;
"#;

fn ridl(args: &[&str]) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SCHEMA.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn check_reports_and_succeeds() {
    let (stdout, _, ok) = ridl(&["check", "-"]);
    assert!(ok);
    assert!(stdout.contains("1. CORRECTNESS"));
    assert!(stdout.contains("-- schema is mappable"));
}

#[test]
fn map_emits_oracle_ddl() {
    let (stdout, stderr, ok) = ridl(&["map", "-", "--dialect", "oracle"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("CREATE TABLE Paper"));
    assert!(stdout.contains("CREATE TABLE Program_Paper"));
    assert!(stderr.contains("tables,"));
}

#[test]
fn query_shows_plan_and_join_count() {
    let (stdout, stderr, ok) = ridl(&[
        "query",
        "-",
        "LIST Program_Paper ( has , comprising , identified_by )",
        "--sublinks",
        "separate",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("(1 joins)"), "{stdout}");
    assert!(stdout.contains("JOIN Paper ON"), "{stdout}");
}

#[test]
fn together_compiles_join_free() {
    let (stdout, _, ok) = ridl(&[
        "query",
        "-",
        "LIST Program_Paper ( has , comprising , identified_by )",
        "--sublinks",
        "together",
    ]);
    assert!(ok);
    assert!(stdout.contains("(0 joins)"), "{stdout}");
}

#[test]
fn fmt_round_trips() {
    let (stdout, _, ok) = ridl(&["fmt", "-"]);
    assert!(ok);
    assert!(stdout.contains("SCHEMA demo;"));
    assert!(stdout.contains("SUBTYPE Program_Paper OF Paper;"));
    // The printed schema reparses.
    assert!(ridl_lang::parse(&stdout).is_ok());
}

#[test]
fn profile_reports_timings_and_firings() {
    let (stdout, stderr, ok) = ridl(&["profile", "-"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("analyze"), "{stdout}");
    assert!(stdout.contains("map"), "{stdout}");
    assert!(stdout.contains("firings"), "{stdout}");
    assert!(stdout.contains("tables"), "{stdout}");
}

#[test]
fn query_explain_prints_executed_plan() {
    let (stdout, stderr, ok) = ridl(&[
        "query",
        "-",
        "LIST Program_Paper ( has , comprising , identified_by )",
        "--explain",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("-- executed plan"), "{stdout}");
    assert!(stdout.contains("scan"), "{stdout}");
    assert!(stdout.contains("join"), "{stdout}");
}

#[test]
fn metrics_jsonl_env_appends_events() {
    let path = std::env::temp_dir().join(format!("ridl-cli-metrics-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["profile", "-"])
        .env("RIDL_METRICS_JSONL", &path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SCHEMA.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    let _ = std::fs::remove_file(&path);
    assert!(
        text.lines().any(|l| l.contains("\"metric\"")),
        "no metric events written: {text:?}"
    );
}

#[test]
fn trace_prints_span_tree_and_histograms() {
    let (stdout, stderr, ok) = ridl(&["trace", "-"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("-- TRANSFORMATION TRACE"), "{stdout}");
    assert!(stdout.contains("-- SPAN TREE"), "{stdout}");
    assert!(stdout.contains("analyzer.analyze"), "{stdout}");
    assert!(stdout.contains("transform.apply"), "{stdout}");
    assert!(stdout.contains("engine.statement"), "{stdout}");
    assert!(stdout.contains("-- LATENCY HISTOGRAMS"), "{stdout}");
    assert!(stdout.contains("p50"), "{stdout}");
    assert!(stdout.contains("p99"), "{stdout}");
}

#[test]
fn lineage_resolves_tables_columns_and_constraints() {
    let (stdout, stderr, ok) = ridl(&["lineage", "-"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("-- LINEAGE"), "{stdout}");
    assert!(stdout.contains("TABLE Paper"), "{stdout}");
    assert!(stdout.contains("<= NOLOT Paper"), "{stdout}");
    assert!(stdout.contains("-- CONSTRAINT LINEAGE"), "{stdout}");
    assert!(
        !stderr.contains("without a BRM source"),
        "all objects resolve: {stderr}"
    );
    // Filtered to one column.
    let (stdout, stderr, ok) = ridl(&["lineage", "-", "Paper.Paper_Id"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("COLUMN Paper.Paper_Id"), "{stdout}");
    assert!(stdout.contains("<= LOT Paper_Id"), "{stdout}");
    assert!(!stdout.contains("CONSTRAINT LINEAGE"), "{stdout}");
    // An unknown filter says so rather than printing nothing.
    let (stdout, _, ok) = ridl(&["lineage", "-", "Nope.Nothing"]);
    assert!(ok);
    assert!(stdout.contains("no matching table or column"), "{stdout}");
}

#[test]
fn trace_json_env_exports_and_tracecheck_validates() {
    let path = std::env::temp_dir().join(format!("ridl-cli-trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["trace", "-"])
        .env("RIDL_TRACE_JSON", &path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SCHEMA.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("chrome trace written"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The emitted file passes the CLI's own validator.
    let (stdout, stderr, ok) = ridl(&["tracecheck", path.to_str().unwrap()]);
    let _ = std::fs::remove_file(&path);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("well-formed chrome trace"), "{stdout}");
    // A malformed file is rejected with a nonzero exit.
    let bad = std::env::temp_dir().join(format!("ridl-cli-bad-{}.json", std::process::id()));
    std::fs::write(
        &bad,
        "{\"traceEvents\":[\n{\"name\":\"x\",\"ph\":\"B\",\"ts\":1,\"tid\":1}\n]}",
    )
    .unwrap();
    let (_, stderr, ok) = ridl(&["tracecheck", bad.to_str().unwrap()]);
    let _ = std::fs::remove_file(&bad);
    assert!(!ok);
    assert!(stderr.contains("invalid chrome trace"), "{stderr}");
}

/// Like [`ridl`], but with chosen stdin and the raw exit code.
fn ridl_with_input(args: &[&str], input: &str) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

/// The documented exit-code contract: 1 analysis verdict, 2 usage,
/// 3 missing input, 4 parse error, 5 corrupt artefact — each with a
/// one-line `ridl: …` diagnostic and no panic.
#[test]
fn exit_codes_distinguish_failure_classes() {
    // 2: usage errors — unknown command, unknown flag, missing argument.
    let (_, stderr, code) = ridl_with_input(&["frobnicate"], "");
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.starts_with("ridl: unknown command"), "{stderr}");
    let (_, stderr, code) = ridl_with_input(&["map", "-", "--bogus"], SCHEMA);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.starts_with("ridl: unknown option"), "{stderr}");
    let (_, stderr, code) = ridl_with_input(&["map"], "");
    assert_eq!(code, Some(2), "{stderr}");
    // 3: input file missing or unreadable.
    let (_, stderr, code) = ridl_with_input(&["map", "/no/such/schema.ridl"], "");
    assert_eq!(code, Some(3), "{stderr}");
    assert!(
        stderr.starts_with("ridl: reading /no/such/schema.ridl"),
        "{stderr}"
    );
    assert_eq!(stderr.lines().count(), 1, "one-line diagnostic: {stderr}");
    let (_, stderr, code) = ridl_with_input(&["tracecheck", "/no/such/trace.json"], "");
    assert_eq!(code, Some(3), "{stderr}");
    // 4: the input was read but does not parse.
    let (_, stderr, code) = ridl_with_input(&["map", "-"], "NOT A SCHEMA");
    assert_eq!(code, Some(4), "{stderr}");
    assert!(stderr.contains("parse error"), "{stderr}");
    // 1: analysis verdict — parses, analyses, fails the checks.
    let (stdout, stderr, code) = ridl_with_input(&["check", "-"], "SCHEMA bad;\nNOLOT Orphan;\n");
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("schema has errors"), "{stderr}");
    assert!(stdout.contains("CORRECTNESS"), "{stdout}");
}

#[test]
fn recover_reports_store_state_and_exit_codes() {
    // Build a durable store under the *same* mapped schema the CLI will
    // derive from SCHEMA with default options.
    let schema = ridl_lang::parse(SCHEMA).unwrap();
    let wb = ridl_core::Workbench::new(schema);
    let out = wb.map(&ridl_core::MappingOptions::new()).unwrap();
    let dir = std::env::temp_dir().join(format!("ridl-cli-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = ridl_engine::Database::open(&dir, out.rel.clone()).unwrap();
    db.checkpoint().unwrap();
    drop(db);

    let (stdout, stderr, code) = ridl_with_input(&["recover", "-", dir.to_str().unwrap()], SCHEMA);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("checkpoint: epoch 1"), "{stdout}");
    assert!(stdout.contains("wal:"), "{stdout}");
    assert!(stdout.contains("-- recovered 0 rows"), "{stdout}");
    assert!(stdout.contains("Paper: 0 rows"), "{stdout}");

    // 3: a missing store directory is an input error, not a fresh store.
    let (_, stderr, code) = ridl_with_input(&["recover", "-", "/no/such/store"], SCHEMA);
    assert_eq!(code, Some(3), "{stderr}");
    assert!(stderr.starts_with("ridl: store directory"), "{stderr}");

    // 5: a store written under a different schema is corrupt for this one.
    let other = std::env::temp_dir().join(format!("ridl-cli-store-other-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&other);
    {
        use ridl_relational::{Column, RelSchema, Table};
        let mut s = RelSchema::new("other");
        let d = s.domain("D", ridl_brm::DataType::Char(4));
        s.add_table(Table::new("T", vec![Column::not_null("K", d)]));
        ridl_engine::Database::open(&other, s).unwrap();
    }
    let (_, stderr, code) = ridl_with_input(&["recover", "-", other.to_str().unwrap()], SCHEMA);
    assert_eq!(code, Some(5), "{stderr}");
    assert!(stderr.contains("schema"), "{stderr}");
    assert_eq!(stderr.lines().count(), 1, "one-line diagnostic: {stderr}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&other);
}

#[test]
fn status_inspects_store_offline() {
    let schema = ridl_lang::parse(SCHEMA).unwrap();
    let wb = ridl_core::Workbench::new(schema);
    let out = wb.map(&ridl_core::MappingOptions::new()).unwrap();
    let dir = std::env::temp_dir().join(format!("ridl-cli-status-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = ridl_engine::Database::open(&dir, out.rel.clone()).unwrap();
    db.checkpoint().unwrap();
    drop(db);

    // Human summary: verdict + chain + wal lines, no schema required.
    let (stdout, stderr, code) = ridl_with_input(&["status", dir.to_str().unwrap()], "");
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("verdict: clean"), "{stdout}");
    assert!(stdout.contains("chain: epoch 1"), "{stdout}");
    assert!(stdout.contains("wal: epoch 1"), "{stdout}");

    // Machine-readable form.
    let (stdout, stderr, code) = ridl_with_input(&["status", dir.to_str().unwrap(), "--json"], "");
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("\"verdict\": \"clean\""), "{stdout}");
    assert!(stdout.contains("\"epoch\": 1"), "{stdout}");
    assert!(
        stdout.contains("\"base_file\": \"checkpoint.snap\""),
        "{stdout}"
    );

    // Inspection is read-only: a second run sees the same store.
    let (stdout2, _, code) = ridl_with_input(&["status", dir.to_str().unwrap(), "--json"], "");
    assert_eq!(code, Some(0));
    assert_eq!(stdout, stdout2, "inspection must not mutate the store");

    // 3: a missing store directory is an input error.
    let (_, stderr, code) = ridl_with_input(&["status", "/no/such/store"], "");
    assert_eq!(code, Some(3), "{stderr}");
    assert!(stderr.starts_with("ridl: store directory"), "{stderr}");
    // 2: unknown flag.
    let (_, _, code) = ridl_with_input(&["status", dir.to_str().unwrap(), "--bogus"], "");
    assert_eq!(code, Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_dump_on_recovery_lists_replay_in_order() {
    // A store whose WAL holds committed units not yet checkpointed, so
    // reopening it replays them.
    let schema = ridl_lang::parse(SCHEMA).unwrap();
    let wb = ridl_core::Workbench::new(schema);
    let out = wb.map(&ridl_core::MappingOptions::new()).unwrap();
    let dir = std::env::temp_dir().join(format!("ridl-cli-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = ridl_engine::Database::open(&dir, out.rel.clone()).unwrap();
        let paper = out
            .rel
            .tables()
            .find(|(_, t)| t.name == "Paper")
            .expect("mapped schema has Paper")
            .1
            .clone();
        for r in 0..3 {
            // Fill only NOT NULL columns (short values fit every CHAR
            // domain; distinct per row for the unique key).
            let row: Vec<Option<ridl_brm::Value>> = paper
                .columns
                .iter()
                .enumerate()
                .map(|(c, col)| (!col.nullable).then(|| ridl_brm::Value::str(format!("{r}{c}"))))
                .collect();
            db.insert("Paper", row).unwrap();
        }
        // Drop without a checkpoint: the three commits stay in the WAL.
    }

    let dump = std::env::temp_dir().join(format!("ridl-cli-journal-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&dump);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["recover", "-", dir.to_str().unwrap()])
        .env("RIDL_JOURNAL_JSONL", &dump)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(SCHEMA.as_bytes())
        .unwrap();
    let out2 = child.wait_with_output().unwrap();
    assert!(
        out2.status.success(),
        "{}",
        String::from_utf8_lossy(&out2.stderr)
    );

    let text = std::fs::read_to_string(&dump).expect("journal dump written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].contains("\"kind\":\"journal.meta\""),
        "meta header first: {}",
        lines[0]
    );
    // The replay record: begin, then one event per unit with a strictly
    // increasing unit index, then done — in dump (= sequence) order.
    let begin = lines
        .iter()
        .position(|l| l.contains("\"kind\":\"recover.begin\""));
    let done = lines
        .iter()
        .position(|l| l.contains("\"kind\":\"recover.done\""));
    assert!(begin.is_some() && done.is_some(), "{text}");
    assert!(begin < done, "begin before done");
    let units: Vec<usize> = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"recover.replay\""))
        .map(|l| {
            let pat = "\"unit\":";
            let s = l.find(pat).unwrap() + pat.len();
            l[s..].split([',', '}']).next().unwrap().parse().unwrap()
        })
        .collect();
    assert_eq!(units, vec![0, 1, 2], "replay events in order: {text}");

    // `ridl events` filters the dump by kind prefix and tails it.
    let (stdout, stderr, code) = ridl_with_input(
        &["events", dump.to_str().unwrap(), "--kind", "recover."],
        "",
    );
    assert_eq!(code, Some(0), "{stderr}");
    assert!(
        stdout.lines().count() >= 5,
        "begin + 3 replays + done: {stdout}"
    );
    assert!(
        stdout.lines().all(|l| l.contains("\"kind\":\"recover.")),
        "{stdout}"
    );
    let (stdout, _, code) = ridl_with_input(
        &[
            "events",
            dump.to_str().unwrap(),
            "--kind",
            "recover.",
            "--tail",
            "1",
        ],
        "",
    );
    assert_eq!(code, Some(0));
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
    assert!(stdout.contains("recover.done"), "{stdout}");

    let _ = std::fs::remove_file(&dump);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn events_filters_by_severity_and_reports_errors() {
    let path = std::env::temp_dir().join(format!("ridl-cli-events-{}.jsonl", std::process::id()));
    std::fs::write(
        &path,
        concat!(
            "{\"seq\":0,\"t_ns\":0,\"sev\":\"info\",\"kind\":\"journal.meta\",\"attrs\":{\"events\":4,\"overwritten\":0}}\n",
            "{\"seq\":1,\"t_ns\":10,\"sev\":\"debug\",\"kind\":\"wal.append\",\"attrs\":{\"bytes\":64}}\n",
            "{\"seq\":2,\"t_ns\":20,\"sev\":\"info\",\"kind\":\"ckpt.decision\",\"attrs\":{\"kind\":\"base\"}}\n",
            "{\"seq\":3,\"t_ns\":30,\"sev\":\"warn\",\"kind\":\"wal.rewind\",\"attrs\":{\"ok\":true}}\n",
            "{\"seq\":4,\"t_ns\":40,\"sev\":\"error\",\"kind\":\"wal.poison\"}\n",
        ),
    )
    .unwrap();

    let (stdout, stderr, code) =
        ridl_with_input(&["events", path.to_str().unwrap(), "--min-sev", "warn"], "");
    assert_eq!(code, Some(0), "{stderr}");
    assert_eq!(stdout.lines().count(), 2, "{stdout}");
    assert!(
        stdout.contains("wal.rewind") && stdout.contains("wal.poison"),
        "{stdout}"
    );
    assert!(stderr.contains("2 of 4 event(s) shown"), "{stderr}");

    let (stdout, _, code) =
        ridl_with_input(&["events", path.to_str().unwrap(), "--kind", "wal."], "");
    assert_eq!(code, Some(0));
    assert_eq!(stdout.lines().count(), 3, "{stdout}");

    // 2: bad severity; 3: missing file.
    let (_, stderr, code) =
        ridl_with_input(&["events", path.to_str().unwrap(), "--min-sev", "loud"], "");
    assert_eq!(code, Some(2), "{stderr}");
    let (_, _, code) = ridl_with_input(&["events", "/no/such/journal.jsonl"], "");
    assert_eq!(code, Some(3));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_input_fails_with_message() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["check", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"NOT A SCHEMA")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));
    let (_, stderr, ok) = ridl(&["frobnicate", "-"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

/// `ridl serve` + `ridl client` end to end: a scripted session against a
/// durable store, a protocol-driven shutdown, a `clean` status verdict,
/// and `session.` / `net.` journal kinds filterable via `ridl events`.
#[test]
fn serve_and_client_round_trip_with_session_journal() {
    use std::io::BufRead;
    let dir = std::env::temp_dir().join(format!("ridl-cli-serve-{}", std::process::id()));
    let dump = std::env::temp_dir().join(format!("ridl-cli-serve-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&dump);

    // Serve on an OS-assigned port; the bound address is printed.
    let mut server = Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args([
            "serve",
            "-",
            "--addr",
            "127.0.0.1:0",
            "--dir",
            dir.to_str().unwrap(),
        ])
        .env("RIDL_JOURNAL_JSONL", &dump)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ridl serve");
    // Write the schema and close stdin — `serve -` reads it to EOF.
    let mut stdin = server.stdin.take().unwrap();
    stdin.write_all(SCHEMA.as_bytes()).unwrap();
    drop(stdin);
    let mut stdout = std::io::BufReader::new(server.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .rsplit(" at ")
        .next()
        .expect("bound address in banner")
        .to_string();

    // A scripted client session: write, read back, shut the server down.
    let script = concat!(
        r#"{"id":1,"cmd":"hello","client":"cli-test"}"#,
        "\n",
        r#"{"id":2,"cmd":"insert","table":"Paper","row":["P1",null]}"#,
        "\n",
        r#"{"id":3,"cmd":"query","table":"Paper"}"#,
        "\n",
        r#"{"id":4,"cmd":"shutdown"}"#,
        "\n",
    );
    let (out, err, code) = ridl_with_input(&["client", &addr], script);
    assert_eq!(code, Some(0), "{err}");
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "{out}");
    assert!(
        lines[0].contains("\"tables\":[\"Paper\",\"Program_Paper\"]"),
        "{out}"
    );
    assert!(lines[1].contains("\"seq\":1"), "{out}");
    assert!(lines[2].contains("\"rows\":[[\"P1\",null]]"), "{out}");
    assert!(lines[3].contains("\"stopping\":true"), "{out}");

    let status = server.wait_with_output().unwrap();
    assert!(
        status.status.success(),
        "{}",
        String::from_utf8_lossy(&status.stderr)
    );

    // The protocol shutdown checkpointed: the store inspects as clean.
    let (stdout, stderr, code) = ridl_with_input(&["status", dir.to_str().unwrap(), "--json"], "");
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stdout.contains("\"verdict\": \"clean\""), "{stdout}");

    // The journal recorded the session lifecycle; `--kind session.` and
    // `--kind net.` select exactly those events.
    let (stdout, _, code) = ridl_with_input(
        &["events", dump.to_str().unwrap(), "--kind", "session."],
        "",
    );
    assert_eq!(code, Some(0));
    for kind in ["session.connect", "session.hello", "session.disconnect"] {
        assert!(stdout.contains(kind), "missing {kind}: {stdout}");
    }
    let (stdout, _, code) =
        ridl_with_input(&["events", dump.to_str().unwrap(), "--kind", "net."], "");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("net.listen"), "{stdout}");
    assert!(stdout.contains("net.shutdown"), "{stdout}");

    let _ = std::fs::remove_file(&dump);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Meta-database round trips at scale: the CRIS case and generated schemas
//! store into the engine-backed meta-database and reconstruct exactly; the
//! dictionary views answer over multiple independent schemas (§3.1).

use proptest::prelude::*;

use ridl_brm::Schema;
use ridl_metadb::MetaDb;
use ridl_workloads::synth::{self, GenParams};

fn same(a: &Schema, b: &Schema) -> bool {
    a.num_object_types() == b.num_object_types()
        && a.object_types()
            .zip(b.object_types())
            .all(|((_, x), (_, y))| x == y)
        && a.fact_types()
            .zip(b.fact_types())
            .all(|((_, x), (_, y))| x == y)
        && a.sublinks()
            .zip(b.sublinks())
            .all(|((_, x), (_, y))| x == y)
        && a.num_constraints() == b.num_constraints()
        && a.constraints()
            .zip(b.constraints())
            .all(|((_, x), (_, y))| x.kind == y.kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_schemas_roundtrip(seed in 0u64..100) {
        let s = synth::generate(&GenParams { seed, ..GenParams::default() }).schema;
        let mut m = MetaDb::new();
        m.store(&s).unwrap();
        let loaded = m.load(&s.name).unwrap();
        prop_assert!(same(&s, &loaded), "seed {seed}");
    }
}

#[test]
fn cris_roundtrips_and_maps_identically() {
    let s = ridl_workloads::cris::schema();
    let mut m = MetaDb::new();
    m.store(&s).unwrap();
    let loaded = m.load("cris").unwrap();
    assert!(same(&s, &loaded));
    // The loaded schema passes RIDL-A and maps to the same relational
    // schema as the original.
    let a = ridl_core::Workbench::new(s)
        .map(&ridl_core::MappingOptions::new())
        .unwrap();
    let b = ridl_core::Workbench::new(loaded)
        .map(&ridl_core::MappingOptions::new())
        .unwrap();
    for ((_, ta), (_, tb)) in a.rel.tables().zip(b.rel.tables()) {
        assert_eq!(ta, tb);
    }
}

#[test]
fn dictionary_views_span_schemas() {
    let mut m = MetaDb::new();
    m.store(&ridl_workloads::fig6::schema()).unwrap();
    m.store(&ridl_workloads::cris::schema()).unwrap();
    assert_eq!(m.schema_names(), vec!["cris", "fig6"]);
    let ots = m.view("V_OBJECT_TYPES").unwrap();
    let fig6_count = ridl_workloads::fig6::schema().num_object_types();
    let cris_count = ridl_workloads::cris::schema().num_object_types();
    assert_eq!(ots.len(), fig6_count + cris_count);
    let facts = m.view("V_FACT_TYPES").unwrap();
    assert!(facts.len() > 30);
}

//! The full basic-transformation composition of §4.1, run end to end as an
//! *alternative* to the grouped mapper: binary→binary canonicalisation
//! (LOT-NOLOT expansion, sublink elimination), then the binary→relational
//! pivot — with the state maps chained at every step. This is the "naive"
//! path the paper contrasts with RIDL-M's engineered grouping; both must be
//! lossless, they just differ in the relational shape they produce.

use ridl_brm::population::is_model;
use ridl_brm::{ObjectTypeId, Population, Schema, SublinkId};
use ridl_transform::{
    binary_relational, canonicalize_constraints, EliminateSublink, ExpandLotNolot,
};
use ridl_workloads::fig6;

/// Forward-maps a population through the whole canonical pipeline and back.
#[test]
fn fig6_through_the_canonical_pipeline() {
    let schema0 = fig6::schema();
    let pop0 = fig6::population(&schema0);
    assert!(is_model(&schema0, &pop0));

    // Step 1: expand every LOT-NOLOT (Date, Session, Person).
    let mut schema = schema0.clone();
    let mut pop = pop0.clone();
    let mut expansions = Vec::new();
    loop {
        let Some((oid, _)) = schema.object_types().find(|(_, ot)| ot.kind.is_lot_nolot()) else {
            break;
        };
        let t = ExpandLotNolot { ot: oid };
        let out = t.apply(&schema).unwrap();
        pop = t.map_state(&schema, &out, &pop);
        schema = out.schema.clone();
        expansions.push((t, out));
        assert!(
            is_model(&schema, &pop),
            "state is a model after expanding {oid}"
        );
    }
    assert!(expansions.len() == 3, "Date, Session, Person expanded");

    // Step 2: eliminate both sublinks (fig. 4).
    let mut eliminations = Vec::new();
    while schema.num_sublinks() > 0 {
        let t = EliminateSublink {
            sublink: SublinkId::from_raw(0),
        };
        let out = t.apply(&schema).unwrap();
        pop = t.map_state(&schema, &out, &pop);
        schema = out.schema.clone();
        eliminations.push((t, out));
        assert!(
            is_model(&schema, &pop),
            "state is a model after elimination"
        );
    }

    // Step 3: canonicalise constraints (idempotent bookkeeping).
    let (canon, _removed) = canonicalize_constraints(&schema);
    let schema = canon;
    assert!(is_model(&schema, &pop));

    // Step 4: the binary→relational pivot — one two-column table per fact.
    let (rel, map) = binary_relational(&schema).unwrap();
    assert_eq!(rel.tables.len(), schema.num_fact_types());
    assert!(rel.tables.iter().all(|t| t.arity() == 2));
    let st = map.map_state(&schema, &pop);
    let violations = ridl_relational::validate(&rel, &st);
    assert!(violations.is_empty(), "{violations:?}");

    // And all the way back: pivot⁻¹, eliminations⁻¹, expansions⁻¹.
    let mut back = map.unmap_state(&schema, &st);
    for (t, out) in eliminations.iter().rev() {
        back = t.unmap_state(out, &back);
    }
    for (i, (t, out)) in expansions.iter().enumerate().rev() {
        // The schema each expansion was applied to: the one produced by the
        // previous expansion (or the original).
        let prev: &Schema = if i == 0 {
            &schema0
        } else {
            &expansions[i - 1].1.schema
        };
        back = t.unmap_state(prev, out, &back);
    }
    // Drop the bookkeeping populations of concepts the original schema
    // lacks (expansion LOTs/facts have ids beyond the original arenas).
    let mut cleaned = Population::new();
    for (oid, _) in schema0.object_types() {
        for v in back.objects_of(oid) {
            cleaned.add_object(oid, v.clone());
        }
    }
    for (fid, _) in schema0.fact_types() {
        for (l, r) in back.facts_of(fid) {
            cleaned.add_fact(fid, l.clone(), r.clone());
        }
    }
    assert!(
        is_model(&schema0, &cleaned),
        "{:?}",
        ridl_brm::population::validate(&schema0, &cleaned)
    );
    // The round trip reproduces the original population exactly — expansion
    // entity renaming is undone by the inverse maps.
    assert_eq!(cleaned.compacted(), pop0.compacted());
}

/// The naive path makes strictly more, smaller relations than the grouped
/// mapper — the paper's motivation for engineering RIDL-M: "the many
/// smaller tables derived by normalization have to be joined dynamically
/// which may result in an unacceptable increase of I/O consumption" (§4).
#[test]
fn naive_pivot_vs_grouped_mapper_shape() {
    let schema0 = fig6::schema();
    // Canonicalise fully.
    let mut schema = schema0.clone();
    loop {
        let Some((oid, _)) = schema.object_types().find(|(_, ot)| ot.kind.is_lot_nolot()) else {
            break;
        };
        let oid: ObjectTypeId = oid;
        schema = ExpandLotNolot { ot: oid }.apply(&schema).unwrap().schema;
    }
    while schema.num_sublinks() > 0 {
        schema = EliminateSublink {
            sublink: SublinkId::from_raw(0),
        }
        .apply(&schema)
        .unwrap()
        .schema;
    }
    let (naive, _) = binary_relational(&schema).unwrap();

    let wb = ridl_core::Workbench::new(schema0);
    let grouped = wb.map(&ridl_core::MappingOptions::new()).unwrap();

    assert!(
        naive.tables.len() > 2 * grouped.table_count(),
        "naive {} vs grouped {}",
        naive.tables.len(),
        grouped.table_count()
    );
    let naive_avg_arity: f64 =
        naive.tables.iter().map(|t| t.arity()).sum::<usize>() as f64 / naive.tables.len() as f64;
    let grouped_avg_arity: f64 = grouped.rel.tables.iter().map(|t| t.arity()).sum::<usize>() as f64
        / grouped.rel.tables.len() as f64;
    assert!(
        grouped_avg_arity > naive_avg_arity,
        "grouped tables are wider: {grouped_avg_arity:.2} vs {naive_avg_arity:.2}"
    );
}

//! Experiment **E-CRASH**: the crash-consistency property of the
//! durability subsystem.
//!
//! A random workload (constraint-checked batches, transactions, deferred
//! unchecked inserts, checkpoints, flushes) runs over the fault-injecting
//! in-memory filesystem twice: a dry run counts every syscall the
//! workload performs, then a fault run injects one fault — short write,
//! I/O error, or crash — at a syscall index chosen by the property, the
//! machine "reboots" keeping an arbitrary number of unsynced bytes, and
//! the store is recovered.
//!
//! The property: the recovered state is **exactly one of the states the
//! workload committed** (or, for the one statement whose WAL write
//! failed, the two-generals "uncertain" state that may or may not have
//! reached disk — never a torn mixture), every constraint of the schema
//! holds on it, and a second recovery is a clean no-op. Under
//! `FsyncPolicy::Always` the property tightens: the recovered state is
//! the *last* committed state (or the uncertain one), i.e. a durable
//! commit is never lost.
//!
//! Workloads: the mapped CRIS case-study population and mapped synthetic
//! schemas (keys, FKs, frequencies, subset/exclusion/total-union views).

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use ridl_brm::Value;
use ridl_core::state_map::map_population;
use ridl_core::{MappingOptions, Workbench};
use ridl_durable::{FaultKind, FaultPlan, FaultyIo};
use ridl_engine::{BatchOp, Database, Durability, EngineError, FsyncPolicy};
use ridl_relational::{validate, RelSchema, RelState, Row};
use ridl_workloads::cris;
use ridl_workloads::scenario::{self, MappedPopulation};
use ridl_workloads::synth::GenParams;

// ---- cached scenario artefacts (built once, cloned per proptest case) ----

fn cris_artifacts() -> &'static (RelSchema, RelState) {
    static CACHE: OnceLock<(RelSchema, RelState)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let schema = cris::schema();
        let pop = cris::population(&schema);
        let wb = Workbench::new(schema);
        let out = wb.map(&MappingOptions::new()).expect("CRIS maps");
        let st = map_population(&out.schema, &out, &pop).expect("state map");
        (out.rel, st)
    })
}

fn synth_artifacts() -> &'static Vec<(RelSchema, RelState)> {
    static CACHE: OnceLock<Vec<(RelSchema, RelState)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        (0..2u64)
            .map(|seed| {
                let params = GenParams {
                    seed: 1989 + seed,
                    nolots: 4,
                    attrs_per_nolot: (1, 3),
                    mn_facts: 2,
                    sublinks: 1,
                    card_prob: 0.5,
                    ..GenParams::default()
                };
                let MappedPopulation { schema, state } = scenario::mapped_population(&params, 3);
                (schema, state)
            })
            .collect()
    })
}

fn dir() -> PathBuf {
    PathBuf::from("/db")
}

// ---- random workload over live value pools (batch_equivalence idiom) ----

/// A value pool per (table, column): everything currently in the column
/// (plus NULL where allowed), so random rows sometimes commit and
/// sometimes trip keys/FKs — both paths must be crash-safe.
fn column_pools(db: &Database) -> Vec<Vec<Vec<Option<Value>>>> {
    let schema = db.schema();
    let state = db.state();
    schema
        .tables()
        .map(|(tid, t)| {
            (0..t.arity())
                .map(|c| {
                    let mut pool: Vec<Option<Value>> = state
                        .rows(tid)
                        .iter()
                        .map(|r| r[c].clone())
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .collect();
                    if t.column(c as u32).nullable {
                        pool.push(None);
                    }
                    pool
                })
                .collect()
        })
        .collect()
}

fn random_op(
    db: &Database,
    pools: &[Vec<Vec<Option<Value>>>],
    rng: &mut rand::rngs::StdRng,
) -> BatchOp {
    let tables: Vec<(usize, String)> = db
        .schema()
        .tables()
        .map(|(tid, t)| (tid.index(), t.name.clone()))
        .collect();
    let (ti, tname) = tables[rng.gen_range(0..tables.len())].clone();
    let arity = pools[ti].len();
    let from_pools = |rng: &mut rand::rngs::StdRng| -> Row {
        (0..arity)
            .map(|c| {
                let pool = &pools[ti][c];
                if pool.is_empty() {
                    None
                } else {
                    pool[rng.gen_range(0..pool.len())].clone()
                }
            })
            .collect()
    };
    let live = db.state().rows(ridl_relational::TableId(ti as u32));
    if rng.gen_bool(0.5) {
        BatchOp::insert(tname, from_pools(rng))
    } else if !live.is_empty() && rng.gen_bool(0.5) {
        let pick = rng.gen_range(0..live.len());
        BatchOp::delete(tname, live.iter().nth(pick).unwrap().clone())
    } else {
        BatchOp::delete(tname, from_pools(rng))
    }
}

/// A live `(table name, row)` pick from the shadow state, if any.
fn random_live_row(db: &Database, rng: &mut rand::rngs::StdRng) -> Option<(String, Row)> {
    let lives: Vec<(String, Row)> = db
        .schema()
        .tables()
        .flat_map(|(tid, t)| {
            db.state()
                .rows(tid)
                .iter()
                .map(move |r| (t.name.clone(), r.clone()))
        })
        .collect();
    if lives.is_empty() {
        return None;
    }
    Some(lives[rng.gen_range(0..lives.len())].clone())
}

// ---- the workload driver ----

/// What one workload run observed: the syscall count right after the
/// seed checkpoint (the fault window starts there), every state that
/// reached a durable commit point, and — when a statement died on a WAL
/// I/O error — the state that statement *would* have committed, which
/// may or may not have reached disk (two generals).
struct Exec {
    base_ops: u64,
    committed: Vec<RelState>,
    uncertain: Option<RelState>,
}

/// Drives `n_actions` pseudo-random actions against a durable database
/// over `io`, mirroring every call on a pure in-memory shadow engine.
/// The shadow computes the would-be state of a statement whose WAL write
/// fails, and cross-checks that durable and in-memory enforcement agree
/// verdict-for-verdict and state-for-state.
///
/// Stops at the first durability error: `Io` means the statement's WAL
/// bytes may or may not be durable (uncertainty recorded when the
/// statement itself was valid); `WalPoisoned` means the engine refused
/// to touch the log at all, so there is nothing uncertain.
fn drive(
    io: &Arc<FaultyIo>,
    art: &(RelSchema, RelState),
    cfg: Durability,
    seed: u64,
    n_actions: usize,
) -> Exec {
    let (schema, state) = art;
    let mut db = Database::open_with(io.clone(), dir(), schema.clone(), cfg)
        .expect("open happens before the fault window");
    let mut shadow = Database::create(schema.clone()).unwrap();
    let rows = scenario::rows_of(schema, state);
    db.bulk_load(rows.iter().cloned())
        .expect("seed happens before the fault window");
    shadow.bulk_load(rows.iter().cloned()).unwrap();
    let base_ops = io.op_count();
    let mut committed = vec![db.state().clone()];
    let mut uncertain = None;
    let pools = column_pools(&shadow);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // One durable statement already mirrored on the shadow. `Some(true)`:
    // committed; `Some(false)`: rejected by a constraint (both engines);
    // `None`: a durability error ended the run (uncertainty recorded).
    macro_rules! mirrored {
        ($shadow_res:expr, $durable_res:expr) => {{
            let rs = $shadow_res;
            match $durable_res {
                Ok(_) => {
                    assert!(rs.is_ok(), "durable committed what the shadow rejected");
                    assert_eq!(db.state(), shadow.state(), "engines diverged");
                    committed.push(db.state().clone());
                    Some(true)
                }
                Err(EngineError::Io(_)) => {
                    // The WAL write failed mid-statement: if the statement
                    // was valid, its bytes may still be durable.
                    if rs.is_ok() {
                        uncertain = Some(shadow.state().clone());
                    }
                    None
                }
                Err(EngineError::WalPoisoned) => None,
                Err(e) => {
                    assert!(
                        rs.is_err(),
                        "durable rejected ({e}) what the shadow committed"
                    );
                    assert_eq!(db.state(), shadow.state(), "rejection not atomic");
                    Some(false)
                }
            }
        }};
    }

    for _ in 0..n_actions {
        match rng.gen_range(0..8u32) {
            // Constraint-checked batches: the bread-and-butter commit unit.
            0..=2 => {
                let len = rng.gen_range(1..6);
                let batch: Vec<BatchOp> = (0..len)
                    .map(|_| random_op(&shadow, &pools, &mut rng))
                    .collect();
                if mirrored!(shadow.apply_batch(batch.clone()), db.apply_batch(batch)).is_none() {
                    return Exec {
                        base_ops,
                        committed,
                        uncertain,
                    };
                }
            }
            // A transaction: nothing reaches the WAL until the outermost
            // commit, which logs the whole transaction as one unit.
            3 => {
                shadow.begin();
                db.begin();
                for _ in 0..2 {
                    let len = rng.gen_range(1..4);
                    let batch: Vec<BatchOp> = (0..len)
                        .map(|_| random_op(&shadow, &pools, &mut rng))
                        .collect();
                    let rs = shadow.apply_batch(batch.clone());
                    match db.apply_batch(batch) {
                        Ok(_) => {
                            assert!(rs.is_ok());
                            assert_eq!(db.state(), shadow.state());
                        }
                        Err(EngineError::Io(_)) | Err(EngineError::WalPoisoned) => {
                            return Exec {
                                base_ops,
                                committed,
                                uncertain,
                            };
                        }
                        Err(_) => assert!(rs.is_err()),
                    }
                }
                if rng.gen_bool(0.3) {
                    shadow.rollback().unwrap();
                    db.rollback().unwrap();
                    assert_eq!(db.state(), shadow.state());
                } else if mirrored!(shadow.commit(), db.commit()).is_none() {
                    return Exec {
                        base_ops,
                        committed,
                        uncertain,
                    };
                }
            }
            // Delete a live row, then put it back with the deferred-check
            // path: exercises the *unchecked* WAL unit kind, whose replay
            // must re-defer the check. The reinserted row restores a
            // previously-valid state, so the store never holds an invalid
            // one.
            4 => {
                let Some((tname, row)) = random_live_row(&shadow, &mut rng) else {
                    continue;
                };
                let del = [BatchOp::delete(tname.clone(), row.clone())];
                match mirrored!(shadow.apply_batch(del.clone()), db.apply_batch(del)) {
                    None => {
                        return Exec {
                            base_ops,
                            committed,
                            uncertain,
                        }
                    }
                    Some(false) => continue, // the row is load-bearing
                    Some(true) => {}
                }
                if mirrored!(
                    shadow.insert_unchecked(&tname, row.clone()),
                    db.insert_unchecked(&tname, row)
                )
                .is_none()
                {
                    return Exec {
                        base_ops,
                        committed,
                        uncertain,
                    };
                }
            }
            // Manual checkpoint: snapshot + WAL truncation mid-workload.
            5 => match db.checkpoint() {
                Ok(()) => {}
                Err(EngineError::Io(_)) | Err(EngineError::WalPoisoned) => {
                    return Exec {
                        base_ops,
                        committed,
                        uncertain,
                    };
                }
                Err(e) => panic!("unexpected checkpoint error: {e}"),
            },
            // Group-commit flush: forces deferred fsyncs to disk.
            _ => {
                if db.flush_wal().is_err() {
                    return Exec {
                        base_ops,
                        committed,
                        uncertain,
                    };
                }
            }
        }
    }
    Exec {
        base_ops,
        committed,
        uncertain,
    }
}

// ---- the property ----

const POLICIES: [FsyncPolicy; 3] = [
    FsyncPolicy::Always,
    // A window the test can never exceed: every commit lands in the
    // volatile tail until an explicit flush or checkpoint. (A finite
    // window would make the syscall sequence depend on wall-clock time
    // and the dry run's fault-point count nondeterministic.)
    FsyncPolicy::GroupCommit {
        window_micros: u64::MAX,
    },
    FsyncPolicy::Never,
];

const AUTO_CHECKPOINT: [Option<u64>; 3] = [None, Some(1 << 12), Some(1 << 20)];

const KINDS: [FaultKind; 3] = [FaultKind::ShortWrite, FaultKind::IoError, FaultKind::Crash];

#[allow(clippy::too_many_arguments)]
fn crash_case(
    art: &(RelSchema, RelState),
    seed: u64,
    fault_frac: u64,
    kind_ix: usize,
    policy_ix: usize,
    ckpt_ix: usize,
    keep_unsynced: usize,
) -> Result<(), TestCaseError> {
    let cfg = Durability {
        fsync: POLICIES[policy_ix],
        checkpoint_every_bytes: AUTO_CHECKPOINT[ckpt_ix],
    };
    let (schema, _) = art;

    // Dry run: same workload, no faults — counts the reachable syscalls.
    let dry_io = Arc::new(FaultyIo::new());
    let dry = drive(&dry_io, art, cfg, seed, 10);
    assert!(dry.uncertain.is_none(), "dry run saw a fault");
    let total = dry_io.op_count();

    // Fault run: one injected fault somewhere in the workload's window.
    let io = Arc::new(FaultyIo::new());
    let span = (total - dry.base_ops).max(1);
    let at_op = dry.base_ops + fault_frac % span;
    io.set_plan(Some(FaultPlan {
        at_op,
        kind: KINDS[kind_ix],
    }));
    let ex = drive(&io, art, cfg, seed, 10);

    // Reboot, losing all but `keep_unsynced` bytes of every volatile tail.
    io.crash(keep_unsynced);

    // Offline inspection of the post-crash store, before recovery runs
    // (and repairs anything): the read-only view `ridl status` serves
    // must agree with what recovery is about to find.
    let status = ridl_durable::inspect_store(io.as_ref(), &dir())
        .map_err(|e| TestCaseError::fail(format!("offline inspection failed: {e}")))?;

    let recovered = Database::open_with(io.clone(), dir(), schema.clone(), cfg);
    let recovered = match recovered {
        Ok(db) => db,
        Err(e) => return Err(TestCaseError::fail(format!("recovery failed: {e}"))),
    };
    let rstate = recovered.state().clone();

    // The inspector's contract: `corrupt` exactly when recovery would
    // refuse the store — and recovery just succeeded. The chain head,
    // delta count, and WAL scan must match the recovery report.
    let rep = recovered.recovery_report().unwrap().clone();
    prop_assert!(
        status.verdict() != "corrupt",
        "inspector called a recoverable store corrupt: {:?}",
        status.corrupt
    );
    prop_assert_eq!(
        status.epoch,
        rep.checkpoint.map(|(e, _)| e),
        "inspector chain-head epoch disagrees with recovery"
    );
    prop_assert_eq!(
        status.chain_len,
        rep.deltas_merged,
        "inspector delta-chain length disagrees with recovery"
    );
    prop_assert_eq!(
        status.wal.stale,
        rep.stale_wal,
        "inspector WAL staleness disagrees with recovery"
    );
    if !rep.stale_wal && !rep.replay_rejected {
        prop_assert_eq!(
            status.wal.units,
            rep.units_replayed,
            "inspector committed-unit count disagrees with recovery replay"
        );
        prop_assert_eq!(
            status.wal.torn_bytes,
            rep.bytes_discarded,
            "inspector torn-tail bytes disagree with recovery discard"
        );
    }

    // The property: exactly a committed state, or the one uncertain one.
    let member =
        ex.committed.iter().rev().any(|s| s == &rstate) || ex.uncertain.as_ref() == Some(&rstate);
    prop_assert!(
        member,
        "recovered state is not a committed prefix (fault at op {at_op}/{total}, \
         kind {:?}, policy {policy_ix}, report: {})",
        KINDS[kind_ix],
        recovered.recovery_report().unwrap(),
    );

    // Every generated constraint holds on the recovered state.
    prop_assert!(
        validate(schema, &rstate).is_empty(),
        "recovered state violates constraints"
    );

    // Always-fsync tightens the guarantee: a committed statement is never
    // lost — recovery lands on the *last* committed state, or on the one
    // statement whose commit outcome the crash left uncertain.
    if policy_ix == 0 {
        let tight = Some(&rstate) == ex.committed.last() || ex.uncertain.as_ref() == Some(&rstate);
        prop_assert!(
            tight,
            "FsyncPolicy::Always lost a committed statement (fault at op \
             {at_op}/{total}, kind {:?})",
            KINDS[kind_ix],
        );
    }

    // Recovery is idempotent: a second open finds a clean store and the
    // same state.
    drop(recovered);
    let again = Database::open_with(io.clone(), dir(), schema.clone(), cfg)
        .map_err(|e| TestCaseError::fail(format!("re-recovery failed: {e}")))?;
    prop_assert_eq!(again.state(), &rstate, "second recovery changed the state");
    let r = again.recovery_report().unwrap();
    prop_assert_eq!(r.bytes_discarded, 0, "first recovery left a dirty log");
    prop_assert!(!r.replay_rejected, "first recovery left rejected units");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Crash consistency over the mapped CRIS case-study population.
    #[test]
    fn cris_recovers_to_a_committed_prefix(
        seed in 0u64..1u64 << 32,
        fault_frac in 0u64..1u64 << 32,
        kind_ix in 0usize..3,
        policy_ix in 0usize..3,
        ckpt_ix in 0usize..3,
        keep_unsynced in 0usize..96,
    ) {
        crash_case(
            cris_artifacts(),
            seed,
            fault_frac,
            kind_ix,
            policy_ix,
            ckpt_ix,
            keep_unsynced,
        )?;
    }

    /// Crash consistency over mapped synthetic schemas whose constraint
    /// mix (keys, FKs, frequencies, subset/exclusion/total-union views)
    /// varies per seed.
    #[test]
    fn synth_recovers_to_a_committed_prefix(
        schema_ix in 0usize..2,
        seed in 0u64..1u64 << 32,
        fault_frac in 0u64..1u64 << 32,
        kind_ix in 0usize..3,
        policy_ix in 0usize..3,
        ckpt_ix in 0usize..3,
        keep_unsynced in 0usize..96,
    ) {
        crash_case(
            &synth_artifacts()[schema_ix],
            seed,
            fault_frac,
            kind_ix,
            policy_ix,
            ckpt_ix,
            keep_unsynced,
        )?;
    }
}

// ---- targeted crash points inside the checkpoint rename sequences ----
//
// The property suite above hits checkpoint crashes probabilistically;
// these sweeps hit *every* syscall of the base+delta rename sequences
// deterministically and pin the "exactly one epoch side" guarantee.

fn always_no_auto() -> Durability {
    Durability {
        fsync: FsyncPolicy::Always,
        checkpoint_every_bytes: None,
    }
}

/// Commits one deterministic delete: walks live rows under a fixed seed
/// until one passes the constraint check. Deterministic across runs, so
/// syscall numbering in fault sweeps lines up with the dry run.
fn commit_one_delete(db: &mut Database) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    for _ in 0..64 {
        let (tname, row) = random_live_row(db, &mut rng).expect("live row");
        if db.apply_batch([BatchOp::delete(tname, row)]).is_ok() {
            return;
        }
    }
    panic!("no deletable row found in 64 draws");
}

/// Seeds a durable CRIS store (`bulk_load` writes the v2 base and
/// freezes the extent geometry), then commits one deterministic mutation
/// so the next checkpoint has a small dirty set.
fn seeded_db(io: &Arc<FaultyIo>) -> Database {
    let (schema, state) = cris_artifacts();
    let mut db =
        Database::open_with(io.clone(), dir(), schema.clone(), always_no_auto()).expect("open");
    let rows = scenario::rows_of(schema, state);
    db.bulk_load(rows.iter().cloned()).expect("seed load");
    commit_one_delete(&mut db);
    db
}

#[test]
fn crash_at_every_syscall_of_a_delta_checkpoint_recovers_one_epoch_side() {
    // Dry run: locate the delta checkpoint's syscall window.
    let dry = Arc::new(FaultyIo::new());
    let mut db = seeded_db(&dry);
    let want = db.state().clone();
    let start = dry.op_count();
    db.checkpoint().unwrap();
    assert_eq!(
        db.last_checkpoint_stats().unwrap().kind,
        ridl_durable::CheckpointKind::Delta,
        "the swept checkpoint must be an incremental delta"
    );
    let end = dry.op_count();
    assert!(end > start);
    drop(db);

    let (schema, _) = cris_artifacts();
    for at in start..end {
        let io = Arc::new(FaultyIo::new());
        let mut db = seeded_db(&io);
        io.set_plan(Some(FaultPlan {
            at_op: at,
            kind: FaultKind::Crash,
        }));
        let _ = db.checkpoint(); // dies somewhere inside the sequence
        drop(db);
        io.crash(0); // reboot keeping nothing unsynced

        let db2 = Database::open_with(io.clone(), dir(), schema.clone(), always_no_auto())
            .unwrap_or_else(|e| panic!("crash at op {at}: recovery failed: {e}"));
        assert_eq!(db2.state(), &want, "crash at op {at}: state differs");
        let r = db2.recovery_report().unwrap();
        // Exactly one epoch side: the pre-checkpoint chain replaying the
        // WAL unit, or the post-checkpoint chain with the unit absorbed
        // (delta durable, WAL stale/reset). Never a torn mixture.
        let old_side = r.deltas_merged == 0 && r.units_replayed == 1;
        let new_side = r.deltas_merged == 1 && r.units_replayed == 0;
        assert!(
            old_side || new_side,
            "crash at op {at}: mixed epoch sides:\n{r}"
        );
        assert!(validate(schema, db2.state()).is_empty());

        // Second recovery: clean, idempotent.
        drop(db2);
        let db3 = Database::open_with(io.clone(), dir(), schema.clone(), always_no_auto()).unwrap();
        assert_eq!(db3.state(), &want, "crash at op {at}: second recovery");
        assert_eq!(db3.recovery_report().unwrap().bytes_discarded, 0);
    }
}

#[test]
fn v1_to_v2_upgrade_survives_a_crash_at_every_syscall() {
    use ridl_durable::store::{store_path, SNAP_FILE};
    use ridl_durable::{encode_snapshot, fingerprint_str};

    let (schema, state) = cris_artifacts();
    // The engine fingerprints the schema by its debug rendering; a
    // hand-planted v1 store must match for recovery to accept it.
    let fp = fingerprint_str(&format!("{schema:?}"));
    let plant_v1 = |io: &Arc<FaultyIo>| {
        let v1 = encode_snapshot(3, fp, state);
        io.poke(&store_path(&dir(), SNAP_FILE), v1.into_bytes());
        ridl_durable::store::reset_wal(&**io, &dir(), 3, fp).unwrap();
    };

    // Dry run: open the legacy store, commit one statement, upgrade via
    // a checkpoint — necessarily a full v2 base (a v1 snapshot carries no
    // extent geometry).
    let dry = Arc::new(FaultyIo::new());
    plant_v1(&dry);
    let mut db = Database::open_with(dry.clone(), dir(), schema.clone(), always_no_auto()).unwrap();
    assert_eq!(db.recovery_report().unwrap().snapshot_format, 1);
    commit_one_delete(&mut db);
    let want = db.state().clone();
    let start = dry.op_count();
    db.checkpoint().unwrap();
    assert_eq!(
        db.last_checkpoint_stats().unwrap().kind,
        ridl_durable::CheckpointKind::Base
    );
    let end = dry.op_count();
    drop(db);

    for at in start..end {
        let io = Arc::new(FaultyIo::new());
        plant_v1(&io);
        let mut db =
            Database::open_with(io.clone(), dir(), schema.clone(), always_no_auto()).unwrap();
        commit_one_delete(&mut db);
        io.set_plan(Some(FaultPlan {
            at_op: at,
            kind: FaultKind::Crash,
        }));
        let _ = db.checkpoint();
        drop(db);
        io.crash(0);

        let db2 = Database::open_with(io.clone(), dir(), schema.clone(), always_no_auto())
            .unwrap_or_else(|e| panic!("upgrade crash at op {at}: recovery failed: {e}"));
        assert_eq!(db2.state(), &want, "upgrade crash at op {at}");
        let r = db2.recovery_report().unwrap();
        // One side of the upgrade: still the v1 text snapshot (WAL unit
        // replays), or the new v2 base (unit absorbed). The v1 fallback
        // may be read from `snap` or from `prev` (between the renames).
        let old_side = r.snapshot_format == 1 && r.units_replayed == 1;
        let new_side = r.snapshot_format == 2 && r.units_replayed == 0;
        assert!(
            old_side || new_side,
            "upgrade crash at op {at}: mixed formats:\n{r}"
        );
        assert!(validate(schema, db2.state()).is_empty());
    }
}

// ---- the offline inspector CLI against a real on-disk crash store ----

/// First integer after `"key": ` in a JSON text — enough for the flat,
/// fixed-shape documents `ridl status --json` emits.
fn json_u64(text: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let s = text
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {text}"))
        + pat.len();
    text[s..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("{key} is not a number in {text}"))
}

/// The CI contract behind `ridl status --json`: on a store a crash left
/// behind (checkpoint chain + WAL-only commits), the offline inspector's
/// numbers must agree field-for-field with the `RecoveryReport` the
/// engine produces when it actually reopens the store.
#[test]
fn ridl_status_json_agrees_with_the_recovery_report() {
    let (schema, state) = cris_artifacts();
    let dir = std::env::temp_dir().join(format!("ridl-crash-status-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = Database::open_with(
            Arc::new(ridl_engine::StdIo),
            &dir,
            schema.clone(),
            always_no_auto(),
        )
        .unwrap();
        let rows = scenario::rows_of(schema, state);
        db.bulk_load(rows.iter().cloned()).unwrap();
        db.checkpoint().unwrap();
        commit_one_delete(&mut db);
        commit_one_delete(&mut db);
        // Dropped without a checkpoint: both commits live only in the
        // WAL — the shape a crash leaves behind.
    }

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ridl"))
        .args(["status", dir.to_str().unwrap(), "--json"])
        .output()
        .expect("ridl status runs");
    assert!(
        out.status.success(),
        "ridl status failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8(out.stdout).unwrap();

    let db = Database::open_with(
        Arc::new(ridl_engine::StdIo),
        &dir,
        schema.clone(),
        always_no_auto(),
    )
    .unwrap();
    let rep = db.recovery_report().unwrap().clone();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    // Pending committed units are normal operation, not damage.
    assert!(json.contains("\"verdict\": \"clean\""), "{json}");
    let (epoch, _) = rep.checkpoint.expect("store has a checkpoint");
    assert_eq!(json_u64(&json, "epoch"), epoch, "chain-head epoch");
    assert_eq!(
        json_u64(&json, "deltas"),
        rep.deltas_merged as u64,
        "delta-chain length"
    );
    assert_eq!(
        json_u64(&json, "units"),
        rep.units_replayed as u64,
        "committed WAL units"
    );
    assert_eq!(
        json_u64(&json, "torn_bytes"),
        rep.bytes_discarded,
        "torn-tail bytes"
    );
    assert_eq!(rep.units_replayed, 2, "both WAL-only commits replayed");
}

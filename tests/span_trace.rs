//! End-to-end tests of the span tracing subsystem: the full pipeline under
//! tracing, the Chrome-trace export/validator roundtrip, and the histogram
//! merge property.
//!
//! The span collector and the tracing flag are process-global, so every
//! test that enables tracing serialises on [`TRACE_LOCK`] and drains the
//! collector before and after.

use std::sync::Mutex;

use proptest::prelude::*;
use ridl_core::{MappingOptions, Workbench};
use ridl_obs::Histogram;
use ridl_workloads::cris;

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with tracing enabled and a clean collector; returns the
/// recorded events.
fn traced<T>(f: impl FnOnce() -> T) -> (T, Vec<ridl_obs::SpanEvent>, u64) {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    ridl_obs::span::clear();
    ridl_obs::hist::clear_histograms();
    ridl_obs::set_tracing(true);
    let out = f();
    ridl_obs::set_tracing(false);
    let (events, dropped) = ridl_obs::span::take_events();
    (out, events, dropped)
}

/// The CRIS pipeline end to end: analyze, map, generate SQL, load into the
/// engine — then assert the span tree covers every stage.
fn run_pipeline() -> ridl_core::MappingOutput {
    let wb = Workbench::new(cris::schema());
    let out = wb.map(&MappingOptions::new()).expect("CRIS maps");
    let _ddl = ridl_sqlgen::generate_for(&out.rel, ridl_sqlgen::DialectKind::Sql2);
    let pop = cris::population(wb.schema());
    let state =
        ridl_core::state_map::map_population(&out.schema, &out, &pop).expect("population maps");
    let mut db = ridl_engine::Database::create(out.rel.clone()).expect("engine opens");
    db.load_state(state).expect("CRIS state is valid");
    out
}

#[test]
fn pipeline_spans_cover_every_stage() {
    let (out, events, dropped) = traced(run_pipeline);
    assert_eq!(dropped, 0, "pipeline fits the collector");
    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    // RIDL-A: the pass spans nest under the analyze span.
    for pass in [
        "analyzer.analyze",
        "analyzer.reference",
        "analyzer.correctness",
        "analyzer.completeness",
        "analyzer.setalg",
        "analyzer.referability",
    ] {
        assert!(names.contains(&pass), "missing span {pass}: {names:?}");
    }
    // RIDL-M: one annotation span per applied transformation.
    let applies = names.iter().filter(|n| **n == "transform.apply").count();
    assert_eq!(
        applies,
        out.trace.steps().len(),
        "one transform.apply span per trace step"
    );
    assert!(names.contains(&"ridlm.map"));
    assert!(names.contains(&"sqlgen.generate"));
    // Engine enforcement: statement, validation and per-class checks.
    assert!(names.contains(&"engine.load_state"), "{names:?}");
    assert!(names.contains(&"validate.full"), "{names:?}");
    assert!(
        names.iter().any(|n| n.starts_with("validate.")
            && *n != "validate.full"
            && *n != "validate.load"
            && *n != "validate.delta"),
        "per-constraint-class spans present: {names:?}"
    );
    // Parent links form a forest over recorded ids.
    let ids: std::collections::HashSet<u64> = events.iter().map(|e| e.id).collect();
    for e in &events {
        if let Some(p) = e.parent {
            assert!(ids.contains(&p), "span {} has unknown parent {p}", e.name);
        }
    }
    // The analyzer passes are children of analyzer.analyze.
    let analyze_id = events
        .iter()
        .find(|e| e.name == "analyzer.analyze")
        .unwrap()
        .id;
    let setalg = events.iter().find(|e| e.name == "analyzer.setalg").unwrap();
    assert_eq!(setalg.parent, Some(analyze_id));

    // Histograms: every span name shows up with ordered quantiles.
    let hists = ridl_obs::histograms_snapshot();
    for name in ["analyzer.analyze", "transform.apply", "validate.full"] {
        let h = hists
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
            .unwrap_or_else(|| panic!("no histogram for {name}"));
        assert!(h.count() > 0);
        assert!(h.p50() <= h.p90());
        assert!(h.p90() <= h.p99());
        assert!(h.p99() <= h.max());
    }
    let rendered = ridl_obs::render_histograms();
    assert!(rendered.contains("LATENCY HISTOGRAMS"));
    assert!(rendered.contains("transform.apply"));
}

#[test]
fn chrome_trace_of_pipeline_validates() {
    let (_, events, dropped) = traced(run_pipeline);
    let json = ridl_obs::chrome_trace(&events, dropped);
    let stats = ridl_obs::validate_chrome_trace(&json).expect("pipeline trace is well-formed");
    assert!(stats.spans as usize <= events.len());
    assert!(stats.spans > 10, "covers the pipeline: {stats:?}");
    assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    // Round-trip through a file, as `ridl tracecheck` reads it.
    let path = std::env::temp_dir().join(format!("ridl-span-trace-{}.json", std::process::id()));
    ridl_obs::write_chrome_trace(path.to_str().unwrap(), &events, dropped).expect("write");
    let text = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    assert_eq!(ridl_obs::validate_chrome_trace(&text), Ok(stats));
}

#[test]
fn disabled_tracing_records_nothing() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    ridl_obs::span::clear();
    ridl_obs::set_tracing(false);
    ridl_obs::span::in_span("should.not.appear", || ());
    let (events, dropped) = ridl_obs::span::take_events();
    assert!(events.is_empty());
    assert_eq!(dropped, 0);
}

/// Worker threads record into the same histogram registry, so parallel
/// validation aggregates per-class latencies into one histogram per name.
#[test]
fn parallel_validation_merges_worker_histograms() {
    let (_, events, _) = traced(|| {
        let sc = ridl_workloads::scenario::industrial_population(11, 2_000);
        let violations = ridl_relational::validate_with_workers(&sc.schema, &sc.state, 4);
        assert!(violations.is_empty());
    });
    let threads: std::collections::HashSet<u64> = events
        .iter()
        .filter(|e| e.name.starts_with("validate.") || e.name == "index.build")
        .map(|e| e.thread)
        .collect();
    assert!(
        threads.len() > 1,
        "validation spans span multiple threads: {threads:?}"
    );
    let hists = ridl_obs::histograms_snapshot();
    let (_, key_hist) = hists
        .iter()
        .find(|(n, _)| *n == "validate.key")
        .expect("key checks recorded");
    let per_thread_key_spans = events.iter().filter(|e| e.name == "validate.key").count();
    assert_eq!(
        key_hist.count() as usize,
        per_thread_key_spans,
        "every worker's key checks land in the one registry histogram"
    );
}

proptest! {
    /// Merging per-thread histograms is indistinguishable from recording
    /// every sample into a single histogram: same bucket counts, same
    /// quantile bounds (the tentpole's cross-thread aggregation invariant).
    #[test]
    fn histogram_merge_equals_concatenated_recording(
        shards in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 0..64),
            1..8,
        )
    ) {
        let mut merged = Histogram::new();
        let mut single = Histogram::new();
        for shard in &shards {
            let mut h = Histogram::new();
            for &v in shard {
                h.record(v);
                single.record(v);
            }
            merged.merge(&h);
        }
        prop_assert_eq!(merged.buckets(), single.buckets());
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.max(), single.max());
        prop_assert_eq!(merged.min(), single.min());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }
}

//! Experiment **E-A**: the four RIDL-A functions across whole schemas
//! (§3.2) — correctness, completeness, set-algebraic consistency and
//! non-referability — on the paper's workloads and on pathological inputs.

use ridl_analyzer::{analyze, Severity};
use ridl_brm::builder::{identify, SchemaBuilder};
use ridl_brm::{DataType, Side};

#[test]
fn cris_passes_all_four_functions() {
    let report = analyze(&ridl_workloads::cris::schema());
    assert!(report.is_mappable(), "{}", report.render());
    assert_eq!(report.count(Severity::Error), 0);
    // Reference schemes were inferred for every NOLOT.
    let s = ridl_workloads::cris::schema();
    for (oid, ot) in s.object_types() {
        if ot.kind.is_nolot() {
            assert!(
                report.references.is_referable(oid),
                "{} not referable",
                ot.name
            );
        }
    }
}

#[test]
fn fig6_reference_schemes_match_the_figure() {
    let s = ridl_workloads::fig6::schema();
    let report = analyze(&s);
    assert!(report.is_mappable(), "{}", report.render());
    // Paper is identified by Paper_Id (CHAR(6)).
    let paper = s.object_type_by_name("Paper").unwrap();
    let rep = report.references.smallest(&s, paper).unwrap();
    assert_eq!(rep.byte_width(), 6);
    // Program_Paper prefers its own, smaller Paper_ProgramId (CHAR(2)) over
    // the inherited Paper_Id (CHAR(6)) — "the smallest lexical
    // representation type" (§4.2.3).
    let pp = s.object_type_by_name("Program_Paper").unwrap();
    let rep = report.references.smallest(&s, pp).unwrap();
    assert_eq!(rep.byte_width(), 2);
    assert!(report.references.reps_of(pp).len() >= 2);
}

/// A schema with every kind of problem produces one finding per problem,
/// in the right section.
#[test]
fn pathological_schema_reports_by_section() {
    let mut b = SchemaBuilder::new("bad");
    // Non-referable NOLOT (no identifier at all).
    b.nolot("Ghost").unwrap();
    b.nolot("Anchor").unwrap();
    identify(&mut b, "Anchor", "Anchor_Id", DataType::Char(4)).unwrap();
    b.fact("haunts", ("by", "Ghost"), ("of", "Anchor")).unwrap();
    b.unique("haunts", Side::Left).unwrap();
    // Completeness: a fact with no uniqueness at all.
    b.nolot("Loose").unwrap();
    b.fact("floats", ("x", "Loose"), ("y", "Anchor")).unwrap();
    // Isolated concept.
    b.nolot("Island").unwrap();
    // Consistency: equality + exclusion forces empty populations.
    b.fact("f1", ("a", "Anchor"), ("b", "Loose")).unwrap();
    b.fact("f2", ("a", "Anchor"), ("b", "Loose")).unwrap();
    b.equality(&[("f1", Side::Left)], &[("f2", Side::Left)])
        .unwrap();
    b.exclusion_roles(&[("f1", Side::Left), ("f2", Side::Left)])
        .unwrap();
    let report = analyze(&b.finish().unwrap());

    assert!(report
        .referability
        .iter()
        .any(|f| f.code == "NON-REFERABLE" && f.message.contains("Ghost")));
    assert!(report
        .referability
        .iter()
        .any(|f| f.message.contains("Loose")));
    assert!(report
        .completeness
        .iter()
        .any(|f| f.code == "FACT-NO-UNIQUENESS"));
    assert!(report
        .completeness
        .iter()
        .any(|f| f.code == "ISOLATED-CONCEPT" && f.message.contains("Island")));
    assert!(report
        .consistency
        .iter()
        .any(|f| f.code == "FORCED-EMPTY-ROLE"));
    assert!(!report.is_mappable());
    // And the mapper refuses it.
    let wb = ridl_core::Workbench::new({
        // Rebuild the same schema; Workbench consumes it.
        let mut b = SchemaBuilder::new("bad");
        b.nolot("Ghost").unwrap();
        b.nolot("X").unwrap();
        b.fact("f", ("a", "Ghost"), ("b", "X")).unwrap();
        b.unique("f", Side::Left).unwrap();
        b.finish().unwrap()
    });
    assert!(wb.map(&ridl_core::MappingOptions::new()).is_err());
}

/// Synthetic schemas stay clean across the generator's parameter space.
#[test]
fn generated_schemas_are_clean_across_sizes() {
    use ridl_workloads::synth::{generate, GenParams};
    for (nolots, sublinks) in [(5, 1), (20, 6), (50, 12)] {
        let s = generate(&GenParams {
            seed: 99,
            nolots,
            sublinks,
            ..GenParams::default()
        });
        let report = analyze(&s.schema);
        assert!(report.is_mappable(), "nolots {nolots}: {}", report.render());
    }
}

//! Experiment **E-BATCH**: group-commit mutations are equivalent to the
//! statement-at-a-time API.
//!
//! [`Database::apply_batch`] applies a group of inserts/deletes under one
//! undo-log watermark and validates the accumulated (netted) delta once.
//! Three differential claims are tested on the CRIS case-study schema and
//! on randomly generated synthetic schemas:
//!
//! 1. a batch of one op has exactly the verdict, error message, state and
//!    indexes of the corresponding single statement;
//! 2. the incremental engine and a full-revalidation engine agree on
//!    arbitrary multi-op batches — same verdict, same violations, and
//!    byte-identical states and indexes afterwards;
//! 3. a rejected batch is atomic: state and indexes are untouched.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::{Rng, SeedableRng};

use ridl_brm::Value;
use ridl_core::state_map::map_population;
use ridl_core::{MappingOptions, Workbench};
use ridl_engine::{BatchOp, Database, Pred, ValidationMode};
use ridl_relational::{RelSchema, RelState, Row};
use ridl_workloads::cris;
use ridl_workloads::scenario::{self, MappedPopulation};
use ridl_workloads::synth::GenParams;

// ---- cached scenario artefacts (built once, cloned per proptest case) ----

fn cris_artifacts() -> &'static (RelSchema, RelState) {
    static CACHE: OnceLock<(RelSchema, RelState)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let schema = cris::schema();
        let pop = cris::population(&schema);
        let wb = Workbench::new(schema);
        let out = wb.map(&MappingOptions::new()).expect("CRIS maps");
        let st = map_population(&out.schema, &out, &pop).expect("state map");
        (out.rel, st)
    })
}

fn synth_artifacts() -> &'static Vec<(RelSchema, RelState)> {
    static CACHE: OnceLock<Vec<(RelSchema, RelState)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        (0..4u64)
            .map(|seed| {
                let params = GenParams {
                    seed: 1989 + seed,
                    nolots: 5,
                    attrs_per_nolot: (1, 3),
                    mn_facts: 3,
                    sublinks: 2,
                    card_prob: 0.5,
                    ..GenParams::default()
                };
                let MappedPopulation { schema, state } = scenario::mapped_population(&params, 4);
                (schema, state)
            })
            .collect()
    })
}

fn db_from(art: &(RelSchema, RelState), mode: ValidationMode) -> Database {
    let mut db = Database::create(art.0.clone()).unwrap();
    db.set_validation_mode(mode);
    db.load_state(art.1.clone()).unwrap();
    db
}

// ---- random batch generation ----

/// A value pool per (table, column): everything currently in the column
/// (plus NULL where allowed), so random rows sometimes pass and sometimes
/// trip keys, FKs, frequencies and view constraints.
fn column_pools(db: &Database) -> Vec<Vec<Vec<Option<Value>>>> {
    let schema = db.schema();
    let state = db.state();
    schema
        .tables()
        .map(|(tid, t)| {
            (0..t.arity())
                .map(|c| {
                    let mut pool: Vec<Option<Value>> = state
                        .rows(tid)
                        .iter()
                        .map(|r| r[c].clone())
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .collect();
                    if t.column(c as u32).nullable {
                        pool.push(None);
                    }
                    pool
                })
                .collect()
        })
        .collect()
}

/// One random insert or delete. Deletes draw from the live rows of the
/// initial state half the time (so they usually hit) and from the pools
/// otherwise (so absent-row no-ops are exercised too).
fn random_op(
    db: &Database,
    pools: &[Vec<Vec<Option<Value>>>],
    rng: &mut rand::rngs::StdRng,
) -> BatchOp {
    let tables: Vec<(usize, String)> = db
        .schema()
        .tables()
        .map(|(tid, t)| (tid.index(), t.name.clone()))
        .collect();
    let (ti, tname) = tables[rng.gen_range(0..tables.len())].clone();
    let arity = pools[ti].len();
    let from_pools = |rng: &mut rand::rngs::StdRng| -> Row {
        (0..arity)
            .map(|c| {
                let pool = &pools[ti][c];
                if pool.is_empty() {
                    None
                } else {
                    pool[rng.gen_range(0..pool.len())].clone()
                }
            })
            .collect()
    };
    let live = db.state().rows(ridl_relational::TableId(ti as u32));
    if rng.gen_bool(0.5) {
        BatchOp::insert(tname, from_pools(rng))
    } else if !live.is_empty() && rng.gen_bool(0.5) {
        let pick = rng.gen_range(0..live.len());
        BatchOp::delete(tname, live.iter().nth(pick).unwrap().clone())
    } else {
        BatchOp::delete(tname, from_pools(rng))
    }
}

fn random_batch(
    db: &Database,
    pools: &[Vec<Vec<Option<Value>>>],
    seed: u64,
    len: usize,
) -> Vec<BatchOp> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| random_op(db, pools, &mut rng)).collect()
}

/// Applies the same batch to twin engines in the two validation modes and
/// asserts verdict, violation-list, state and index parity — plus
/// atomicity when the batch is rejected.
fn assert_modes_agree(
    art: &(RelSchema, RelState),
    batch: Vec<BatchOp>,
) -> Result<(), TestCaseError> {
    let mut inc = db_from(art, ValidationMode::Incremental);
    let mut full = db_from(art, ValidationMode::FullState);
    let before_state = inc.state().clone();
    let before_indexes = inc.indexes().clone();
    let r_inc = inc.apply_batch(batch.clone());
    let r_full = full.apply_batch(batch);
    // Verdicts must agree; the violation *lists* may differ in multiplicity
    // (the delta validator reports per key group, the full validator per
    // row), so only accept/reject is compared across modes.
    prop_assert_eq!(
        r_inc.is_ok(),
        r_full.is_ok(),
        "verdicts diverged: incremental {:?} vs full {:?}",
        r_inc,
        r_full
    );
    prop_assert_eq!(inc.state(), full.state(), "states diverged");
    prop_assert_eq!(inc.indexes(), full.indexes(), "indexes diverged");
    if r_inc.is_err() {
        prop_assert_eq!(inc.state(), &before_state, "rejected batch not atomic");
        prop_assert_eq!(
            inc.indexes(),
            &before_indexes,
            "rejected batch left index residue"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A batch of one insert is indistinguishable from `insert`: same
    /// verdict, same error rendering, same state and indexes.
    #[test]
    fn batch_of_one_insert_equals_statement_insert(seed in 0u64..1u64 << 32) {
        let art = cris_artifacts();
        let mut stmt = db_from(art, ValidationMode::Incremental);
        let mut batch = db_from(art, ValidationMode::Incremental);
        let pools = column_pools(&stmt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let op = loop {
                match random_op(&stmt, &pools, &mut rng) {
                    BatchOp::Insert { table, row } => break (table, row),
                    BatchOp::Delete { .. } => continue,
                }
            };
            let r_stmt = stmt.insert(&op.0, op.1.clone());
            let r_batch = batch.apply_batch([BatchOp::insert(op.0, op.1)]);
            prop_assert_eq!(
                format!("{:?}", r_stmt.as_ref().err()),
                format!("{:?}", r_batch.as_ref().err()),
                "insert verdicts diverged"
            );
            if let Ok(n) = r_batch {
                prop_assert_eq!(n, 1);
            }
            prop_assert_eq!(stmt.state(), batch.state());
            prop_assert_eq!(stmt.indexes(), batch.indexes());
        }
    }

    /// A batch of one delete is indistinguishable from a `delete_where`
    /// whose predicate pins every column of the row.
    #[test]
    fn batch_of_one_delete_equals_statement_delete(seed in 0u64..1u64 << 32) {
        let art = cris_artifacts();
        let mut stmt = db_from(art, ValidationMode::Incremental);
        let mut batch = db_from(art, ValidationMode::Incremental);
        let pools = column_pools(&stmt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let (table, row) = loop {
                match random_op(&stmt, &pools, &mut rng) {
                    BatchOp::Delete { table, row } => break (table, row),
                    BatchOp::Insert { .. } => continue,
                }
            };
            let ti = stmt
                .schema()
                .tables()
                .find(|(_, t)| t.name == table)
                .map(|(tid, _)| tid.index())
                .unwrap();
            let preds: Vec<Pred> = row
                .iter()
                .enumerate()
                .map(|(c, v)| {
                    let col = stmt.schema().tables[ti].columns[c].name.clone();
                    match v {
                        Some(val) => Pred::Eq(col, val.clone()),
                        None => Pred::IsNull(col),
                    }
                })
                .collect();
            let r_stmt = stmt.delete_where(&table, &preds);
            let r_batch = batch.apply_batch([BatchOp::delete(table, row)]);
            prop_assert_eq!(
                format!("{:?}", r_stmt.as_ref().err()),
                format!("{:?}", r_batch.as_ref().err()),
                "delete verdicts diverged"
            );
            if let (Ok(n_stmt), Ok(n_batch)) = (r_stmt, r_batch) {
                prop_assert_eq!(n_stmt, n_batch, "deleted-row counts diverged");
            }
            prop_assert_eq!(stmt.state(), batch.state());
            prop_assert_eq!(stmt.indexes(), batch.indexes());
        }
    }

    /// Incremental (netted-delta) and full-state validation agree on
    /// arbitrary batches over the CRIS schema, and rejection is atomic.
    #[test]
    fn cris_batches_agree_across_modes(seed in 0u64..1u64 << 32, len in 1usize..10) {
        let art = cris_artifacts();
        let probe = db_from(art, ValidationMode::Incremental);
        let pools = column_pools(&probe);
        let batch = random_batch(&probe, &pools, seed, len);
        assert_modes_agree(art, batch)?;
    }

    /// The same agreement on generated synthetic schemas, whose constraint
    /// mix (keys, FKs, frequencies, subset/exclusion/total-union views)
    /// varies per seed.
    #[test]
    fn synth_batches_agree_across_modes(
        schema_ix in 0usize..4,
        seed in 0u64..1u64 << 32,
        len in 1usize..10,
    ) {
        let art = &synth_artifacts()[schema_ix];
        let probe = db_from(art, ValidationMode::Incremental);
        let pools = column_pools(&probe);
        let batch = random_batch(&probe, &pools, seed, len);
        assert_modes_agree(art, batch)?;
    }
}

/// An insert/delete pair of the same row nets to nothing: the batch is
/// accepted even when the inserted row would violate a key on its own,
/// because group commit validates the *net* delta.
#[test]
fn inverse_pair_nets_out_even_when_transiently_invalid() {
    let art = cris_artifacts();
    let mut db = db_from(art, ValidationMode::Incremental);
    let (tid, tname) = db
        .schema()
        .tables()
        .find(|(tid, _)| !db.state().rows(*tid).is_empty())
        .map(|(tid, t)| (tid, t.name.clone()))
        .unwrap();
    let dup = db.state().rows(tid).iter().next().unwrap().clone();
    let before = db.state().clone();
    // Deleting the row and re-inserting it nets to the empty delta.
    let n = db
        .apply_batch([
            BatchOp::delete(tname.clone(), dup.clone()),
            BatchOp::insert(tname, dup),
        ])
        .expect("net-empty batch is accepted");
    assert_eq!(n, 2, "both ops applied");
    assert_eq!(db.state(), &before, "state is unchanged overall");
}

//! Significant-example acceptance: the generated near-violation
//! populations must behave at the engine's incremental-validation level
//! exactly as the full validator promised — pads accepted, one tipping
//! row rejected with a violation of the expected constraint class.
//!
//! This is the Proper-style "significant example" contract: every
//! emitted example is boundary-tight (one row away from violation), so
//! each one proves the engine enforces its constraint class at the
//! boundary, not just somewhere.

use ridl_engine::{BatchOp, Database, EngineError};
use ridl_obs::ConstraintClass;
use ridl_workloads::{scenario, sigex};

fn loaded() -> Database {
    let sc = scenario::industrial_population(7, 600);
    let mut db = Database::create(sc.schema).unwrap();
    db.load_state(sc.state).unwrap();
    db
}

/// Every emitted example re-verifies against the full validator (pads
/// clean, tip violating the right class).
#[test]
fn emitted_examples_reverify_against_full_validator() {
    let db = loaded();
    let examples = sigex::significant_examples(db.schema(), db.state());
    assert!(!examples.is_empty(), "generator found no examples");
    for ex in &examples {
        assert!(
            sigex::verify_example(db.schema(), db.state(), ex),
            "example for {} ({}) fails its own oracle",
            ex.constraint,
            ex.class.name()
        );
    }
}

/// Engine-level acceptance: pads go in clean (one all-or-nothing batch),
/// the tip is rejected with a violation of the example's class, and
/// removing the pads restores the original state.
#[test]
fn tipping_rows_are_rejected_with_the_expected_class() {
    let mut db = loaded();
    let schema = db.schema().clone();
    let baseline = db.state().clone();
    let examples = sigex::significant_examples(&schema, &baseline);
    let name_of = |tid| schema.table(tid).name.clone();
    for ex in &examples {
        if !ex.pads.is_empty() {
            let pads: Vec<BatchOp> = ex
                .pads
                .iter()
                .map(|(tid, row)| BatchOp::insert(name_of(*tid), row.clone()))
                .collect();
            db.apply_batch(pads)
                .unwrap_or_else(|e| panic!("pads for {} rejected: {e}", ex.constraint));
        }
        let (tid, row) = &ex.tip;
        let err = db
            .insert(&name_of(*tid), row.clone())
            .expect_err("tipping row must be rejected");
        match err {
            EngineError::ConstraintViolation(violations) => {
                assert!(
                    violations
                        .iter()
                        .any(|v| sigex::violation_class(&schema, v) == ex.class),
                    "tip for {} rejected, but no violation of class {} in {violations:?}",
                    ex.constraint,
                    ex.class.name()
                );
            }
            other => panic!(
                "tip for {} rejected with non-violation: {other}",
                ex.constraint
            ),
        }
        if !ex.pads.is_empty() {
            let pads: Vec<BatchOp> = ex
                .pads
                .iter()
                .map(|(tid, row)| BatchOp::delete(name_of(*tid), row.clone()))
                .collect();
            db.apply_batch(pads).expect("pad removal");
        }
        assert_eq!(db.state(), &baseline, "example left residue in the state");
    }
}

/// The generator covers the macro classes the industrial schema carries:
/// keys, foreign keys and structural NOT NULL at minimum.
#[test]
fn generator_covers_key_fk_and_structure() {
    let db = loaded();
    let examples = sigex::significant_examples(db.schema(), db.state());
    let classes: Vec<ConstraintClass> = examples.iter().map(|ex| ex.class).collect();
    for required in [
        ConstraintClass::Key,
        ConstraintClass::ForeignKey,
        ConstraintClass::Structure,
    ] {
        assert!(
            classes.contains(&required),
            "no significant example for class {} (got {:?})",
            required.name(),
            classes.iter().map(|c| c.name()).collect::<Vec<_>>()
        );
    }
}

//! Determinism regression suite for the benchmark workloads: equal seeds
//! must give byte-equal schemas and states — including across validator
//! thread counts — so `BENCH_*.json` artifacts from different sessions
//! measure the same workload and stay comparable along the trajectory.

use ridl_workloads::macrobench::{self, MacroParams, TrafficOp};
use ridl_workloads::scenario;

/// `industrial_population` is a pure function of (seed, target_rows):
/// the schema renders byte-identically and the states compare equal.
#[test]
fn industrial_population_is_deterministic() {
    let a = scenario::industrial_population(1989, 800);
    let b = scenario::industrial_population(1989, 800);
    assert_eq!(
        format!("{:?}", a.schema),
        format!("{:?}", b.schema),
        "equal seeds must give byte-equal schemas"
    );
    assert_eq!(a.state, b.state, "equal seeds must give equal states");
    let c = scenario::industrial_population(7, 800);
    assert_ne!(
        format!("{:?}", a.schema),
        format!("{:?}", c.schema),
        "different seeds must actually vary the schema"
    );
}

/// The staged macrobench pipeline reproduces the same mapped schema and
/// population on every run of the same parameters.
#[test]
fn macrobench_stages_are_deterministic() {
    let p = MacroParams {
        seed: 1989,
        target_rows: 600,
    };
    let run = || {
        let s = macrobench::synthesize(&p);
        let out = macrobench::analyze_and_map(&s);
        let state = macrobench::populate(&s, &out, &p);
        (format!("{:?}", out.rel), state)
    };
    let (schema_a, state_a) = run();
    let (schema_b, state_b) = run();
    assert_eq!(schema_a, schema_b);
    assert_eq!(state_a, state_b);
}

/// Validation of the generated population is independent of the worker
/// count: byte-identical (empty) violation reports at 1 and N threads.
/// This is what makes the generator usable from parallel loaders without
/// perturbing the benchmark workload.
#[test]
fn population_validates_identically_across_thread_counts() {
    let sc = scenario::industrial_population(1989, 600);
    let one = ridl_relational::validate_with_workers(&sc.schema, &sc.state, 1);
    let many = ridl_relational::validate_with_workers(&sc.schema, &sc.state, 8);
    assert_eq!(one, many, "violation reports must not depend on threads");
    assert!(one.is_empty(), "the calibrated population is clean");
    let seq = ridl_relational::validate(&sc.schema, &sc.state);
    assert_eq!(one, seq, "parallel agrees with the sequential validator");
}

/// The traffic plan is a pure function of (seed, ops, targets).
#[test]
fn traffic_plan_is_deterministic() {
    let a = macrobench::plan_traffic(1989, 1_000, 8);
    let b = macrobench::plan_traffic(1989, 1_000, 8);
    assert_eq!(a, b);
    assert!(a.len() == 1_000);
    assert!(a.iter().any(|o| matches!(o, TrafficOp::DeleteReinsert(_))));
    assert!(a.iter().any(|o| matches!(o, TrafficOp::Batch(_))));
    assert!(a.iter().any(|o| matches!(o, TrafficOp::RejectInsert(_))));
    assert!(a.iter().any(|o| matches!(o, TrafficOp::PointQuery(_))));
    assert_ne!(macrobench::plan_traffic(7, 1_000, 8), a);
}

/// The calibration helpers the scenario and macrobench share are stable:
/// same probe, same instance count, same state.
#[test]
fn calibration_is_stable() {
    let p = MacroParams {
        seed: 1989,
        target_rows: 600,
    };
    let s = macrobench::synthesize(&p);
    let out = macrobench::analyze_and_map(&s);
    let n1 = scenario::calibrate_instances(&s, &out, 600);
    let n2 = scenario::calibrate_instances(&s, &out, 600);
    assert_eq!(n1, n2);
    assert!(n1 >= 1);
    let st1 = scenario::populate_instances(&s, &out, n1);
    let st2 = scenario::populate_instances(&s, &out, n1);
    assert_eq!(st1, st2);
}
